//! Clean fixture: a lib-category file that exercises the rule surface
//! without tripping any rule.

/// Errors are propagated, never unwrapped.
pub fn checked_head(items: &[u32]) -> Option<u32> {
    items.first().copied()
}

/// Iterators instead of indexing.
pub fn sum(items: &[u32]) -> u64 {
    items.iter().map(|&x| u64::from(x)).sum()
}

// hot-path: fixture of an allocation-free marked function
pub fn hot_mix(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

// SAFETY: the caller guarantees `ptr` is valid for reads (fixture).
pub fn guarded_read(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_test_uses_no_entropy() {
        assert_eq!(sum(&[1, 2, 3]), 6);
    }
}
