//! Dirty fixture for `atomic-ordering-discipline`, non-telemetry side:
//! raw atomics belong behind the telemetry primitives.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn raw_counter() -> u64 {
    static COUNT: AtomicU64 = AtomicU64::new(0);
    COUNT.fetch_add(1, Ordering::Relaxed)
}
