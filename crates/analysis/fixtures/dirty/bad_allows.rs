//! Dirty fixture for the `lint-allow` meta rule: malformed allow entries.

pub fn unknown_rule() -> u32 {
    // lint:allow(no-such-rule) the rule name does not exist
    0
}

pub fn missing_justification(input: Option<u32>) -> u32 {
    // lint:allow(no-panic-in-lib)
    input.unwrap()
}
