//! Dirty fixture for `deterministic-rng`: entropy sources that break seed
//! replayability. Test scope is NOT exempt for this rule.

pub fn ambient_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..10)
}

#[cfg(test)]
mod tests {
    #[test]
    fn entropy_in_tests_is_still_flagged() {
        let _rng = rand::rngs::StdRng::from_entropy();
    }
}
