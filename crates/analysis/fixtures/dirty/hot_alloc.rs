//! Dirty fixture for `no-alloc-hot-path`: a `// hot-path` function that
//! allocates, next to one that does not.

// hot-path: fixture
pub fn allocating_hot_path(n: usize) -> usize {
    let scratch = vec![0u8; n];
    scratch.len()
}

// hot-path: fixture
pub fn clean_hot_path(n: usize) -> usize {
    n.wrapping_mul(2)
}

pub fn unmarked_may_allocate(n: usize) -> Vec<u8> {
    vec![0u8; n]
}
