//! Dirty fixture for `no-panic-in-lib`: every panic idiom the rule knows.
//! Driven as `Category::Lib` by the fixture tests; line numbers are asserted
//! exactly, so edits here must update `tests/lint_rules.rs`.

pub fn unwraps(input: Option<u32>) -> u32 {
    input.unwrap()
}

pub fn expects(input: Option<u32>) -> u32 {
    input.expect("fixture")
}

pub fn panics() {
    panic!("fixture");
}

pub fn unreachable_arm(x: bool) -> u32 {
    match x {
        true => 1,
        false => unreachable!(),
    }
}

pub fn indexes_a_tracked_vec(i: usize) -> u32 {
    let items: Vec<u32> = vec![1, 2, 3];
    items[i]
}

pub fn allowed_with_justification(input: Option<u32>) -> u32 {
    // lint:allow(no-panic-in-lib) fixture: a justified allow suppresses the finding
    input.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_scope_is_exempt() {
        let v: Vec<u32> = vec![1];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
