//! Dirty fixture for `atomic-ordering-discipline`, telemetry side: driven
//! with `crate_name = "telemetry"`, where non-Relaxed orderings need an
//! `ordering-pair(name):` annotation.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn unannotated_acquire(cell: &AtomicU64) -> u64 {
    cell.load(Ordering::Acquire)
}

pub fn annotated_release(cell: &AtomicU64) {
    // ordering-pair(fixture-handoff): the matching Acquire is in unannotated_acquire above.
    cell.store(1, Ordering::Release);
}
