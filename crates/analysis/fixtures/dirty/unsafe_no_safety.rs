//! Dirty fixture for `unsafe-needs-safety-comment`.

pub fn uncommented(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}

// SAFETY: the caller guarantees `ptr` is valid for reads (fixture).
pub fn commented(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}

// The SAFETY line below sits four lines above the unsafe token, which is
// outside the rule's three-line lookback window.
// SAFETY: too far away to count.
//
//
//
pub fn comment_out_of_range(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}
