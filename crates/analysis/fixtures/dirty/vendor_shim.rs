//! Dirty fixture for `vendor-drift`: vendored pub fns must carry a
//! `Mirrors `...`` doc marker naming the upstream signature.

/// A shim with no upstream marker.
pub fn unmarked() -> u32 {
    0
}

/// Mirrors `upstream::marked()`.
pub fn marked() -> u32 {
    0
}
