//! `hdldp-lint` — the workspace lint driver.
//!
//! ```text
//! hdldp-lint --workspace            # scan the enclosing workspace
//! hdldp-lint --root <dir>           # scan an explicit tree
//! hdldp-lint --list-rules           # print the rule catalogue
//! ```
//!
//! Exit status is 0 when the scan is clean, 1 when violations were found,
//! and 2 on usage or I/O errors — CI treats any non-zero status as a
//! blocking failure.

use hdldp_analysis::rules::RuleId;
use hdldp_analysis::scan::{find_workspace_root, scan_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: hdldp-lint [--workspace | --root <dir>] [--quiet] [--list-rules]\n\
     \n\
     --workspace   locate the enclosing cargo workspace and scan it\n\
     --root <dir>  scan an explicit directory tree\n\
     --quiet       print only the summary line\n\
     --list-rules  print the rule catalogue and exit"
}

fn list_rules() {
    for rule in RuleId::ALL {
        println!("{:<28} {}", rule.name(), rule.description());
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {
                let cwd = match std::env::current_dir() {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("hdldp-lint: cannot read current dir: {e}");
                        return ExitCode::from(2);
                    }
                };
                match find_workspace_root(&cwd) {
                    Some(r) => root = Some(r),
                    None => {
                        eprintln!(
                            "hdldp-lint: no [workspace] Cargo.toml above {}",
                            cwd.display()
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("hdldp-lint: --root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--quiet" => quiet = true,
            "--list-rules" => {
                list_rules();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("hdldp-lint: unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };

    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hdldp-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for v in &report.violations {
            println!("{v}");
        }
    }
    println!(
        "hdldp-lint: {} file(s) scanned, {} violation(s)",
        report.files.len(),
        report.violations.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
