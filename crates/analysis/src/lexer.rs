//! A lightweight lexical line model of Rust source files.
//!
//! The workspace builds offline, so the rule engine cannot lean on `syn` or
//! `rustc` internals. It does not need to: every project rule in
//! [`crate::rules`] is a *lexical* property — "this token appears outside a
//! test scope", "this line is preceded by this comment". What the rules do
//! need, and what a plain `grep` cannot give them, is to know which bytes are
//! **code** and which are **string contents, character literals, or
//! comments**, and which lines live inside a `#[cfg(test)]` item.
//!
//! [`FileModel::parse`] produces exactly that: per line, the source with
//! string/char contents and comments blanked out (`code`), the comment text
//! gathered from that line (`comment`), and a `test_scope` flag computed by
//! brace-matching the item that follows a `#[cfg(test)]` / `#[test]` /
//! `#[bench]` attribute. Raw strings (`r"…"`, `r#"…"#`), byte strings,
//! nested block comments, escapes, and the lifetime-vs-char-literal
//! ambiguity are handled; exotic token trees (macros generating `unsafe`,
//! code produced by `include!`) are out of scope and documented as such in
//! `docs/STATIC_ANALYSIS.md`.

use std::path::{Path, PathBuf};

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments removed and string/char literal *contents*
    /// blanked (the delimiting quotes are kept so the shape of the code
    /// survives). Rules match tokens against this channel.
    pub code: String,
    /// The concatenated text of every comment on the line (line, block, and
    /// doc comments), without the comment markers. Rules look up allowlist
    /// entries, `SAFETY:` markers, and `hot-path` annotations here.
    pub comment: String,
    /// `true` when the line is (lexically) a doc comment (`///` / `//!`).
    pub doc_comment: bool,
    /// `true` when the line belongs to an item guarded by `#[cfg(test)]`,
    /// `#[test]`, or `#[bench]` (the attribute line itself included).
    pub test_scope: bool,
}

/// The lexical model of one file: the path plus one [`Line`] per source line.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// Path the file was read from (used verbatim in diagnostics).
    pub path: PathBuf,
    /// Per-line code/comment channels, index 0 = line 1.
    pub lines: Vec<Line>,
}

/// Scanner state while splitting code from comments and literals.
enum State {
    Code,
    LineComment { doc: bool },
    BlockComment { depth: usize, doc: bool },
    Str,
    RawStr { hashes: usize },
}

impl FileModel {
    /// Parse `source` into the line model. Never fails: unterminated
    /// literals or comments simply run to the end of the file in whatever
    /// state they opened.
    pub fn parse(path: &Path, source: &str) -> Self {
        let mut lines: Vec<Line> = Vec::new();
        let mut line = Line::default();
        let bytes: Vec<char> = source.chars().collect();
        let mut i = 0usize;
        let mut state = State::Code;

        // `doc_comment` is per-line: a line is a doc-comment line when the
        // first non-whitespace content on it is doc-comment text.
        let mut line_has_code = false;

        while let Some(&c) = bytes.get(i) {
            if c == '\n' {
                // Bare `///` (empty text) still counts: it separates
                // paragraphs inside one contiguous doc block.
                if !line_has_code {
                    if let State::LineComment { doc } | State::BlockComment { doc, .. } = state {
                        line.doc_comment = doc;
                    }
                }
                if let State::LineComment { .. } = state {
                    state = State::Code;
                }
                lines.push(std::mem::take(&mut line));
                line_has_code = false;
                i += 1;
                continue;
            }
            match state {
                State::Code => {
                    let next = bytes.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        let doc = matches!(bytes.get(i + 2), Some('/') | Some('!'));
                        // Swallow the marker (and the doc marker character).
                        i += if doc { 3 } else { 2 };
                        // `////…` dividers are plain comments, not docs.
                        state = State::LineComment {
                            doc: doc && bytes.get(i) != Some(&'/'),
                        };
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        let doc = matches!(bytes.get(i + 2), Some('*') | Some('!'));
                        i += 2;
                        state = State::BlockComment { depth: 1, doc };
                        continue;
                    }
                    if c == '"' {
                        // Raw/byte prefixes: r" r#" br" b" — the prefix chars
                        // were already emitted as code, which is fine.
                        let mut j = i;
                        let mut hashes = 0;
                        // Look back over immediately preceding `#`s and r/b.
                        while j > 0 && bytes.get(j - 1) == Some(&'#') {
                            hashes += 1;
                            j -= 1;
                        }
                        // `r"` / `r#"` / `br"` all put `r` immediately before
                        // the hashes, so one look-back character decides.
                        let rawed = j.checked_sub(1).and_then(|k| bytes.get(k)) == Some(&'r');
                        line.code.push('"');
                        i += 1;
                        // `#`s not preceded by `r` are attribute syntax and
                        // the quote opens an ordinary (or byte) string.
                        state = if rawed {
                            State::RawStr { hashes }
                        } else {
                            State::Str
                        };
                        line_has_code = true;
                        continue;
                    }
                    if c == '\'' {
                        // Distinguish a char literal from a lifetime: a char
                        // literal is 'x' or an escape '\…'; a lifetime has no
                        // closing quote right after its (single) identifier
                        // start.
                        let is_escape = next == Some('\\');
                        let closes = bytes.get(i + 2) == Some(&'\'') && next != Some('\'');
                        if is_escape || closes {
                            // Blank the contents, keep the quotes.
                            line.code.push('\'');
                            let mut j = i + 1;
                            if is_escape {
                                j += 1; // skip the backslash
                                j += 1; // skip the escaped char
                                        // \u{…} and \x.. escapes: scan to closing '.
                                while bytes.get(j).is_some_and(|&b| b != '\'' && b != '\n') {
                                    j += 1;
                                }
                            } else {
                                j = i + 2;
                            }
                            if bytes.get(j) == Some(&'\'') {
                                line.code.push('\'');
                                i = j + 1;
                            } else {
                                i = j;
                            }
                            line_has_code = true;
                            continue;
                        }
                        // Lifetime: emit as code.
                        line.code.push(c);
                        line_has_code = true;
                        i += 1;
                        continue;
                    }
                    if !c.is_whitespace() {
                        line_has_code = true;
                    }
                    line.code.push(c);
                    i += 1;
                }
                State::LineComment { .. } => {
                    line.comment.push(c);
                    i += 1;
                }
                State::BlockComment { depth, doc } => {
                    let next = bytes.get(i + 1).copied();
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment {
                            depth: depth + 1,
                            doc,
                        };
                        i += 2;
                        continue;
                    }
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment {
                                depth: depth - 1,
                                doc,
                            }
                        };
                        i += 2;
                        continue;
                    }
                    line.comment.push(c);
                    i += 1;
                }
                State::Str => {
                    if c == '\\' {
                        i += 2; // skip the escaped character (incl. \" and \\)
                        continue;
                    }
                    if c == '"' {
                        line.code.push('"');
                        state = State::Code;
                    }
                    i += 1;
                }
                State::RawStr { hashes } => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if bytes.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            line.code.push('"');
                            i += 1 + hashes;
                            state = State::Code;
                            continue;
                        }
                    }
                    i += 1;
                }
            }
        }
        if !line.code.is_empty() || !line.comment.is_empty() {
            lines.push(line);
        }
        let mut model = Self {
            path: path.to_path_buf(),
            lines,
        };
        model.mark_test_scopes();
        model
    }

    /// Read and parse a file from disk.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let source = std::fs::read_to_string(path)?;
        Ok(Self::parse(path, &source))
    }

    /// Mark every line owned by a `#[cfg(test)]` / `#[test]` / `#[bench]`
    /// item by brace-matching from the attribute to the end of the item.
    fn mark_test_scopes(&mut self) {
        let mut l = 0usize;
        while let Some(code) = self.lines.get(l).map(|line| line.code.clone()) {
            if let Some(col) = find_test_attribute(&code) {
                if let Some(end) = self.item_end(l, col) {
                    // item_end returns a line index it just visited, so the
                    // range is in bounds; get_mut keeps that an invariant.
                    if let Some(scope) = self.lines.get_mut(l..=end) {
                        for line in scope {
                            line.test_scope = true;
                        }
                    }
                    l = end + 1;
                    continue;
                }
            }
            l += 1;
        }
    }

    /// The last line of the item that starts at (or after) `line`/`col`:
    /// scan forward for the first `{` and brace-match it, or stop at a `;`
    /// that ends a brace-less item.
    fn item_end(&self, line: usize, col: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut opened = false;
        for (l, model_line) in self.lines.iter().enumerate().skip(line) {
            let code = &model_line.code;
            let start = if l == line { col } else { 0 };
            for c in code.chars().skip(start) {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            return Some(l);
                        }
                    }
                    ';' if !opened && depth == 0 => return Some(l),
                    _ => {}
                }
            }
        }
        None
    }
}

/// If `code` carries a test-guarding attribute, return the column right
/// after it (where the guarded item begins).
fn find_test_attribute(code: &str) -> Option<usize> {
    let mut search = 0usize;
    while let Some(rel) = code[search..].find("#[") {
        let open = search + rel;
        let close = match code[open..].find(']') {
            Some(c) => open + c,
            None => return None,
        };
        let body: String = code[open + 2..close]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        let is_test = body == "test"
            || body == "bench"
            || body == "cfg(test)"
            || body.starts_with("cfg(all(test")
            || body.starts_with("cfg(any(test");
        if is_test {
            return Some(close + 1);
        }
        search = close + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::parse(Path::new("mem.rs"), src)
    }

    #[test]
    fn strings_are_blanked_but_quotes_kept() {
        let m = model("let x = \"panic!(ha) // not a comment\";\n");
        assert_eq!(m.lines[0].code, "let x = \"\";");
        assert!(m.lines[0].comment.is_empty());
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let m = model(r#"let x = "a\"b\\"; let y = 1; // tail"#);
        assert_eq!(m.lines[0].code, r#"let x = ""; let y = 1; "#);
        assert_eq!(m.lines[0].comment.trim(), "tail");
    }

    #[test]
    fn raw_strings_swallow_quotes_until_the_hash_fence() {
        let m = model("let x = r#\"quote \" inside\"#; let y = 0;\n");
        assert!(m.lines[0].code.contains("let y = 0;"));
        assert!(!m.lines[0].code.contains("inside"));
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let m = model("fn f<'a>(x: &'a str) -> char { '}' }\n");
        // The brace char literal must not unbalance brace matching.
        let opens = m.lines[0].code.matches('{').count();
        let closes = m.lines[0].code.matches('}').count();
        assert_eq!(opens, 1, "code = {:?}", m.lines[0].code);
        assert_eq!(closes, 1, "code = {:?}", m.lines[0].code);
        assert!(m.lines[0].code.contains("<'a>"));
    }

    #[test]
    fn escaped_char_literals_are_blanked() {
        let m = model(r"let q = '\''; let nl = '\n'; let u = '\u{1F600}';");
        assert!(!m.lines[0].code.contains('\\'));
        assert_eq!(m.lines[0].code.matches("''").count(), 3);
    }

    #[test]
    fn line_and_block_comments_split_channels() {
        let m = model("code(); // trailing note\n/* block\nstill block */ after();\n");
        assert_eq!(m.lines[0].code.trim(), "code();");
        assert_eq!(m.lines[0].comment.trim(), "trailing note");
        assert_eq!(m.lines[1].comment.trim(), "block");
        assert_eq!(m.lines[2].comment.trim(), "still block");
        assert_eq!(m.lines[2].code.trim(), "after();");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let m = model("/* outer /* inner */ still outer */ live();\n");
        assert_eq!(m.lines[0].code.trim(), "live();");
    }

    #[test]
    fn doc_comments_are_flagged() {
        let m = model("/// docs here\ncode();\n//! module docs\n// plain\n");
        assert!(m.lines[0].doc_comment);
        assert!(!m.lines[1].doc_comment);
        assert!(m.lines[2].doc_comment);
        assert!(!m.lines[3].doc_comment);
    }

    #[test]
    fn cfg_test_module_is_marked_to_its_closing_brace() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let m = model(src);
        let flags: Vec<bool> = m.lines.iter().map(|l| l.test_scope).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_attribute_marks_single_function() {
        let src = "#[test]\nfn unit() {\n    body();\n}\nfn live() {}\n";
        let m = model(src);
        let flags: Vec<bool> = m.lines.iter().map(|l| l.test_scope).collect();
        assert_eq!(flags, vec![true, true, true, true, false]);
    }

    #[test]
    fn cfg_feature_strings_do_not_trigger_test_scope() {
        let src =
            "#[cfg(feature = \"test-utils\")]\nfn shim() {}\n#[cfg(not(test))]\nfn live() {}\n";
        let m = model(src);
        assert!(m.lines.iter().all(|l| !l.test_scope));
    }

    #[test]
    fn braces_inside_strings_do_not_unbalance_scopes() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}{\";\n}\nfn live() {}\n";
        let m = model(src);
        assert!(!m.lines[4].test_scope, "live fn must be outside the scope");
        assert!(m.lines[2].test_scope);
    }
}
