//! # hdldp-analysis — workspace static analysis and schedule checking
//!
//! Two subsystems keep the reproduction honest as it grows:
//!
//! 1. **`hdldp-lint`** (the [`lexer`] / [`rules`] / [`scan`] modules and the
//!    binary of the same name): a lexical rule engine with six
//!    project-specific rules — panic hygiene in library crates, SAFETY
//!    comments on `unsafe`, atomic-ordering discipline in the telemetry
//!    crate, deterministic RNG construction, allocation-free hot paths, and
//!    vendored-shim drift markers. Rules run over a comment-aware line
//!    model built by a small hand-rolled scanner (the workspace is offline,
//!    so no `syn`). Violations are suppressed only by an explicit
//!    `lint:allow` comment carrying a justification.
//! 2. **The deterministic-schedule checker** (the [`schedule`] and
//!    [`models`] modules): a miniature model checker that enumerates every
//!    interleaving of small multi-threaded programs (optionally bounding
//!    preemptions) and checks invariants after each step. The shipped
//!    models restate the lock-free `LatencyHistogram` and the sharded
//!    `ShardAccumulator` at per-atomic-op granularity and verify snapshot
//!    monotonicity and merge commutativity on every schedule.
//!
//! The lint's rule catalogue and the allow-comment grammar are documented
//! in `docs/STATIC_ANALYSIS.md` at the workspace root.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod models;
pub mod rules;
pub mod scan;
pub mod schedule;

pub use lexer::FileModel;
pub use models::{
    histogram_explorer, histogram_invariant, merge_in_order, model_bucket_index, permutations,
    shard_explorer, HistogramState, ModelSnapshot, ShardModel, ShardState, MODEL_BUCKETS,
};
pub use rules::{check_file, Category, FileContext, RuleId, Violation};
pub use scan::{classify, find_workspace_root, lint_file, scan_workspace, ScanReport};
pub use schedule::{
    interleaving_count, ExplorationReport, Explorer, Schedule, ScheduleFailure, ThreadProgram,
};
