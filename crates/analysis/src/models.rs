//! Concurrency models of the lock-free layers, for the schedule checker.
//!
//! Two algorithms in the workspace carry real concurrency claims:
//!
//! * `hdldp_telemetry::LatencyHistogram` — record is three independent
//!   relaxed atomic operations (bucket add, sum add, max max); snapshots
//!   load each bucket individually and claim to be "never torn, only
//!   slightly early or late", i.e. **monotone** and **bounded** by the
//!   records in flight.
//! * `hdldp_protocol::ShardAccumulator` — parallel ingest writes disjoint
//!   shards and claims the result is schedule-independent, and that merging
//!   shard partials is **commutative** (exact for dyadic inputs).
//!
//! The models below restate those algorithms step-by-step at exactly the
//! atomicity the real code has (every atomic op = one [`Step`]; every
//! non-atomic pair = two steps) so [`Explorer`] can enumerate every
//! interleaving and check the claims on each one. The integration tests
//! additionally replay the same inputs through the *real* types and assert
//! the model's final state matches them.

use crate::schedule::{Explorer, Step, ThreadProgram};

/// Buckets in the model histogram (the real one has 64; four are enough to
/// exercise "snapshot reads buckets one at a time").
pub const MODEL_BUCKETS: usize = 4;

/// The model's bucket function: bit length capped at the last bucket —
/// the same formula as `hdldp_telemetry`'s `bucket_index`.
pub fn model_bucket_index(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(MODEL_BUCKETS - 1)
}

/// One committed model snapshot plus the bounds it must respect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSnapshot {
    /// Per-bucket counts as loaded (one load per step).
    pub buckets: [u64; MODEL_BUCKETS],
    /// Sum of the loaded buckets (what quantiles are computed from).
    pub count: u64,
    /// The sum cell as loaded.
    pub sum: u64,
    /// The max cell as loaded.
    pub max: u64,
    /// Records fully completed when the snapshot began: `count` may not be
    /// below this.
    pub lower: u64,
    /// Records started when the snapshot committed: `count` may not exceed
    /// this.
    pub upper: u64,
}

/// Scratch space of the in-flight snapshot (one snapshotter thread).
#[derive(Debug, Clone, Default)]
struct SnapshotScratch {
    buckets: [u64; MODEL_BUCKETS],
    sum: u64,
    max: u64,
    lower: u64,
}

/// Shared state of the histogram model.
#[derive(Debug, Clone, Default)]
pub struct HistogramState {
    /// The bucket counters (each add is one step = one atomic RMW).
    pub buckets: [u64; MODEL_BUCKETS],
    /// The sum-of-values counter.
    pub sum: u64,
    /// The running max.
    pub max: u64,
    /// Records that have executed their bucket add (step 1 of 3).
    pub started: u64,
    /// Records that have executed all three steps.
    pub completed: u64,
    scratch: SnapshotScratch,
    /// Snapshots committed so far, in commit order.
    pub snapshots: Vec<ModelSnapshot>,
}

/// Build the recorder thread for one sequence of values. Each record is
/// three steps, mirroring `HistogramCell::record`: bucket add, sum add,
/// max update.
fn recorder(name: &str, values: &[u64]) -> ThreadProgram<HistogramState> {
    let mut steps: Vec<Step<HistogramState>> = Vec::new();
    for &v in values {
        steps.push(Box::new(move |s: &mut HistogramState| {
            s.buckets[model_bucket_index(v)] += 1;
            s.started += 1;
        }));
        steps.push(Box::new(move |s: &mut HistogramState| {
            s.sum += v;
        }));
        steps.push(Box::new(move |s: &mut HistogramState| {
            s.max = s.max.max(v);
            s.completed += 1;
        }));
    }
    ThreadProgram::new(name, steps)
}

/// Build the snapshotter thread: `snapshots` sequential snapshots, each of
/// which loads every bucket in its own step (mirroring `summarize`'s
/// per-bucket loads), then the sum and max cells, then commits.
fn snapshotter(snapshots: usize) -> ThreadProgram<HistogramState> {
    let mut steps: Vec<Step<HistogramState>> = Vec::new();
    for _ in 0..snapshots {
        steps.push(Box::new(|s: &mut HistogramState| {
            s.scratch = SnapshotScratch {
                lower: s.completed,
                ..SnapshotScratch::default()
            };
        }));
        for b in 0..MODEL_BUCKETS {
            steps.push(Box::new(move |s: &mut HistogramState| {
                s.scratch.buckets[b] = s.buckets[b];
            }));
        }
        steps.push(Box::new(|s: &mut HistogramState| {
            s.scratch.sum = s.sum;
        }));
        steps.push(Box::new(|s: &mut HistogramState| {
            s.scratch.max = s.max;
        }));
        steps.push(Box::new(|s: &mut HistogramState| {
            let snap = ModelSnapshot {
                buckets: s.scratch.buckets,
                count: s.scratch.buckets.iter().sum(),
                sum: s.scratch.sum,
                max: s.scratch.max,
                lower: s.scratch.lower,
                upper: s.started,
            };
            s.snapshots.push(snap);
        }));
    }
    ThreadProgram::new("snapshotter", steps)
}

/// The histogram invariant, checked after every step of every schedule:
/// each committed snapshot is bounded by the records in flight, and
/// successive snapshots are monotone in every component.
pub fn histogram_invariant(s: &HistogramState) -> Result<(), String> {
    for (i, snap) in s.snapshots.iter().enumerate() {
        if snap.count < snap.lower || snap.count > snap.upper {
            return Err(format!(
                "snapshot {i} count {} outside [completed-at-begin {}, started-at-commit {}]",
                snap.count, snap.lower, snap.upper
            ));
        }
    }
    for pair in s.snapshots.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let monotone = b.count >= a.count
            && b.sum >= a.sum
            && b.max >= a.max
            && a.buckets.iter().zip(&b.buckets).all(|(x, y)| y >= x);
        if !monotone {
            return Err(format!(
                "snapshots regressed: {a:?} then {b:?} — the histogram claims monotone reads"
            ));
        }
    }
    Ok(())
}

/// Build a histogram explorer: one recorder thread per value sequence plus
/// one snapshotter taking `snapshots` snapshots. The final check asserts
/// the fully-quiesced state is exact (no lost updates under any schedule).
pub fn histogram_explorer(
    recorders: &[Vec<u64>],
    snapshots: usize,
) -> (Explorer<HistogramState>, HistogramState) {
    let mut threads: Vec<ThreadProgram<HistogramState>> = recorders
        .iter()
        .enumerate()
        .map(|(i, values)| recorder(&format!("recorder-{i}"), values))
        .collect();
    threads.push(snapshotter(snapshots));

    let mut expected_buckets = [0u64; MODEL_BUCKETS];
    let mut expected_sum = 0u64;
    let mut expected_max = 0u64;
    let mut expected_count = 0u64;
    for v in recorders.iter().flatten() {
        expected_buckets[model_bucket_index(*v)] += 1;
        expected_sum += v;
        expected_max = expected_max.max(*v);
        expected_count += 1;
    }

    let explorer = Explorer::new(threads)
        .invariant(histogram_invariant)
        .final_check(move |s: &HistogramState| {
            if s.buckets != expected_buckets {
                return Err(format!(
                    "lost bucket updates: {:?} != {:?}",
                    s.buckets, expected_buckets
                ));
            }
            if s.sum != expected_sum || s.max != expected_max {
                return Err(format!(
                    "sum/max drifted: sum {} max {} expected sum {} max {}",
                    s.sum, s.max, expected_sum, expected_max
                ));
            }
            if s.started != expected_count || s.completed != expected_count {
                return Err("record accounting out of balance".to_string());
            }
            Ok(())
        });
    (explorer, HistogramState::default())
}

// ---------------------------------------------------------------------------
// Shard-accumulator model
// ---------------------------------------------------------------------------

/// One model shard: per-dimension sums/counts plus the report tally —
/// the same fields `ShardAccumulator` keeps.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardModel {
    /// Per-dimension running sums.
    pub sums: Vec<f64>,
    /// Per-dimension entry counts.
    pub counts: Vec<u64>,
    /// Reports fully accumulated.
    pub reports: u64,
}

impl ShardModel {
    fn new(dims: usize) -> Self {
        Self {
            sums: vec![0.0; dims],
            counts: vec![0; dims],
            reports: 0,
        }
    }
}

/// Shared state of the sharded-ingest model: one shard per writer thread
/// (the real `ingest_partitioned` gives each worker exclusive ownership of
/// its shard, so disjointness is the property under test).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// The per-thread shards.
    pub shards: Vec<ShardModel>,
}

/// Build the writer thread for shard `shard`: each `(dim, value)` entry is
/// two steps — sum add, then count add — modelling that the real
/// accumulator updates the pair non-atomically; each report ends with a
/// report-tally step.
fn shard_writer(shard: usize, entries: &[(usize, f64)]) -> ThreadProgram<ShardState> {
    let mut steps: Vec<Step<ShardState>> = Vec::new();
    for &(dim, value) in entries {
        steps.push(Box::new(move |s: &mut ShardState| {
            s.shards[shard].sums[dim] += value;
        }));
        steps.push(Box::new(move |s: &mut ShardState| {
            s.shards[shard].counts[dim] += 1;
        }));
    }
    steps.push(Box::new(move |s: &mut ShardState| {
        s.shards[shard].reports += 1;
    }));
    ThreadProgram::new(&format!("shard-{shard}"), steps)
}

/// Merge the shards of a final state in the given order, mirroring
/// `ShardAccumulator::merge` (componentwise sum/count adds).
pub fn merge_in_order(state: &ShardState, order: &[usize]) -> ShardModel {
    let dims = state.shards.first().map_or(0, |s| s.sums.len());
    let mut total = ShardModel::new(dims);
    for &i in order {
        let shard = &state.shards[i];
        for d in 0..dims {
            total.sums[d] += shard.sums[d];
            total.counts[d] += shard.counts[d];
        }
        total.reports += shard.reports;
    }
    total
}

/// All permutations of `0..n` (n is tiny: the model runs 2–3 shards).
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for pos in 0..=rest.len() {
            let mut p = rest.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// Build a shard-ingest explorer over `per_shard` entry lists (one writer
/// thread per shard, `dims` dimensions).
///
/// Final check, for every schedule:
/// 1. the final state equals the serial reference (schedule-independence:
///    writers own disjoint shards, so no interleaving may change the sums),
/// 2. merging the shards in **every** permutation yields bit-identical
///    totals (merge-commutativity; callers pass dyadic values so float
///    addition is exact and the comparison is meaningful).
pub fn shard_explorer(
    per_shard: &[Vec<(usize, f64)>],
    dims: usize,
) -> (Explorer<ShardState>, ShardState) {
    let threads: Vec<ThreadProgram<ShardState>> = per_shard
        .iter()
        .enumerate()
        .map(|(i, entries)| shard_writer(i, entries))
        .collect();

    // The serial reference: accumulate each shard with no interleaving.
    let mut reference = ShardState {
        shards: per_shard.iter().map(|_| ShardModel::new(dims)).collect(),
    };
    for (i, entries) in per_shard.iter().enumerate() {
        for &(dim, value) in entries {
            reference.shards[i].sums[dim] += value;
            reference.shards[i].counts[dim] += 1;
        }
        reference.shards[i].reports += 1;
    }
    let shard_count = per_shard.len();

    let explorer = Explorer::new(threads).final_check(move |s: &ShardState| {
        if *s != reference {
            return Err(format!(
                "sharded ingest is schedule-dependent: {s:?} != serial reference {reference:?}"
            ));
        }
        let orders = permutations(shard_count);
        let canonical = merge_in_order(s, &orders[0]);
        for order in &orders[1..] {
            let merged = merge_in_order(s, order);
            let same = merged.counts == canonical.counts
                && merged.reports == canonical.reports
                && merged
                    .sums
                    .iter()
                    .zip(&canonical.sums)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !same {
                return Err(format!(
                    "merge is not commutative: order {order:?} gave {merged:?}, \
                     expected {canonical:?}"
                ));
            }
        }
        Ok(())
    });
    let initial = ShardState {
        shards: (0..shard_count).map(|_| ShardModel::new(dims)).collect(),
    };
    (explorer, initial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_bucket_index_matches_bit_length() {
        assert_eq!(model_bucket_index(0), 0);
        assert_eq!(model_bucket_index(1), 1);
        assert_eq!(model_bucket_index(3), 2);
        assert_eq!(model_bucket_index(4), 3);
        assert_eq!(model_bucket_index(u64::MAX), MODEL_BUCKETS - 1);
    }

    #[test]
    fn permutations_enumerate_n_factorial_orders() {
        assert_eq!(permutations(0).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        let mut p = permutations(3);
        p.sort();
        p.dedup();
        assert_eq!(p.len(), 6, "permutations must be distinct");
    }

    #[test]
    fn histogram_invariant_rejects_regressing_snapshots() {
        let mut s = HistogramState::default();
        s.snapshots.push(ModelSnapshot {
            buckets: [2, 0, 0, 0],
            count: 2,
            sum: 0,
            max: 0,
            lower: 0,
            upper: 2,
        });
        s.snapshots.push(ModelSnapshot {
            buckets: [1, 0, 0, 0],
            count: 1,
            sum: 0,
            max: 0,
            lower: 0,
            upper: 2,
        });
        assert!(histogram_invariant(&s).is_err());
    }

    #[test]
    fn histogram_invariant_rejects_out_of_bounds_count() {
        let mut s = HistogramState::default();
        s.snapshots.push(ModelSnapshot {
            buckets: [3, 0, 0, 0],
            count: 3,
            sum: 0,
            max: 0,
            lower: 0,
            upper: 2,
        });
        assert!(histogram_invariant(&s).is_err());
    }

    #[test]
    fn merge_in_order_folds_componentwise() {
        let state = ShardState {
            shards: vec![
                ShardModel {
                    sums: vec![1.0, 0.5],
                    counts: vec![1, 1],
                    reports: 1,
                },
                ShardModel {
                    sums: vec![0.25, 0.0],
                    counts: vec![1, 0],
                    reports: 1,
                },
            ],
        };
        let merged = merge_in_order(&state, &[0, 1]);
        assert_eq!(merged.sums, vec![1.25, 0.5]);
        assert_eq!(merged.counts, vec![2, 1]);
        assert_eq!(merged.reports, 2);
    }
}
