//! The project-specific lint rules and the allowlist mechanism.
//!
//! Every rule is a pure function from a [`FileModel`] (plus the file's
//! [`Category`]) to a list of [`Violation`]s. Rules never read the
//! filesystem and never consult global state, so the fixture tests under
//! `crates/analysis/fixtures/` can drive each rule in isolation and assert
//! exact rule-id + line pairs.
//!
//! # Allowlisting
//!
//! A violation is suppressed by an allow comment **with a written
//! justification** on the offending line or the line directly above it:
//!
//! ```text
//! // lint:allow(no-panic-in-lib) shape is validated at construction
//! ```
//!
//! An allow entry naming an unknown rule, or carrying no justification, is
//! itself reported (rule id `lint-allow`): the allowlist must never rot into
//! a list of unexplained exemptions.

use crate::lexer::{FileModel, Line};
use std::fmt;
use std::path::PathBuf;

/// How a file participates in the workspace, which decides the rules that
/// apply to it (see [`rules_for`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Library source under `crates/*/src` (minus `src/bin`): the production
    /// code paths. All panic/determinism/atomics/hot-path rules apply.
    Lib,
    /// Experiment harness code: `crates/bench`, `src/bin` binaries, and
    /// criterion benches. Panics abort one experiment run, not a service, so
    /// `no-panic-in-lib` and `deterministic-rng` do not apply.
    Harness,
    /// Integration tests and examples (and `#[cfg(test)]` scopes inside lib
    /// files). Tests may panic freely but must stay deterministic.
    Test,
    /// Vendored stand-in crates under `vendor/`: only the drift rule (and
    /// the `unsafe` rule) apply — shim internals mirror foreign code.
    Vendor,
}

/// The six project rules (plus the allowlist meta rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// or indexing a locally-declared `Vec` in library code outside tests.
    NoPanicInLib,
    /// Every `unsafe` token must be covered by a `SAFETY:` comment.
    UnsafeNeedsSafetyComment,
    /// `crates/telemetry` may only use `Ordering::Relaxed` unless the site
    /// carries an `ordering-pair(...)` annotation; no other crate may touch
    /// `std::sync::atomic` at all.
    AtomicOrderingDiscipline,
    /// No entropy-seeded randomness (`thread_rng`, `from_entropy`, `OsRng`,
    /// `rand::random`, `SystemTime::now`) outside the bench harness.
    DeterministicRng,
    /// Functions annotated `// hot-path` may not allocate.
    NoAllocHotPath,
    /// Vendored shim public functions must carry a doc marker naming the
    /// real-crate signature they mirror.
    VendorDrift,
    /// Malformed allow entries: unknown rule id or missing justification.
    LintAllow,
}

impl RuleId {
    /// Every rule, in reporting order.
    pub const ALL: [RuleId; 7] = [
        RuleId::NoPanicInLib,
        RuleId::UnsafeNeedsSafetyComment,
        RuleId::AtomicOrderingDiscipline,
        RuleId::DeterministicRng,
        RuleId::NoAllocHotPath,
        RuleId::VendorDrift,
        RuleId::LintAllow,
    ];

    /// The stable kebab-case id used in diagnostics and allow comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoPanicInLib => "no-panic-in-lib",
            RuleId::UnsafeNeedsSafetyComment => "unsafe-needs-safety-comment",
            RuleId::AtomicOrderingDiscipline => "atomic-ordering-discipline",
            RuleId::DeterministicRng => "deterministic-rng",
            RuleId::NoAllocHotPath => "no-alloc-hot-path",
            RuleId::VendorDrift => "vendor-drift",
            RuleId::LintAllow => "lint-allow",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::NoPanicInLib => {
                "library code must not panic: no unwrap/expect/panic!/unreachable!/todo!/\
                 unimplemented! or Vec indexing outside #[cfg(test)]"
            }
            RuleId::UnsafeNeedsSafetyComment => {
                "every `unsafe` token needs a `SAFETY:` comment on the same or a nearby \
                 preceding line"
            }
            RuleId::AtomicOrderingDiscipline => {
                "only crates/telemetry touches std::sync::atomic, and only with \
                 Ordering::Relaxed unless the site carries an `ordering-pair(name):` annotation"
            }
            RuleId::DeterministicRng => {
                "no entropy-derived randomness (thread_rng/from_entropy/OsRng/rand::random/\
                 SystemTime::now) outside the bench harness: runs must replay from seeds"
            }
            RuleId::NoAllocHotPath => {
                "functions annotated `// hot-path` may not allocate (Vec::new/vec!/push/\
                 collect/format!/to_string/to_vec/Box::new/String::from)"
            }
            RuleId::VendorDrift => {
                "vendored shim `pub fn`s must keep a doc line naming the real-crate \
                 signature they mirror (e.g. `Mirrors `rand::Rng::gen_range`.`)"
            }
            RuleId::LintAllow => {
                "allow entries must name a known rule and carry a written justification"
            }
        }
    }

    /// Parse an id as written inside `lint:allow(...)`.
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: rule, location, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired.
    pub rule: RuleId,
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What was found, with enough context to act on.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The rule set a category is checked against (test-scope lines inside `Lib`
/// files are re-routed to the `Test` set by [`check_file`]).
pub fn rules_for(category: Category) -> &'static [RuleId] {
    match category {
        Category::Lib => &[
            RuleId::NoPanicInLib,
            RuleId::UnsafeNeedsSafetyComment,
            RuleId::AtomicOrderingDiscipline,
            RuleId::DeterministicRng,
            RuleId::NoAllocHotPath,
        ],
        Category::Harness => &[
            RuleId::UnsafeNeedsSafetyComment,
            RuleId::AtomicOrderingDiscipline,
            RuleId::NoAllocHotPath,
        ],
        Category::Test => &[RuleId::UnsafeNeedsSafetyComment, RuleId::DeterministicRng],
        Category::Vendor => &[RuleId::UnsafeNeedsSafetyComment, RuleId::VendorDrift],
    }
}

/// Everything the rules need to know about the file besides its text.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// The category deciding which rules run.
    pub category: Category,
    /// The crate the file belongs to (`telemetry`, `bench`, ...), used by
    /// the atomics rule.
    pub crate_name: String,
}

/// Run every applicable rule over one file and fold in the allowlist.
///
/// Returned violations are sorted by line, then rule.
pub fn check_file(model: &FileModel, ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    let rules = rules_for(ctx.category);
    for &rule in rules {
        let raw = match rule {
            RuleId::NoPanicInLib => no_panic_in_lib(model),
            RuleId::UnsafeNeedsSafetyComment => unsafe_needs_safety_comment(model),
            RuleId::AtomicOrderingDiscipline => atomic_ordering_discipline(model, ctx),
            RuleId::DeterministicRng => deterministic_rng(model, ctx.category),
            RuleId::NoAllocHotPath => no_alloc_hot_path(model),
            RuleId::VendorDrift => vendor_drift(model),
            RuleId::LintAllow => Vec::new(),
        };
        out.extend(raw);
    }
    out.extend(validate_allow_entries(model));
    out.retain(|v| !is_allowed(model, v.rule, v.line));
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(&b.rule)));
    out
}

fn violation(model: &FileModel, rule: RuleId, line0: usize, message: String) -> Violation {
    Violation {
        rule,
        path: model.path.clone(),
        line: line0 + 1,
        message,
    }
}

/// Parse the allow entries on one comment: `(rule, justification)` pairs.
fn allow_entries(comment: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = comment[search..].find("lint:allow(") {
        let open = search + rel + "lint:allow(".len();
        let Some(close_rel) = comment[open..].find(')') else {
            break;
        };
        let close = open + close_rel;
        let rule = comment[open..close].trim().to_string();
        let justification = comment[close + 1..].trim().to_string();
        out.push((rule, justification));
        search = close + 1;
    }
    out
}

/// `true` when line `line1` (1-based) or the line above carries a
/// well-formed allow entry for `rule`.
fn is_allowed(model: &FileModel, rule: RuleId, line1: usize) -> bool {
    let candidates = [line1.checked_sub(1), line1.checked_sub(2)];
    for idx in candidates.into_iter().flatten() {
        if let Some(line) = model.lines.get(idx) {
            // Allow entries live in plain `//` comments only; doc comments
            // are rendered documentation and may quote the grammar.
            if line.doc_comment {
                continue;
            }
            for (name, justification) in allow_entries(&line.comment) {
                if name == rule.name() && !justification.is_empty() {
                    return true;
                }
            }
        }
    }
    false
}

/// The `lint-allow` meta rule: every entry must name a known rule and carry
/// a justification.
fn validate_allow_entries(model: &FileModel) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in model.lines.iter().enumerate() {
        if line.doc_comment {
            continue;
        }
        for (name, justification) in allow_entries(&line.comment) {
            match RuleId::from_name(&name) {
                None => out.push(violation(
                    model,
                    RuleId::LintAllow,
                    i,
                    format!("allow entry names unknown rule `{name}`"),
                )),
                Some(rule) if justification.is_empty() => out.push(violation(
                    model,
                    RuleId::LintAllow,
                    i,
                    format!("allow entry for `{rule}` carries no justification"),
                )),
                Some(_) => {}
            }
        }
    }
    out
}

/// `true` when `code[pos..]` starts a word-boundary occurrence of `needle`.
fn word_at(code: &str, pos: usize, needle: &str) -> bool {
    let before_ok = pos == 0
        || !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = pos + needle.len();
    let after_ok = !code[after..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// All word-boundary occurrences of `needle` in `code`.
fn find_word(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = code[search..].find(needle) {
        let pos = search + rel;
        if word_at(code, pos, needle) {
            out.push(pos);
        }
        search = pos + needle.len();
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 1: no-panic-in-lib
// ---------------------------------------------------------------------------

const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn no_panic_in_lib(model: &FileModel) -> Vec<Violation> {
    let mut out = Vec::new();
    // Locally-declared Vec bindings, for the indexing heuristic: without type
    // inference we only flag `name[...]` when `name` was visibly bound to a
    // Vec in this file.
    let mut vec_names: Vec<String> = Vec::new();
    for (i, line) in model.lines.iter().enumerate() {
        if line.test_scope {
            continue;
        }
        let code = &line.code;
        for pattern in PANIC_PATTERNS {
            for _ in find_word_fragment(code, pattern) {
                out.push(violation(
                    model,
                    RuleId::NoPanicInLib,
                    i,
                    format!("`{pattern}` can panic in library code"),
                ));
            }
        }
        track_vec_bindings(code, &mut vec_names);
        for name in &vec_names {
            let needle = format!("{name}[");
            let mut search = 0usize;
            while let Some(rel) = code[search..].find(&needle) {
                let pos = search + rel;
                if word_at(code, pos, name) {
                    out.push(violation(
                        model,
                        RuleId::NoPanicInLib,
                        i,
                        format!("indexing `{name}[...]` can panic; prefer `.get(..)` or iterators"),
                    ));
                }
                search = pos + needle.len();
            }
        }
    }
    out
}

/// Occurrences of a pattern that starts with a non-word char (`.unwrap()`)
/// or ends mid-word (`panic!(`): only the leading boundary needs checking.
fn find_word_fragment(code: &str, pattern: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut search = 0usize;
    let leading_word = pattern
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    while let Some(rel) = code[search..].find(pattern) {
        let pos = search + rel;
        let boundary_ok = !leading_word
            || pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary_ok {
            out.push(pos);
        }
        search = pos + pattern.len();
    }
    out
}

/// Remember `let` bindings that are visibly Vecs: `let x: Vec<..>`,
/// `let x = vec![..]`, `let x = Vec::..`.
fn track_vec_bindings(code: &str, names: &mut Vec<String>) {
    for pos in find_word(code, "let") {
        let rest = &code[pos + 3..];
        let rest = rest.trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let tail = &rest[name.len()..];
        let is_vec = tail.trim_start().starts_with(": Vec<")
            || tail.contains("= vec![")
            || tail.contains("= Vec::");
        if is_vec && !names.iter().any(|n| n == &name) {
            names.push(name);
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: unsafe-needs-safety-comment
// ---------------------------------------------------------------------------

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_LOOKBACK: usize = 3;

fn unsafe_needs_safety_comment(model: &FileModel) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in model.lines.iter().enumerate() {
        if find_word(&line.code, "unsafe").is_empty() {
            continue;
        }
        let covered = (i.saturating_sub(SAFETY_LOOKBACK)..=i)
            .any(|j| model.lines[j].comment.contains("SAFETY:"));
        if !covered {
            out.push(violation(
                model,
                RuleId::UnsafeNeedsSafetyComment,
                i,
                "`unsafe` without a `// SAFETY:` comment on this or a nearby preceding line"
                    .to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 3: atomic-ordering-discipline
// ---------------------------------------------------------------------------

const NON_RELAXED: [&str; 4] = [
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Atomic cell types whose appearance outside `crates/telemetry` is flagged
/// (matching on `Ordering::` alone would trip over `std::cmp::Ordering`).
const ATOMIC_TYPES: [&str; 8] = [
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI64",
    "AtomicIsize",
];

fn atomic_ordering_discipline(model: &FileModel, ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    let in_telemetry = ctx.crate_name == "telemetry";
    for (i, line) in model.lines.iter().enumerate() {
        if line.test_scope {
            continue;
        }
        let code = &line.code;
        if in_telemetry {
            for ordering in NON_RELAXED {
                if code.contains(ordering) && !annotated_pair(model, i) {
                    out.push(violation(
                        model,
                        RuleId::AtomicOrderingDiscipline,
                        i,
                        format!(
                            "`{ordering}` in crates/telemetry without an \
                             `ordering-pair(name):` annotation; the telemetry hot path is \
                             Relaxed-only by design"
                        ),
                    ));
                }
            }
        } else if code.contains("sync::atomic")
            || ATOMIC_TYPES.iter().any(|t| !find_word(code, t).is_empty())
        {
            out.push(violation(
                model,
                RuleId::AtomicOrderingDiscipline,
                i,
                "raw atomics outside crates/telemetry; use the telemetry primitives \
                 (Counter/Gauge/LatencyHistogram) instead"
                    .to_string(),
            ));
        }
    }
    out
}

/// `true` when the line (or one just above) names its acquire/release pair:
/// `// ordering-pair(<name>): <why this pairing is correct>`.
fn annotated_pair(model: &FileModel, line0: usize) -> bool {
    (line0.saturating_sub(2)..=line0).any(|j| {
        model.lines[j]
            .comment
            .split("ordering-pair(")
            .nth(1)
            .and_then(|rest| rest.split_once(')'))
            .is_some_and(|(name, tail)| !name.trim().is_empty() && tail.trim().len() > 1)
    })
}

// ---------------------------------------------------------------------------
// Rule 4: deterministic-rng
// ---------------------------------------------------------------------------

const ENTROPY_PATTERNS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "rand::random",
    "SystemTime::now",
];

fn deterministic_rng(model: &FileModel, _category: Category) -> Vec<Violation> {
    // Unlike the panic rule, `#[cfg(test)]` scopes are NOT exempt: the whole
    // test suite replays from fixed seeds, and one entropy-seeded test makes
    // a red CI run unreproducible.
    let mut out = Vec::new();
    for (i, line) in model.lines.iter().enumerate() {
        for pattern in ENTROPY_PATTERNS {
            if !find_word_fragment(&line.code, pattern).is_empty() {
                out.push(violation(
                    model,
                    RuleId::DeterministicRng,
                    i,
                    format!(
                        "`{pattern}` breaks seed-replayability; derive randomness from an \
                         explicit seed (see tests::test_rng / user_seed mixing)"
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 5: no-alloc-hot-path
// ---------------------------------------------------------------------------

const ALLOC_PATTERNS: [&str; 12] = [
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    ".push(",
    ".collect(",
    ".collect::<",
    "format!(",
    ".to_string()",
    ".to_vec()",
    ".to_owned()",
    "String::from(",
    "Box::new(",
];

fn no_alloc_hot_path(model: &FileModel) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < model.lines.len() {
        if !is_hot_path_marker(&model.lines[i]) {
            i += 1;
            continue;
        }
        // The marker covers the next function: scan to its body and check
        // every line until the braces balance.
        let Some((body_start, body_end)) = function_body_after(model, i) else {
            i += 1;
            continue;
        };
        for l in body_start..=body_end {
            let line = &model.lines[l];
            if line.test_scope {
                continue;
            }
            for pattern in ALLOC_PATTERNS {
                if !find_word_fragment(&line.code, pattern).is_empty() {
                    out.push(violation(
                        model,
                        RuleId::NoAllocHotPath,
                        l,
                        format!("`{pattern}` allocates inside a `// hot-path` function"),
                    ));
                }
            }
        }
        i = body_end + 1;
    }
    out
}

/// A hot-path marker is a comment line whose trimmed text *is* the marker
/// (prose that merely mentions hot paths must not arm the rule).
fn is_hot_path_marker(line: &Line) -> bool {
    let text = line.comment.trim();
    !line.doc_comment && (text == "hot-path" || text.starts_with("hot-path:"))
}

/// The `(first, last)` body lines of the next `fn` at or after `line0`.
fn function_body_after(model: &FileModel, line0: usize) -> Option<(usize, usize)> {
    let mut saw_fn = false;
    let mut depth = 0i32;
    let mut start = None;
    for l in line0..model.lines.len() {
        let code = &model.lines[l].code;
        if !saw_fn && find_word(code, "fn").is_empty() {
            continue;
        }
        saw_fn = true;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if start.is_none() {
                        start = Some(l);
                    }
                }
                '}' => {
                    depth -= 1;
                    if start.is_some() && depth == 0 {
                        return Some((start.unwrap_or(l), l));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule 6: vendor-drift
// ---------------------------------------------------------------------------

fn vendor_drift(model: &FileModel) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in model.lines.iter().enumerate() {
        if line.test_scope || !line.code.contains("pub fn ") {
            continue;
        }
        let name: String = line
            .code
            .split("pub fn ")
            .nth(1)
            .unwrap_or("")
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        // `pub fn $name` inside macro_rules! bodies yields no identifier;
        // the expansion site, not the macro, is what mirrors upstream.
        if name.is_empty() {
            continue;
        }
        // Walk up the contiguous doc/attribute/comment block above the fn.
        let mut covered = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let above = &model.lines[j];
            let is_block_line = above.doc_comment
                || above.code.trim().starts_with("#[")
                || (above.code.trim().is_empty() && !above.comment.is_empty());
            if !is_block_line {
                break;
            }
            if above.comment.contains("Mirrors `") {
                covered = true;
                break;
            }
        }
        if !covered {
            out.push(violation(
                model,
                RuleId::VendorDrift,
                i,
                format!(
                    "vendored `pub fn {name}` has no `Mirrors `<real crate path>`` doc \
                     marker; shims must name the upstream signature they stand in for"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::FileModel;
    use std::path::Path;

    fn check(src: &str, category: Category, crate_name: &str) -> Vec<Violation> {
        let model = FileModel::parse(Path::new("mem.rs"), src);
        check_file(
            &model,
            &FileContext {
                category,
                crate_name: crate_name.to_string(),
            },
        )
    }

    #[test]
    fn panic_patterns_fire_only_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        let v = check(src, Category::Lib, "math");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::NoPanicInLib);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn panic_in_string_or_comment_does_not_fire() {
        let src = "// .unwrap() is forbidden\nlet msg = \".unwrap()\";\n";
        assert!(check(src, Category::Lib, "math").is_empty());
    }

    #[test]
    fn vec_index_heuristic_tracks_local_bindings() {
        let src = "fn f(i: usize) -> u64 {\n  let counts = vec![0u64; 8];\n  counts[i]\n}\n";
        let v = check(src, Category::Lib, "math");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("counts"));
        // Slices/arrays of unknown type are not flagged.
        let src2 = "fn f(xs: &[u64], i: usize) -> u64 { xs[i] }\n";
        assert!(check(src2, Category::Lib, "math").is_empty());
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // lint:allow(no-panic-in-lib) x is Some by construction in this module\n\
                   x.unwrap()\n}\n";
        assert!(check(src, Category::Lib, "math").is_empty());
    }

    #[test]
    fn allow_without_justification_is_itself_reported() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // lint:allow(no-panic-in-lib)\n\
                   x.unwrap()\n}\n";
        let v = check(src, Category::Lib, "math");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.rule == RuleId::LintAllow));
        assert!(v.iter().any(|v| v.rule == RuleId::NoPanicInLib));
    }

    #[test]
    fn allow_with_unknown_rule_is_reported() {
        let src = "// lint:allow(no-such-rule) because reasons\nfn f() {}\n";
        let v = check(src, Category::Lib, "math");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::LintAllow);
        assert!(v[0].message.contains("no-such-rule"));
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { danger() } }\n";
        let v = check(bad, Category::Lib, "math");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::UnsafeNeedsSafetyComment);
        let good = "// SAFETY: the pointer is valid for the lifetime of the call\n\
                    fn f() { unsafe { danger() } }\n";
        assert!(check(good, Category::Lib, "math").is_empty());
    }

    #[test]
    fn forbid_unsafe_code_attribute_is_not_an_unsafe_site() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(check(src, Category::Lib, "math").is_empty());
    }

    #[test]
    fn non_relaxed_ordering_in_telemetry_needs_pair_annotation() {
        let bad = "fn f(a: &AtomicU64) { a.store(1, Ordering::Release); }\n";
        let v = check(bad, Category::Lib, "telemetry");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::AtomicOrderingDiscipline);
        let good = "// ordering-pair(flush-seal): release pairs with the Acquire load in seal()\n\
                    fn f(a: &AtomicU64) { a.store(1, Ordering::Release); }\n";
        assert!(check(good, Category::Lib, "telemetry").is_empty());
        let relaxed = "fn f(a: &AtomicU64) { a.store(1, Ordering::Relaxed); }\n";
        assert!(check(relaxed, Category::Lib, "telemetry").is_empty());
    }

    #[test]
    fn atomics_outside_telemetry_are_flagged() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        let v = check(src, Category::Lib, "protocol");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::AtomicOrderingDiscipline);
    }

    #[test]
    fn entropy_rng_is_flagged_in_lib_and_tests_but_not_harness() {
        let src = "fn f() { let mut rng = thread_rng(); }\n";
        assert_eq!(check(src, Category::Lib, "protocol").len(), 1);
        assert_eq!(check(src, Category::Test, "tests").len(), 1);
        assert!(check(src, Category::Harness, "bench").is_empty());
    }

    #[test]
    fn hot_path_function_may_not_allocate() {
        let bad = "// hot-path\nfn record(&self, v: u64) {\n  let label = v.to_string();\n}\n";
        let v = check(bad, Category::Lib, "telemetry");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::NoAllocHotPath);
        assert_eq!(v[0].line, 3);
        let good = "// hot-path\nfn record(&self, v: u64) { self.total += v; }\n\
                    fn cold(&self) -> String { format!(\"x\") }\n";
        assert!(check(good, Category::Lib, "telemetry").is_empty());
    }

    #[test]
    fn prose_mentioning_hot_path_does_not_arm_the_rule() {
        let src = "/// Functions on the hot-path: see docs.\n\
                   fn f() -> Vec<u32> { Vec::new() }\n";
        assert!(check(src, Category::Lib, "math").is_empty());
    }

    #[test]
    fn vendor_pub_fn_needs_mirror_marker() {
        let bad = "pub fn gen_range(&mut self) -> f64 { 0.0 }\n";
        let v = check(bad, Category::Vendor, "rand");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::VendorDrift);
        assert!(v[0].message.contains("gen_range"));
        let good = "/// Mirrors `rand::Rng::gen_range` for the half-open f64 case.\n\
                    pub fn gen_range(&mut self) -> f64 { 0.0 }\n";
        assert!(check(good, Category::Vendor, "rand").is_empty());
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::from_name(rule.name()), Some(rule));
        }
        assert_eq!(RuleId::from_name("nope"), None);
    }
}
