//! Workspace walking and file classification for `hdldp-lint`.
//!
//! [`scan_workspace`] discovers every Rust source file in the repository,
//! classifies it into a [`Category`] (which decides the rule set, see
//! [`crate::rules::rules_for`]), and runs the rule engine over it. The walk
//! is filesystem-order independent: results are sorted by path, then line,
//! so two runs over the same tree always print identical reports.

use crate::lexer::FileModel;
use crate::rules::{check_file, Category, FileContext, Violation};
use std::path::{Path, PathBuf};

/// Directories that are never scanned: build output, VCS state, experiment
/// results, and the lint fixture corpus (which contains violations by
/// design — the fixture tests drive the rules over it explicitly).
const SKIP_DIRS: [&str; 5] = ["target", ".git", "results", "fixtures", ".github"];

/// One classified file, ready for the rule engine.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// The rule set selector.
    pub category: Category,
    /// The crate the file belongs to (`""` for files outside any crate).
    pub crate_name: String,
}

/// The outcome of a workspace scan.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Files that were scanned, in path order.
    pub files: Vec<ScannedFile>,
    /// Violations across all files, sorted by path then line then rule.
    pub violations: Vec<Violation>,
}

impl ScanReport {
    /// `true` when the scan found nothing to report.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Classify one path (relative to the workspace root).
///
/// Returns `None` for files the lint does not own (anything outside
/// `crates/`, `vendor/`, `tests/`, `examples/`).
pub fn classify(relative: &Path) -> Option<(Category, String)> {
    let parts: Vec<&str> = relative
        .iter()
        .map(|p| p.to_str().unwrap_or_default())
        .collect();
    match parts.first().copied() {
        Some("vendor") => {
            let krate = parts.get(1).copied().unwrap_or_default();
            Some((Category::Vendor, krate.to_string()))
        }
        Some("tests") | Some("examples") => {
            let krate = parts.first().copied().unwrap_or_default();
            Some((Category::Test, krate.to_string()))
        }
        Some("crates") => {
            let krate = parts.get(1).copied().unwrap_or_default().to_string();
            // Per-crate integration tests are test code; benches and
            // binaries are harness code even inside lib crates; the bench
            // crate is harness code throughout.
            if parts.contains(&"tests") {
                Some((Category::Test, krate))
            } else if krate == "bench" || parts.contains(&"bin") || parts.contains(&"benches") {
                Some((Category::Harness, krate))
            } else {
                Some((Category::Lib, krate))
            }
        }
        _ => None,
    }
}

/// Recursively collect the `.rs` files under `root` that the lint owns.
pub fn discover(root: &Path) -> std::io::Result<Vec<ScannedFile>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<ScannedFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_str().unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let relative = path.strip_prefix(root).unwrap_or(&path);
            if let Some((category, crate_name)) = classify(relative) {
                out.push(ScannedFile {
                    path: relative.to_path_buf(),
                    category,
                    crate_name,
                });
            }
        }
    }
    Ok(())
}

/// Lint one file with an explicit category/crate (the fixture tests use
/// this to drive rules over out-of-tree files).
pub fn lint_file(
    path: &Path,
    category: Category,
    crate_name: &str,
) -> std::io::Result<Vec<Violation>> {
    let model = FileModel::load(path)?;
    Ok(check_file(
        &model,
        &FileContext {
            category,
            crate_name: crate_name.to_string(),
        },
    ))
}

/// Scan the whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<ScanReport> {
    let files = discover(root)?;
    let mut violations = Vec::new();
    for file in &files {
        let model = FileModel::load(&root.join(&file.path))?;
        // Reported paths are workspace-relative even though the file was
        // read through `root`.
        let mut found = check_file(
            &FileModel {
                path: file.path.clone(),
                lines: model.lines,
            },
            &FileContext {
                category: file.category,
                crate_name: file.crate_name.clone(),
            },
        );
        violations.append(&mut found);
    }
    violations.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
    });
    Ok(ScanReport { files, violations })
}

/// Locate the workspace root: walk up from `start` until a directory with a
/// `Cargo.toml` declaring `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(path: &str) -> Option<Category> {
        classify(Path::new(path)).map(|(c, _)| c)
    }

    #[test]
    fn classification_covers_the_workspace_layout() {
        assert_eq!(cat("crates/math/src/erf.rs"), Some(Category::Lib));
        assert_eq!(
            cat("crates/telemetry/src/histogram.rs"),
            Some(Category::Lib)
        );
        assert_eq!(cat("crates/bench/src/runner.rs"), Some(Category::Harness));
        assert_eq!(
            cat("crates/bench/src/bin/fig4_mse_vs_epsilon.rs"),
            Some(Category::Harness)
        );
        assert_eq!(
            cat("crates/bench/benches/framework.rs"),
            Some(Category::Harness)
        );
        assert_eq!(
            cat("crates/analysis/src/bin/hdldp_lint.rs"),
            Some(Category::Harness)
        );
        assert_eq!(cat("tests/tests/invariants.rs"), Some(Category::Test));
        assert_eq!(
            cat("crates/analysis/tests/schedule_checker.rs"),
            Some(Category::Test)
        );
        assert_eq!(cat("examples/examples/quickstart.rs"), Some(Category::Test));
        assert_eq!(cat("vendor/rand/src/lib.rs"), Some(Category::Vendor));
        assert_eq!(cat("README.md"), None);
        assert_eq!(cat("build.rs"), None);
    }

    #[test]
    fn crate_name_is_extracted() {
        let (_, name) = classify(Path::new("crates/telemetry/src/metrics.rs")).unwrap();
        assert_eq!(name, "telemetry");
        let (_, name) = classify(Path::new("vendor/serde_json/src/lib.rs")).unwrap();
        assert_eq!(name, "serde_json");
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates/analysis").exists());
    }
}
