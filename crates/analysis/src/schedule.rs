//! A deterministic-schedule concurrency checker (a miniature `loom`).
//!
//! The telemetry and ingest layers rely on concurrency invariants that unit
//! tests can only sample: a handful of real threads exercises a handful of
//! interleavings out of millions. This module takes the opposite approach —
//! it runs a *model* of the concurrent algorithm under **every** schedule a
//! small thread count can produce, deterministically, with no real threads
//! at all.
//!
//! A model is a set of [`ThreadProgram`]s, each a list of steps mutating a
//! shared state `S`. A [`Schedule`] is the sequence of thread ids picked at
//! each step. [`Explorer::explore`] enumerates all schedules by depth-first
//! search (optionally bounding the number of *preemptions* — switches away
//! from a thread that still has steps — which is the standard way to tame
//! the factorial blow-up while keeping every practically relevant
//! interleaving: most real bugs need only 1–2 preemptions). After every
//! step the invariant callback runs; after the last step the final-state
//! callback runs. The first failing schedule is reported with the exact
//! thread sequence, so a failure replays with [`Explorer::run_schedule`].

use std::fmt;

/// One step of a model thread: a mutation of the shared state that the real
/// system performs atomically (one atomic RMW, one field write, one load).
/// Granularity is the modelling decision: anything the real code does NOT
/// perform atomically must be split across two steps.
pub type Step<S> = Box<dyn Fn(&mut S)>;

/// A named sequence of steps executed in program order by one model thread.
pub struct ThreadProgram<S> {
    /// Thread name, used in failure reports.
    pub name: String,
    /// The steps, executed in order (the scheduler interleaves *between*
    /// steps, never inside one).
    pub steps: Vec<Step<S>>,
}

impl<S> ThreadProgram<S> {
    /// Build a program from a name and its steps.
    pub fn new(name: &str, steps: Vec<Step<S>>) -> Self {
        Self {
            name: name.to_string(),
            steps,
        }
    }
}

/// The sequence of thread ids the scheduler picked, one per step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule(pub Vec<usize>);

impl fmt::Display for Schedule {
    /// Renders as `t0 t0 t1 t0 ...` — paste-able into a replay test.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "t{t}")?;
        }
        Ok(())
    }
}

/// A failed exploration: which schedule broke which check.
#[derive(Debug, Clone)]
pub struct ScheduleFailure {
    /// The exact interleaving that failed (replayable).
    pub schedule: Schedule,
    /// The step index at which the check failed (`steps.len()` for a
    /// final-state failure).
    pub at_step: usize,
    /// What the invariant reported.
    pub message: String,
}

impl fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule [{}] failed at step {}: {}",
            self.schedule, self.at_step, self.message
        )
    }
}

/// Statistics of a successful exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorationReport {
    /// Number of complete schedules executed.
    pub schedules: u64,
    /// Total steps across all threads (the depth of every schedule).
    pub steps: usize,
    /// Schedules skipped by the preemption bound (0 when unbounded).
    pub bounded_out: u64,
}

/// A boxed state predicate: `Ok(())` when the state is acceptable, an
/// explanatory message otherwise.
type StateCheck<S> = Box<dyn Fn(&S) -> Result<(), String>>;

/// The checker: thread programs + invariants + an optional preemption bound.
pub struct Explorer<S: Clone> {
    threads: Vec<ThreadProgram<S>>,
    /// Checked after **every** step.
    invariant: StateCheck<S>,
    /// Checked once all threads have finished.
    final_check: StateCheck<S>,
    /// `Some(k)`: explore only schedules with at most `k` preemptions.
    preemption_bound: Option<usize>,
}

impl<S: Clone> Explorer<S> {
    /// Build an explorer over `threads` with no checks and no bound.
    pub fn new(threads: Vec<ThreadProgram<S>>) -> Self {
        Self {
            threads,
            invariant: Box::new(|_| Ok(())),
            final_check: Box::new(|_| Ok(())),
            preemption_bound: None,
        }
    }

    /// Install the per-step invariant.
    #[must_use]
    pub fn invariant(mut self, f: impl Fn(&S) -> Result<(), String> + 'static) -> Self {
        self.invariant = Box::new(f);
        self
    }

    /// Install the final-state check.
    #[must_use]
    pub fn final_check(mut self, f: impl Fn(&S) -> Result<(), String> + 'static) -> Self {
        self.final_check = Box::new(f);
        self
    }

    /// Bound the number of preemptions per schedule.
    #[must_use]
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    /// Total steps across all threads.
    pub fn total_steps(&self) -> usize {
        self.threads.iter().map(|t| t.steps.len()).sum()
    }

    /// Exhaustively execute every schedule (within the preemption bound)
    /// from `initial`, checking the invariant after each step and the final
    /// check at each leaf. Returns statistics, or the first failure.
    pub fn explore(&self, initial: &S) -> Result<ExplorationReport, ScheduleFailure> {
        let mut report = ExplorationReport {
            schedules: 0,
            steps: self.total_steps(),
            bounded_out: 0,
        };
        let mut pcs = vec![0usize; self.threads.len()];
        let mut trace = Vec::with_capacity(report.steps);
        self.dfs(initial, &mut pcs, None, 0, &mut trace, &mut report)?;
        Ok(report)
    }

    fn dfs(
        &self,
        state: &S,
        pcs: &mut Vec<usize>,
        last: Option<usize>,
        preemptions: usize,
        trace: &mut Vec<usize>,
        report: &mut ExplorationReport,
    ) -> Result<(), ScheduleFailure> {
        let runnable: Vec<usize> = pcs
            .iter()
            .zip(&self.threads)
            .enumerate()
            .filter(|(_, (&pc, thread))| pc < thread.steps.len())
            .map(|(t, _)| t)
            .collect();
        if runnable.is_empty() {
            report.schedules += 1;
            return (self.final_check)(state).map_err(|message| ScheduleFailure {
                schedule: Schedule(trace.clone()),
                at_step: trace.len(),
                message,
            });
        }
        for &t in &runnable {
            // A switch to `t` while `last` could still run is a preemption.
            let preempted = match last {
                Some(l) => t != l && runnable.contains(&l),
                None => false,
            };
            let p = preemptions + usize::from(preempted);
            if let Some(bound) = self.preemption_bound {
                if p > bound {
                    report.bounded_out += 1;
                    continue;
                }
            }
            let mut next = state.clone();
            // `runnable` only lists threads whose program counter is strictly
            // inside their step list, so the lookup cannot miss.
            let Some(step) = self
                .threads
                .get(t)
                .and_then(|th| pcs.get(t).and_then(|&pc| th.steps.get(pc)))
            else {
                continue;
            };
            step(&mut next);
            trace.push(t);
            if let Some(pc) = pcs.get_mut(t) {
                *pc += 1;
            }
            let checked = (self.invariant)(&next).map_err(|message| ScheduleFailure {
                schedule: Schedule(trace.clone()),
                at_step: trace.len() - 1,
                message,
            });
            let result = checked.and_then(|()| self.dfs(&next, pcs, Some(t), p, trace, report));
            if let Some(pc) = pcs.get_mut(t) {
                *pc -= 1;
            }
            trace.pop();
            result?;
        }
        Ok(())
    }

    /// Replay one explicit schedule (for reproducing a reported failure).
    /// Ignores the preemption bound. Returns the final state.
    pub fn run_schedule(&self, initial: &S, schedule: &Schedule) -> Result<S, ScheduleFailure> {
        let mut state = initial.clone();
        let mut pcs = vec![0usize; self.threads.len()];
        for (i, &t) in schedule.0.iter().enumerate() {
            let pc = pcs.get(t).copied().unwrap_or(usize::MAX);
            let step = self
                .threads
                .get(t)
                .and_then(|th| th.steps.get(pc))
                .ok_or_else(|| ScheduleFailure {
                    schedule: schedule.clone(),
                    at_step: i,
                    message: format!("schedule names thread t{t} past its last step"),
                })?;
            step(&mut state);
            if let Some(pc) = pcs.get_mut(t) {
                *pc += 1;
            }
            (self.invariant)(&state).map_err(|message| ScheduleFailure {
                schedule: schedule.clone(),
                at_step: i,
                message,
            })?;
        }
        if pcs
            .iter()
            .zip(&self.threads)
            .all(|(&pc, t)| pc == t.steps.len())
        {
            (self.final_check)(&state).map_err(|message| ScheduleFailure {
                schedule: schedule.clone(),
                at_step: schedule.0.len(),
                message,
            })?;
        }
        Ok(state)
    }
}

/// `C(n+m, n)`-style multinomial count of interleavings of the given
/// per-thread step counts — what an unbounded exploration must visit.
pub fn interleaving_count(step_counts: &[usize]) -> u64 {
    let mut total: u64 = 1;
    let mut placed: u64 = 0;
    for &count in step_counts {
        for i in 1..=count as u64 {
            placed += 1;
            // total *= placed; total /= i — kept exact by multiplying first.
            total = total * placed / i;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, Default)]
    struct Pair {
        a: u64,
        b: u64,
    }

    fn incr_thread(n: usize, field: fn(&mut Pair) -> &mut u64) -> ThreadProgram<Pair> {
        let steps: Vec<Step<Pair>> = (0..n)
            .map(|_| {
                let f = field;
                Box::new(move |s: &mut Pair| *f(s) += 1) as Step<Pair>
            })
            .collect();
        ThreadProgram::new("incr", steps)
    }

    #[test]
    fn unbounded_exploration_visits_every_interleaving() {
        let threads = vec![incr_thread(3, |s| &mut s.a), incr_thread(3, |s| &mut s.b)];
        let report = Explorer::new(threads)
            .final_check(|s| {
                if s.a == 3 && s.b == 3 {
                    Ok(())
                } else {
                    Err(format!("lost updates: a={} b={}", s.a, s.b))
                }
            })
            .explore(&Pair::default())
            .expect("all schedules pass");
        // C(6,3) = 20 interleavings of two 3-step threads.
        assert_eq!(report.schedules, 20);
        assert_eq!(report.schedules, interleaving_count(&[3, 3]));
        assert_eq!(report.bounded_out, 0);
    }

    #[test]
    fn preemption_bound_prunes_but_keeps_serial_schedules() {
        let threads = vec![incr_thread(4, |s| &mut s.a), incr_thread(4, |s| &mut s.b)];
        let bounded = Explorer::new(threads)
            .preemption_bound(0)
            .explore(&Pair::default())
            .expect("serial schedules pass");
        // Zero preemptions over two threads = the two serial orders.
        assert_eq!(bounded.schedules, 2);
        assert!(bounded.bounded_out > 0);
    }

    #[test]
    fn invariant_failure_reports_a_replayable_schedule() {
        // Invariant "a >= b" breaks as soon as the b-thread runs first.
        let threads = vec![incr_thread(2, |s| &mut s.a), incr_thread(2, |s| &mut s.b)];
        let explorer = Explorer::new(threads).invariant(|s: &Pair| {
            if s.a >= s.b {
                Ok(())
            } else {
                Err(format!("a={} < b={}", s.a, s.b))
            }
        });
        let failure = explorer
            .explore(&Pair::default())
            .expect_err("some schedule must fail");
        // Replaying the reported schedule reproduces the failure.
        let replay = explorer.run_schedule(&Pair::default(), &failure.schedule);
        assert!(replay.is_err());
        assert_eq!(replay.unwrap_err().message, failure.message);
    }

    #[test]
    fn three_thread_counts_match_the_multinomial() {
        let threads = vec![
            incr_thread(2, |s| &mut s.a),
            incr_thread(2, |s| &mut s.b),
            incr_thread(2, |s| &mut s.a),
        ];
        let report = Explorer::new(threads)
            .explore(&Pair::default())
            .expect("no checks installed");
        // 6!/(2!2!2!) = 90.
        assert_eq!(report.schedules, 90);
        assert_eq!(report.schedules, interleaving_count(&[2, 2, 2]));
    }

    #[test]
    fn malformed_schedule_replay_is_an_error() {
        let threads = vec![incr_thread(1, |s| &mut s.a)];
        let explorer = Explorer::new(threads);
        let err = explorer
            .run_schedule(&Pair::default(), &Schedule(vec![0, 0]))
            .expect_err("second step does not exist");
        assert!(err.message.contains("past its last step"));
    }
}
