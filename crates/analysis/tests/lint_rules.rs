//! Fixture-corpus tests for the `hdldp-lint` rule engine.
//!
//! Each dirty fixture targets one rule; the assertions pin the exact
//! `(rule, line)` pairs so a rule that drifts (over- or under-reporting)
//! fails loudly. The final test scans the live workspace and requires it to
//! be clean — the same gate CI runs through the `hdldp-lint` binary.

use hdldp_analysis::{find_workspace_root, lint_file, scan_workspace, Category, RuleId, Violation};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn pairs(violations: &[Violation]) -> Vec<(RuleId, usize)> {
    violations.iter().map(|v| (v.rule, v.line)).collect()
}

fn lint(name: &str, category: Category, crate_name: &str) -> Vec<(RuleId, usize)> {
    let found = lint_file(&fixture(name), category, crate_name).expect("fixture readable");
    pairs(&found)
}

#[test]
fn no_panic_in_lib_flags_every_panic_idiom() {
    assert_eq!(
        lint("dirty/panics.rs", Category::Lib, "fixture"),
        vec![
            (RuleId::NoPanicInLib, 6),  // .unwrap()
            (RuleId::NoPanicInLib, 10), // .expect(
            (RuleId::NoPanicInLib, 14), // panic!(
            (RuleId::NoPanicInLib, 20), // unreachable!(
            (RuleId::NoPanicInLib, 26), // items[i] on a tracked Vec
        ],
    );
}

#[test]
fn unsafe_needs_a_safety_comment_within_three_lines() {
    assert_eq!(
        lint("dirty/unsafe_no_safety.rs", Category::Lib, "fixture"),
        vec![
            (RuleId::UnsafeNeedsSafetyComment, 4),
            (RuleId::UnsafeNeedsSafetyComment, 19),
        ],
    );
}

#[test]
fn raw_atomics_outside_telemetry_are_flagged() {
    assert_eq!(
        lint(
            "dirty/atomics_outside_telemetry.rs",
            Category::Lib,
            "protocol"
        ),
        vec![
            (RuleId::AtomicOrderingDiscipline, 4), // use std::sync::atomic
            (RuleId::AtomicOrderingDiscipline, 7), // AtomicU64 cell
        ],
    );
}

#[test]
fn telemetry_non_relaxed_orderings_need_pair_annotations() {
    assert_eq!(
        lint("dirty/telemetry_ordering.rs", Category::Lib, "telemetry"),
        vec![(RuleId::AtomicOrderingDiscipline, 8)],
    );
}

#[test]
fn entropy_sources_are_flagged_even_in_tests() {
    assert_eq!(
        lint("dirty/entropy.rs", Category::Lib, "fixture"),
        vec![
            (RuleId::DeterministicRng, 5),  // thread_rng
            (RuleId::DeterministicRng, 13), // from_entropy, inside #[cfg(test)]
        ],
    );
}

#[test]
fn hot_path_functions_may_not_allocate() {
    assert_eq!(
        lint("dirty/hot_alloc.rs", Category::Lib, "fixture"),
        vec![(RuleId::NoAllocHotPath, 6)],
    );
}

#[test]
fn vendored_pub_fns_need_mirrors_markers() {
    assert_eq!(
        lint("dirty/vendor_shim.rs", Category::Vendor, "fixture"),
        vec![(RuleId::VendorDrift, 5)],
    );
}

#[test]
fn malformed_allow_entries_are_violations_and_do_not_suppress() {
    assert_eq!(
        lint("dirty/bad_allows.rs", Category::Lib, "fixture"),
        vec![
            (RuleId::LintAllow, 4),     // unknown rule name
            (RuleId::LintAllow, 9),     // no justification
            (RuleId::NoPanicInLib, 10), // the unwrap stays flagged
        ],
    );
}

#[test]
fn clean_fixture_reports_nothing() {
    assert_eq!(lint("clean/lib_ok.rs", Category::Lib, "fixture"), vec![]);
}

#[test]
fn vendor_category_skips_lib_only_rules() {
    // The panic fixture is full of unwraps, but the Vendor rule set only
    // carries the safety-comment and drift rules — and the drift rule then
    // flags the uncovered pub fns.
    let found = lint("dirty/panics.rs", Category::Vendor, "fixture");
    assert!(found.iter().all(|(rule, _)| *rule == RuleId::VendorDrift));
    assert!(!found.is_empty());
}

#[test]
fn test_category_keeps_determinism_but_tolerates_panics() {
    // Test code unwraps freely, but must stay seed-replayable.
    assert_eq!(lint("dirty/panics.rs", Category::Test, "fixture"), vec![]);
    assert_eq!(
        lint("dirty/entropy.rs", Category::Test, "fixture"),
        vec![
            (RuleId::DeterministicRng, 5),
            (RuleId::DeterministicRng, 13),
        ],
    );
}

#[test]
fn the_workspace_scans_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above the analysis crate");
    let report = scan_workspace(&root).expect("workspace scan");
    assert!(
        report.files.len() > 100,
        "expected the full workspace, scanned only {} files",
        report.files.len()
    );
    assert!(
        report.is_clean(),
        "workspace must lint clean, found:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!(
                "{}:{}: [{}] {}",
                v.path.display(),
                v.line,
                v.rule,
                v.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
