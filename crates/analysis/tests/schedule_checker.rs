//! Exhaustive-schedule runs of the concurrency models, cross-checked
//! against the real lock-free types they model.
//!
//! The exhaustive configurations are chosen so that every interleaving is
//! enumerated (the expected schedule counts are asserted via the
//! multinomial [`interleaving_count`]); the larger configurations bound
//! preemptions, matching how loom-style checkers scale past exhaustive
//! territory. The cross-checks replay the same inputs through
//! `hdldp_telemetry` and `hdldp_protocol` and require the quiesced model
//! state to agree with the real implementations.

use hdldp_analysis::{
    histogram_explorer, interleaving_count, merge_in_order, model_bucket_index, permutations,
    shard_explorer, MODEL_BUCKETS,
};
use hdldp_protocol::ShardAccumulator;
use hdldp_telemetry::Registry;

#[test]
fn histogram_two_recorders_one_snapshot_exhaustive() {
    // Two recorders with one value each (3 steps apiece) plus one snapshot
    // (1 begin + MODEL_BUCKETS loads + sum + max + commit steps).
    let (explorer, initial) = histogram_explorer(&[vec![1], vec![9]], 1);
    let report = explorer
        .explore(&initial)
        .expect("no schedule may violate snapshot bounds or monotonicity");
    let expected = interleaving_count(&[3, 3, MODEL_BUCKETS + 4]);
    assert_eq!(report.schedules, expected);
    assert_eq!(report.bounded_out, 0, "no bound was set");
}

#[test]
fn histogram_two_snapshots_stay_monotone_under_every_schedule() {
    let (explorer, initial) = histogram_explorer(&[vec![5]], 2);
    let report = explorer
        .explore(&initial)
        .expect("successive snapshots must be monotone in count/sum/max/buckets");
    let expected = interleaving_count(&[3, 2 * (MODEL_BUCKETS + 4)]);
    assert_eq!(report.schedules, expected);
}

#[test]
fn histogram_three_threads_with_preemption_bound() {
    // Three recorders and one snapshotter is too many steps to enumerate
    // exhaustively; two preemptions already cover the torn-snapshot
    // scenarios (a snapshot interrupted twice mid-read).
    let (explorer, initial) = histogram_explorer(&[vec![1, 2], vec![7], vec![15]], 1);
    let report = explorer
        .preemption_bound(2)
        .explore(&initial)
        .expect("bounded exploration must stay invariant-clean");
    assert!(report.schedules > 0);
    assert!(report.bounded_out > 0, "the bound must actually prune");
}

#[test]
fn model_buckets_mirror_the_real_bucket_shape() {
    // The model bucket function is the real `bucket_index` capped at
    // MODEL_BUCKETS: bit length of the value. Spot-check the boundaries the
    // real histogram uses (0 → bucket 0, 1 → bucket 1, 2..3 → bucket 2, ...).
    assert_eq!(model_bucket_index(0), 0);
    for shift in 0..3 {
        let v = 1u64 << shift;
        assert_eq!(model_bucket_index(v), (shift + 1).min(MODEL_BUCKETS - 1));
    }
}

#[test]
fn quiesced_model_agrees_with_the_real_histogram() {
    // Replay the model's inputs through the real lock-free histogram; the
    // final model state already passed its exactness final-check, so the
    // real type must agree on count and sum.
    let values: Vec<u64> = vec![1, 9, 5, 200, 3];
    let (explorer, initial) = histogram_explorer(std::slice::from_ref(&values), 1);
    explorer.explore(&initial).expect("model run is clean");

    let registry = Registry::new();
    let histogram = registry.histogram("model_crosscheck");
    for &v in &values {
        histogram.record_ns(v);
    }
    assert_eq!(histogram.count(), values.len() as u64);
    let snapshot = registry.snapshot();
    let real = snapshot
        .histogram("model_crosscheck")
        .expect("histogram snapshot present");
    assert_eq!(real.count, values.len() as u64);
    assert_eq!(real.sum_ns, values.iter().sum::<u64>());
    assert_eq!(real.max_ns, *values.iter().max().expect("non-empty"));
}

#[test]
fn shard_two_writers_exhaustive_and_commutative() {
    let per_shard = vec![
        vec![(0usize, 0.5f64), (1, 0.25)],
        vec![(0, 1.0), (1, 0.125)],
    ];
    let (explorer, initial) = shard_explorer(&per_shard, 2);
    let report = explorer
        .explore(&initial)
        .expect("disjoint shards must be schedule-independent and merge-commutative");
    // Each writer: 2 steps per entry + 1 report step = 5 steps.
    let expected = interleaving_count(&[5, 5]);
    assert_eq!(report.schedules, expected);
}

#[test]
fn shard_three_writers_with_preemption_bound() {
    let per_shard = vec![
        vec![(0usize, 0.5f64), (1, 0.25)],
        vec![(0, 1.0)],
        vec![(1, 2.0), (0, 0.125)],
    ];
    let (explorer, initial) = shard_explorer(&per_shard, 2);
    let report = explorer
        .preemption_bound(3)
        .explore(&initial)
        .expect("bounded exploration must stay clean");
    assert!(report.schedules > 0);
    assert!(report.bounded_out > 0);
}

#[test]
fn model_merge_agrees_with_the_real_accumulator() {
    // Accumulate the same per-shard entries into real ShardAccumulators,
    // merge them in two opposite orders, and require both the model and the
    // real type to produce identical totals.
    let per_shard = vec![
        vec![(0usize, 0.5f64), (1, 0.25), (2, 4.0)],
        vec![(0, 1.0), (2, 0.125)],
    ];
    let dims = 3;

    let (explorer, initial) = shard_explorer(&per_shard, dims);
    explorer.explore(&initial).expect("model run is clean");

    let mut shards: Vec<ShardAccumulator> = Vec::new();
    for entries in &per_shard {
        let mut acc = ShardAccumulator::new(dims).expect("valid dims");
        acc.accumulate(entries).expect("entries in range");
        shards.push(acc);
    }
    let mut forward = ShardAccumulator::new(dims).expect("valid dims");
    for shard in &shards {
        forward.merge(shard).expect("same dims");
    }
    let mut backward = ShardAccumulator::new(dims).expect("valid dims");
    for shard in shards.iter().rev() {
        backward.merge(shard).expect("same dims");
    }
    assert_eq!(forward.sums(), backward.sums(), "real merge must commute");
    assert_eq!(forward.counts(), backward.counts());

    // The model's serial state merged in any order equals the real totals.
    let mut model_state = initial.clone();
    for (i, entries) in per_shard.iter().enumerate() {
        for &(dim, value) in entries {
            model_state.shards[i].sums[dim] += value;
            model_state.shards[i].counts[dim] += 1;
        }
        model_state.shards[i].reports += 1;
    }
    for order in permutations(per_shard.len()) {
        let merged = merge_in_order(&model_state, &order);
        assert_eq!(merged.sums, forward.sums(), "order {order:?}");
        assert_eq!(merged.counts, forward.counts(), "order {order:?}");
    }
}

#[test]
fn interleaving_count_is_the_multinomial() {
    assert_eq!(interleaving_count(&[1, 1]), 2);
    assert_eq!(interleaving_count(&[3, 3]), 20);
    assert_eq!(interleaving_count(&[2, 2, 2]), 90);
}
