//! Criterion micro-benchmarks: collector-side aggregation throughput
//! (ingesting reports and producing the naive per-dimension means).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hdldp_protocol::{Aggregator, Report};

fn make_reports(count: usize, dims: usize, entries_per_report: usize) -> Vec<Report> {
    (0..count)
        .map(|i| {
            Report::new(
                (0..entries_per_report)
                    .map(|k| (((i * 31 + k * 7) % dims), ((i + k) as f64 % 3.0) - 1.0))
                    .collect(),
            )
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregator_ingest");
    for &dims in &[100usize, 1_000, 10_000] {
        let reports = make_reports(1_000, dims, 10);
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, &dims| {
            b.iter(|| {
                let mut agg = Aggregator::new(dims).unwrap();
                for report in &reports {
                    agg.ingest(black_box(report)).unwrap();
                }
                black_box(agg.report_counts())
            })
        });
    }
    group.finish();
}

fn bench_estimated_means(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregator_estimated_means");
    for &dims in &[100usize, 10_000] {
        let reports = make_reports(5_000, dims, 20);
        let mut agg = Aggregator::new(dims).unwrap();
        for report in &reports {
            agg.ingest(report).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, _| {
            b.iter(|| black_box(agg.estimated_means().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_estimated_means);
criterion_main!(benches);
