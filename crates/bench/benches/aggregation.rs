//! Criterion micro-benchmarks: collector-side aggregation throughput
//! (ingesting reports and producing the naive per-dimension means).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hdldp_protocol::{Aggregator, IngestConfig, IngestEngine, Report};
use hdldp_telemetry::Registry;

fn make_reports(count: usize, dims: usize, entries_per_report: usize) -> Vec<Report> {
    (0..count)
        .map(|i| {
            Report::new(
                (0..entries_per_report)
                    .map(|k| (((i * 31 + k * 7) % dims), ((i + k) as f64 % 3.0) - 1.0))
                    .collect(),
            )
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregator_ingest");
    for &dims in &[100usize, 1_000, 10_000] {
        let reports = make_reports(1_000, dims, 10);
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, &dims| {
            b.iter(|| {
                let mut agg = Aggregator::new(dims).unwrap();
                for report in &reports {
                    agg.ingest(black_box(report)).unwrap();
                }
                black_box(agg.report_counts())
            })
        });
    }
    group.finish();
}

fn bench_ingest_scaling(c: &mut Criterion) {
    // Same group as `bench_ingest` but parameterized on report count instead
    // of dimension count, pushing into the million-report regime; the `n`
    // prefix keeps the ids disjoint from the dims family above.
    let mut group = c.benchmark_group("aggregator_ingest");
    let dims = 1_000usize;
    for &count in &[10_000usize, 1_000_000] {
        let reports = make_reports(count, dims, 8);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{count}")),
            &count,
            |b, _| {
                b.iter(|| {
                    let mut agg = Aggregator::new(dims).unwrap();
                    for report in &reports {
                        agg.ingest(black_box(report)).unwrap();
                    }
                    black_box(agg.report_counts())
                })
            },
        );
    }
    group.finish();
}

fn bench_sharded_ingest(c: &mut Criterion) {
    // The sharded engine on the same workload shape as `aggregator_ingest`:
    // hash-route every report into its shard batch, flush, and merge the
    // per-shard partial sums into the final counts. Shard count is the swept
    // parameter; `shards1` is the closest analogue of the single-loop path.
    let mut group = c.benchmark_group("sharded_ingest");
    let dims = 1_000usize;
    for &count in &[10_000usize, 1_000_000] {
        let reports = make_reports(count, dims, 8);
        for &shards in &[1usize, 4, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("shards{shards}"), format!("n{count}")),
                &shards,
                |b, &shards| {
                    let config = IngestConfig::new(shards, 256).unwrap();
                    b.iter(|| {
                        let mut engine = IngestEngine::new(dims, config).unwrap();
                        for (user, report) in reports.iter().enumerate() {
                            engine.submit(user as u64, black_box(report)).unwrap();
                        }
                        engine.flush().unwrap();
                        black_box(engine.report_counts().unwrap())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sharded_ingest_telemetry(c: &mut Criterion) {
    // The exact workload of `sharded_ingest` with a *live* telemetry registry
    // attached to the engine. Comparing the two group's means at matched
    // (shards, n) parameters is the observability overhead budget check:
    // flush-granularity recording must stay within 2% of the plain path.
    let mut group = c.benchmark_group("sharded_ingest_telemetry");
    let dims = 1_000usize;
    for &count in &[10_000usize, 1_000_000] {
        let reports = make_reports(count, dims, 8);
        for &shards in &[1usize, 4, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("shards{shards}"), format!("n{count}")),
                &shards,
                |b, &shards| {
                    let config = IngestConfig::new(shards, 256).unwrap();
                    // One live registry per configuration, as the drivers use
                    // it: engines come and go per run, the registry persists
                    // and accumulates. Creating and populating a registry per
                    // iteration would benchmark setup, not recording.
                    let registry = Registry::new();
                    b.iter(|| {
                        let mut engine =
                            IngestEngine::with_telemetry(dims, config, &registry).unwrap();
                        for (user, report) in reports.iter().enumerate() {
                            engine.submit(user as u64, black_box(report)).unwrap();
                        }
                        engine.flush().unwrap();
                        black_box(engine.report_counts().unwrap())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_estimated_means(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregator_estimated_means");
    for &dims in &[100usize, 10_000] {
        let reports = make_reports(5_000, dims, 20);
        let mut agg = Aggregator::new(dims).unwrap();
        for report in &reports {
            agg.ingest(report).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, _| {
            b.iter(|| black_box(agg.estimated_means().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest,
    bench_ingest_scaling,
    bench_sharded_ingest,
    bench_sharded_ingest_telemetry,
    bench_estimated_means
);
criterion_main!(benches);
