//! Criterion micro-benchmarks: cost of building the analytical framework's
//! deviation model from a dataset and of evaluating its Theorem 1 box
//! probabilities, across dimensionalities.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hdldp_data::{Dataset, UniformDataset};
use hdldp_framework::DeviationModel;
use hdldp_mechanisms::{build_mechanism, MechanismKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(dims: usize) -> Dataset {
    UniformDataset::new(2_000, dims)
        .unwrap()
        .generate(&mut StdRng::seed_from_u64(5))
}

fn bench_model_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("deviation_model_for_dataset");
    group.sample_size(10);
    let mechanism = build_mechanism(MechanismKind::Piecewise, 0.01).unwrap();
    for &dims in &[50usize, 200, 1_000] {
        let data = dataset(dims);
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, _| {
            b.iter(|| {
                black_box(DeviationModel::for_dataset(mechanism.as_ref(), &data, 1_000.0).unwrap())
            })
        });
    }
    group.finish();
}

/// Ablations for the warm-path numbers above: the cold path (fresh dataset,
/// so the memoised column profiles must be rebuilt), the bare profile kernel,
/// and the pre-vectorisation reference construction.
fn bench_model_construction_cold(c: &mut Criterion) {
    let mechanism = build_mechanism(MechanismKind::Piecewise, 0.01).unwrap();
    let data = dataset(1_000);

    let mut group = c.benchmark_group("deviation_model_for_dataset_cold");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter(1_000), &1_000usize, |b, _| {
        b.iter(|| {
            // Cloning drops the memoised profiles, forcing a full rebuild.
            let fresh = data.clone();
            black_box(DeviationModel::for_dataset(mechanism.as_ref(), &fresh, 1_000.0).unwrap())
        })
    });
    group.finish();

    // The bucketing kernel alone (always uncached): one pass over 2000x1000.
    let mut group = c.benchmark_group("column_profile_kernel");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter(1_000), &1_000usize, |b, _| {
        // 64 buckets matches the framework's DEFAULT_VALUE_BUCKETS.
        b.iter(|| black_box(data.profile_columns(64).unwrap()))
    });
    group.finish();

    let mut group = c.benchmark_group("deviation_model_reference");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter(1_000), &1_000usize, |b, _| {
        b.iter(|| {
            black_box(
                DeviationModel::for_dataset_reference(mechanism.as_ref(), &data, 1_000.0).unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_box_probability(c: &mut Criterion) {
    let mut group = c.benchmark_group("box_probability");
    let mechanism = build_mechanism(MechanismKind::Laplace, 0.01).unwrap();
    for &dims in &[100usize, 1_000, 10_000] {
        let data = dataset(100);
        let one = DeviationModel::for_dataset(mechanism.as_ref(), &data, 1_000.0).unwrap();
        // Replicate the first dimension's approximation to the target size.
        let model = DeviationModel::new(vec![one.dimensions()[0]; dims]).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, _| {
            b.iter(|| black_box(model.box_probability_uniform(black_box(1.0))))
        });
    }
    group.finish();
}

/// Box probability over genuinely distinct per-dimension approximations and
/// suprema, so the batched path's run-length reuse cannot collapse the work.
fn bench_box_probability_distinct(c: &mut Criterion) {
    let mut group = c.benchmark_group("box_probability_distinct");
    let mechanism = build_mechanism(MechanismKind::Laplace, 0.01).unwrap();
    let data = dataset(1_000);
    let model = DeviationModel::for_dataset(mechanism.as_ref(), &data, 1_000.0).unwrap();
    let suprema: Vec<f64> = (0..1_000)
        .map(|j| 0.5 + ((j as f64) * 0.11).sin().abs())
        .collect();
    group.bench_with_input(BenchmarkId::from_parameter(1_000), &1_000usize, |b, _| {
        b.iter(|| black_box(model.box_probability(black_box(&suprema)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_model_construction,
    bench_model_construction_cold,
    bench_box_probability,
    bench_box_probability_distinct,
);
criterion_main!(benches);
