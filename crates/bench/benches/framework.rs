//! Criterion micro-benchmarks: cost of building the analytical framework's
//! deviation model from a dataset and of evaluating its Theorem 1 box
//! probabilities, across dimensionalities.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hdldp_data::{Dataset, UniformDataset};
use hdldp_framework::DeviationModel;
use hdldp_mechanisms::{build_mechanism, MechanismKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(dims: usize) -> Dataset {
    UniformDataset::new(2_000, dims)
        .unwrap()
        .generate(&mut StdRng::seed_from_u64(5))
}

fn bench_model_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("deviation_model_for_dataset");
    group.sample_size(10);
    let mechanism = build_mechanism(MechanismKind::Piecewise, 0.01).unwrap();
    for &dims in &[50usize, 200, 1_000] {
        let data = dataset(dims);
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, _| {
            b.iter(|| {
                black_box(DeviationModel::for_dataset(mechanism.as_ref(), &data, 1_000.0).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_box_probability(c: &mut Criterion) {
    let mut group = c.benchmark_group("box_probability");
    let mechanism = build_mechanism(MechanismKind::Laplace, 0.01).unwrap();
    for &dims in &[100usize, 1_000, 10_000] {
        let data = dataset(100);
        let one = DeviationModel::for_dataset(mechanism.as_ref(), &data, 1_000.0).unwrap();
        // Replicate the first dimension's approximation to the target size.
        let model = DeviationModel::new(vec![one.dimensions()[0]; dims]).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, _| {
            b.iter(|| black_box(model.box_probability_uniform(black_box(1.0))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_construction, bench_box_probability);
criterion_main!(benches);
