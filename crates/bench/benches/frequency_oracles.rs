//! Criterion micro-benchmarks for the categorical frequency oracles: per-user
//! perturbation and count-based estimation for GRR vs OUE at small and large
//! category counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hdldp_workloads::{CategoricalOracle, OracleKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CATEGORY_COUNTS: [usize; 2] = [16, 256];

fn bench_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_perturb");
    for kind in OracleKind::ALL {
        for k in CATEGORY_COUNTS {
            let oracle = CategoricalOracle::new(kind, k, 2.0).expect("valid oracle");
            group.bench_with_input(BenchmarkId::new(kind.name(), k), &k, |b, &k| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut out = Vec::with_capacity(k);
                let mut value = 0usize;
                b.iter(|| {
                    value = (value + 1) % k;
                    out.clear();
                    oracle
                        .perturb_into(black_box(value), &mut rng, &mut out)
                        .expect("value in domain");
                    black_box(out.len())
                })
            });
        }
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_estimate");
    for kind in OracleKind::ALL {
        for k in CATEGORY_COUNTS {
            let oracle = CategoricalOracle::new(kind, k, 2.0).expect("valid oracle");
            // A fixed batch of activation counts from 10k perturbed reports.
            let n = 10_000u64;
            let values: Vec<usize> = (0..n as usize).map(|i| i % k).collect();
            let mut counts = vec![0u64; k];
            let mut rng = StdRng::seed_from_u64(5);
            oracle
                .accumulate_counts(&values, &mut rng, &mut counts)
                .expect("values in domain");
            group.bench_with_input(BenchmarkId::new(kind.name(), k), &k, |b, _| {
                b.iter(|| {
                    black_box(
                        oracle
                            .estimate_from_counts(black_box(&counts), n)
                            .expect("valid counts"),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_perturb, bench_estimate);
criterion_main!(benches);
