//! Criterion micro-benchmarks: single-value perturbation throughput of every
//! mechanism at a representative per-dimension budget.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdldp_mechanisms::{build_mechanism, MechanismKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_perturbation(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb");
    for kind in MechanismKind::ALL {
        let mechanism = build_mechanism(kind, 0.5).expect("valid budget");
        group.bench_function(kind.name(), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut t = -1.0;
            b.iter(|| {
                t = if t > 1.0 { -1.0 } else { t + 0.001 };
                black_box(mechanism.perturb(black_box(t), &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_closed_form_moments(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_form_variance");
    for kind in MechanismKind::ALL {
        let mechanism = build_mechanism(kind, 0.5).expect("valid budget");
        group.bench_function(kind.name(), |b| {
            let mut t = -1.0;
            b.iter(|| {
                t = if t > 1.0 { -1.0 } else { t + 0.001 };
                black_box(mechanism.variance(black_box(t)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_perturbation, bench_closed_form_moments);
criterion_main!(benches);
