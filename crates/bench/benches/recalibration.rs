//! Criterion micro-benchmarks / ablation: the cost of the HDR4ME one-off
//! closed-form solvers versus a genuinely iterative proximal gradient descent,
//! across dimensionalities. This quantifies the paper's claim that the
//! re-calibration adds essentially no computational burden at the collector.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hdldp_core::pgd::{proximal_gradient_descent, proximal_gradient_descent_reference, PgdConfig};
use hdldp_core::solver::{solve_l1, solve_l2};
use hdldp_core::Regularization;

fn inputs(dims: usize) -> (Vec<f64>, Vec<f64>) {
    let estimate: Vec<f64> = (0..dims).map(|j| ((j as f64) * 0.37).sin() * 5.0).collect();
    let weights: Vec<f64> = (0..dims).map(|j| 1.0 + ((j % 7) as f64) * 0.3).collect();
    (estimate, weights)
}

fn bench_closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdr4me_closed_form");
    for &dims in &[100usize, 1_000, 10_000, 100_000] {
        let (estimate, weights) = inputs(dims);
        group.bench_with_input(BenchmarkId::new("l1", dims), &dims, |b, _| {
            b.iter(|| black_box(solve_l1(&estimate, &weights).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("l2", dims), &dims, |b, _| {
            b.iter(|| black_box(solve_l2(&estimate, &weights).unwrap()))
        });
    }
    group.finish();
}

fn bench_iterative_pgd(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdr4me_iterative_pgd");
    let config = PgdConfig {
        step_size: 0.5,
        max_iterations: 200,
        tolerance: 1e-10,
    };
    for &dims in &[100usize, 1_000, 10_000] {
        let (estimate, weights) = inputs(dims);
        group.bench_with_input(BenchmarkId::new("l1", dims), &dims, |b, _| {
            b.iter(|| {
                black_box(
                    proximal_gradient_descent(&estimate, &weights, Regularization::L1, config)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("l2", dims), &dims, |b, _| {
            b.iter(|| {
                black_box(
                    proximal_gradient_descent(&estimate, &weights, Regularization::L2, config)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Ablation: the pre-vectorisation per-coordinate PGD loop, for comparison
/// against the fused-sweep rows above.
fn bench_iterative_pgd_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdr4me_iterative_pgd_reference");
    let config = PgdConfig {
        step_size: 0.5,
        max_iterations: 200,
        tolerance: 1e-10,
    };
    let (estimate, weights) = inputs(1_000);
    group.bench_with_input(BenchmarkId::new("l1", 1_000), &1_000usize, |b, _| {
        b.iter(|| {
            black_box(
                proximal_gradient_descent_reference(
                    &estimate,
                    &weights,
                    Regularization::L1,
                    config,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_closed_form,
    bench_iterative_pgd,
    bench_iterative_pgd_reference,
);
criterion_main!(benches);
