//! Ablation study of HDR4ME's regularization-weight selection (the design
//! choice DESIGN.md calls out): how does the practical supremum quantile `z`
//! (λ*_j = |δ_j| + z·σ_j for L1) and the L2 denominator floor affect the
//! enhanced MSE, relative to the naive aggregation?
//!
//! ```text
//! cargo run --release -p hdldp-bench --bin ablation_lambda [--full]
//! ```
//!
//! The paper fixes the supremum implicitly ("the collector can manually
//! specify the supremum of deviation she wants to tolerate"); this ablation
//! quantifies how sensitive the re-calibration is to that choice.

use hdldp_bench::{write_json_results, ExperimentScale, TextTable};
use hdldp_core::{Hdr4me, Hdr4meConfig, LambdaSelector, Regularization};
use hdldp_data::GaussianDataset;
use hdldp_framework::DeviationModel;
use hdldp_math::stats;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{MeanEstimationPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    regularization: String,
    supremum_z: f64,
    l2_floor: f64,
    mse: f64,
    naive_mse: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(args);
    let users = scale.pick(100_000, 10_000);
    let dims = scale.pick(200, 100);
    let epsilon = 0.8;

    println!("Ablation — sensitivity of HDR4ME to the lambda-selection knobs");
    println!(
        "scale: {} | n = {users}, d = {dims}, eps = {epsilon}, mechanism = piecewise\n",
        scale.label()
    );

    let dataset = GaussianDataset::new(users, dims)?.generate(&mut StdRng::seed_from_u64(5));
    let pipeline = MeanEstimationPipeline::new(
        MechanismKind::Piecewise,
        PipelineConfig::new(epsilon, dims, 77),
    )?;
    let estimate = pipeline.run(&dataset)?;
    let naive_mse = estimate.utility()?.mse;
    let model = DeviationModel::for_dataset(pipeline.mechanism(), &dataset, users as f64)?;
    println!("naive aggregation MSE = {naive_mse:.4e}\n");

    let mut rows = Vec::new();

    println!("L1: sweep of the supremum quantile z (lambda_j = |delta_j| + z sigma_j)");
    let mut table = TextTable::new(vec!["z", "L1 MSE", "vs naive"]);
    for &z in &[0.5, 1.0, 2.0, 3.0, 4.0, 5.0] {
        let hdr = Hdr4me::new(Hdr4meConfig {
            regularization: Regularization::L1,
            lambda: LambdaSelector::new(z, 0.05)?,
        });
        let result = hdr.recalibrate(&estimate.estimated_means, &model)?;
        let mse = stats::mse(&result.enhanced_means, &estimate.true_means)?;
        table.push_row(vec![
            format!("{z}"),
            format!("{mse:.4e}"),
            format!("{:.1}x better", naive_mse / mse),
        ]);
        rows.push(AblationRow {
            regularization: "l1".into(),
            supremum_z: z,
            l2_floor: 0.05,
            mse,
            naive_mse,
        });
    }
    println!("{}", table.render());

    println!("L2: sweep of the denominator floor (lambda_j = sup_j / (2 max(|delta_j|, floor)))");
    let mut table = TextTable::new(vec!["floor", "L2 MSE", "vs naive"]);
    for &floor in &[0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let hdr = Hdr4me::new(Hdr4meConfig {
            regularization: Regularization::L2,
            lambda: LambdaSelector::new(3.0, floor)?,
        });
        let result = hdr.recalibrate(&estimate.estimated_means, &model)?;
        let mse = stats::mse(&result.enhanced_means, &estimate.true_means)?;
        table.push_row(vec![
            format!("{floor}"),
            format!("{mse:.4e}"),
            format!("{:.1}x better", naive_mse / mse),
        ]);
        rows.push(AblationRow {
            regularization: "l2".into(),
            supremum_z: 3.0,
            l2_floor: floor,
            mse,
            naive_mse,
        });
    }
    println!("{}", table.render());

    let path = write_json_results("ablation_lambda", &rows)?;
    println!("results written to {}", path.display());
    Ok(())
}
