//! Diff two `BENCH_*.json` baseline files and gate on a regression threshold.
//!
//! ```text
//! # Turn raw bench output into a baseline file:
//! cargo bench -p hdldp-bench --bench framework > bench.log
//! cargo run -p hdldp-bench --bin bench_compare -- \
//!     collect --note "hot-path baseline" --out BENCH_hotpaths.json bench.log
//!
//! # Gate a fresh run against the committed baseline (CI "Perf smoke"):
//! cargo run -p hdldp-bench --bin bench_compare -- \
//!     diff BENCH_hotpaths.json current.json --threshold 1.5x \
//!     --normalize "hdr4me_closed_form/l1/10000"
//! ```
//!
//! `diff` exits 0 when every shared id stays within the threshold, 1 when any
//! id regressed (or `--require-all` is set and an id disappeared), and 2 on
//! usage or parse errors. `--normalize <id>` divides both sides by that id's
//! own measurement first, cancelling uniform machine-speed differences so a
//! committed baseline can gate runs on different hardware.

use hdldp_bench::compare::{compare, parse_threshold, scrape_bench_json, BenchFile};
use std::process::ExitCode;

const USAGE: &str = "usage:
  bench_compare collect [--note TEXT] [--rustc TEXT] [--out FILE] [LOG ...]
  bench_compare diff BASELINE CURRENT --threshold RATIO[x] [--normalize ID] [--require-all]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("collect") => run_collect(&args[1..]),
        Some("diff") => run_diff(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(gate_passed) => {
            if gate_passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("bench_compare: {message}");
            ExitCode::from(2)
        }
    }
}

/// `collect`: scrape BENCH_JSON lines from log files (or stdin) into a
/// schema-complete baseline file.
fn run_collect(args: &[String]) -> Result<bool, String> {
    let mut note = String::from("collected by bench_compare");
    let mut rustc_version: Option<String> = None;
    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--note" => note = take_value(&mut iter, "--note")?,
            "--rustc" => rustc_version = Some(take_value(&mut iter, "--rustc")?),
            "--out" | "-o" => out = Some(take_value(&mut iter, "--out")?),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`\n{USAGE}")),
            path => inputs.push(path.to_string()),
        }
    }

    let mut text = String::new();
    if inputs.is_empty() {
        use std::io::Read as _;
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("reading stdin: {e}"))?;
    } else {
        for path in &inputs {
            text.push_str(
                &std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
            );
            text.push('\n');
        }
    }
    let benchmarks = scrape_bench_json(&text)?;
    if benchmarks.is_empty() {
        return Err("no BENCH_JSON lines found in the input".into());
    }

    let file = BenchFile {
        note,
        rustc: rustc_version.unwrap_or_else(detect_rustc),
        cpu_count: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        benchmarks,
    };
    let json = serde_json::to_string_pretty(&file).map_err(|e| format!("serializing: {e:?}"))?;
    match out {
        Some(path) => {
            std::fs::write(&path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "bench_compare: wrote {} benchmark(s) to {path}",
                file.benchmarks.len()
            );
        }
        None => println!("{json}"),
    }
    Ok(true)
}

/// `diff`: join two baseline files and gate on the threshold.
fn run_diff(args: &[String]) -> Result<bool, String> {
    let mut threshold: Option<f64> = None;
    let mut normalize: Option<String> = None;
    let mut require_all = false;
    let mut positional: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => threshold = Some(parse_threshold(&take_value(&mut iter, arg)?)?),
            "--normalize" => normalize = Some(take_value(&mut iter, arg)?),
            "--require-all" => require_all = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`\n{USAGE}")),
            path => positional.push(path.to_string()),
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        return Err(format!("diff needs exactly two files\n{USAGE}"));
    };
    let threshold = threshold.ok_or(format!("diff needs --threshold\n{USAGE}"))?;

    let baseline = BenchFile::parse(
        &std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading {baseline_path}: {e}"))?,
    )
    .map_err(|e| format!("{baseline_path}: {e}"))?;
    let current = BenchFile::parse(
        &std::fs::read_to_string(current_path)
            .map_err(|e| format!("reading {current_path}: {e}"))?,
    )
    .map_err(|e| format!("{current_path}: {e}"))?;

    let comparison = compare(&baseline, &current, normalize.as_deref())?;
    if let Some((base_cal, cur_cal)) = comparison.normalizer {
        println!(
            "normalizing by `{}`: baseline {base_cal:.1} ns, current {cur_cal:.1} ns (machine factor {:.3})",
            normalize.as_deref().unwrap_or_default(),
            cur_cal / base_cal
        );
    }
    println!(
        "{:<55} {:>14} {:>14} {:>8}  verdict",
        "id", "baseline ns", "current ns", "ratio"
    );
    for delta in &comparison.deltas {
        let verdict = if delta.ratio > threshold {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<55} {:>14.1} {:>14.1} {:>7.3}x  {verdict}",
            delta.id, delta.baseline_ns, delta.current_ns, delta.ratio
        );
    }
    for id in &comparison.missing {
        println!("{id:<55} missing from current run");
    }
    for id in &comparison.added {
        println!("{id:<55} new (no baseline)");
    }

    let regressions = comparison.regressions(threshold);
    let missing_breach = require_all && !comparison.missing.is_empty();
    if !regressions.is_empty() || missing_breach {
        eprintln!(
            "bench_compare: {} regression(s) above {threshold}x{}",
            regressions.len(),
            if missing_breach {
                format!(", {} required id(s) missing", comparison.missing.len())
            } else {
                String::new()
            }
        );
        return Ok(false);
    }
    println!(
        "bench_compare: {} benchmark(s) within {threshold}x of baseline",
        comparison.deltas.len()
    );
    Ok(true)
}

/// Pull the value following a flag.
fn take_value<'a>(
    iter: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<String, String> {
    iter.next()
        .cloned()
        .ok_or(format!("{flag} needs a value\n{USAGE}"))
}

/// Best-effort `rustc --version` for provenance; never fails the collect.
fn detect_rustc() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}
