//! Reproduces the **Section IV-D worked example**: the Berry–Esseen bound on
//! the CLT approximation error of the analytical framework, for the Laplace
//! mechanism as the number of reports varies.
//!
//! ```text
//! cargo run -p hdldp-bench --bin berry_esseen_bound
//! ```
//!
//! The paper's headline number is ≈1.57% at r_j = 1,000 reports (with the
//! paper's one-sided third-moment convention); the corrected two-sided moment
//! gives a slightly larger, still rapidly decaying bound.

use hdldp_bench::{write_json_results, TextTable};
use hdldp_framework::laplace_approximation_error;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    reports: f64,
    paper_convention: f64,
    corrected: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    println!("Section IV-D — Berry–Esseen bound on the CLT approximation error (Laplace)");
    println!("paper reports ~1.57% at r_j = 1000\n");

    let mut table = TextTable::new(vec!["reports", "bound (paper rho=3λ³)", "bound (rho=6λ³)"]);
    let mut rows = Vec::new();
    for &reports in &[100.0, 500.0, 1_000.0, 5_000.0, 10_000.0, 100_000.0] {
        let (paper, corrected) = laplace_approximation_error(1.0, reports)?;
        table.push_row(vec![
            format!("{reports}"),
            format!("{:.3}%", paper * 100.0),
            format!("{:.3}%", corrected * 100.0),
        ]);
        rows.push(Row {
            reports,
            paper_convention: paper,
            corrected,
        });
    }
    println!("{}", table.render());
    let path = write_json_results("berry_esseen_bound", &rows)?;
    println!("results written to {}", path.display());
    Ok(())
}
