//! Validate a telemetry result file emitted by `million_user_ingest
//! --telemetry`: the CI smoke gate for the observability layer.
//!
//! ```text
//! cargo run --release -p hdldp-bench --bin check_telemetry_json -- \
//!     results/telemetry_million_user_ingest.json
//! ```
//!
//! Checks, per snapshot row: the JSON parses into the typed snapshot shape,
//! the ingest counters are present and consistent (reports > 0, exactly one
//! per-shard counter per shard summing to the total), the batch-flush and
//! merge latency histograms recorded events, and the phase-duration gauges
//! are positive. Exits non-zero with a diagnostic on the first violation.

use hdldp_bench::ShardTelemetryRow;

fn check(rows: &[ShardTelemetryRow]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("telemetry file contains no snapshot rows".into());
    }
    for row in rows {
        let shards = row.shards;
        let snapshot = &row.snapshot;
        let context = format!("row @ {shards} shard(s)");

        let reports = snapshot
            .counter("ingest_reports_total")
            .ok_or(format!("{context}: missing ingest_reports_total"))?;
        if reports == 0 {
            return Err(format!("{context}: ingest_reports_total is 0"));
        }

        let per_shard: Vec<_> = snapshot
            .counters
            .iter()
            .filter(|c| c.name.starts_with("ingest_shard") && c.name.ends_with("_reports_total"))
            .collect();
        if per_shard.len() != shards {
            return Err(format!(
                "{context}: expected {shards} per-shard counters, found {}",
                per_shard.len()
            ));
        }
        let shard_sum: u64 = per_shard.iter().map(|c| c.value).sum();
        if shard_sum != reports {
            return Err(format!(
                "{context}: per-shard counters sum to {shard_sum}, total is {reports}"
            ));
        }

        for name in ["ingest_batch_flush_ns", "ingest_merge_ns"] {
            let hist = snapshot
                .histogram(name)
                .ok_or(format!("{context}: missing histogram {name}"))?;
            if hist.count == 0 {
                return Err(format!("{context}: histogram {name} recorded nothing"));
            }
            if hist.max_ns < hist.p50_ns {
                return Err(format!("{context}: histogram {name} has max < p50"));
            }
        }

        for name in ["phase_ingest_seconds", "phase_estimate_seconds"] {
            let value = snapshot
                .gauge(name)
                .ok_or(format!("{context}: missing gauge {name}"))?;
            // NaN must fail the gate too, hence the explicit branch.
            if value.is_nan() || value <= 0.0 {
                return Err(format!("{context}: gauge {name} = {value}, expected > 0"));
            }
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let path = std::env::args()
        .nth(1)
        .ok_or("usage: check_telemetry_json <telemetry-results.json>")?;
    let content = std::fs::read_to_string(&path)?;
    let rows: Vec<ShardTelemetryRow> = serde_json::from_str(&content)?;
    check(&rows).map_err(|reason| format!("{path}: {reason}"))?;
    println!(
        "{path}: OK ({} snapshot row(s), shard counts: {:?})",
        rows.len(),
        rows.iter().map(|r| r.shards).collect::<Vec<_>>()
    );
    Ok(())
}
