//! Reproduces **Figure 2** of the paper: the empirical probability density of
//! the first-dimension deviation `θ̂_1 − θ̄_1` over repeated runs on the Uniform
//! dataset, overlaid with the Gaussian density predicted by the analytical
//! framework (CLT), for the Laplace, Piecewise and Square Wave mechanisms.
//!
//! ```text
//! cargo run --release -p hdldp-bench --bin fig2_clt_validation [--full]
//! ```
//!
//! Paper scale (`--full`): n = 200,000 users, d = 5,000 dimensions, m = 50,
//! ε = 1, 1,000 repetitions. The reduced default keeps the same per-dimension
//! report count regime with a fraction of the work.

use hdldp_bench::{write_json_results, ExperimentScale, TextTable};
use hdldp_data::UniformDataset;
use hdldp_framework::DeviationApproximation;
use hdldp_math::Histogram;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{MeanEstimationPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct SeriesPoint {
    deviation: f64,
    empirical_density: f64,
    clt_density: f64,
}

#[derive(Serialize)]
struct MechanismSeries {
    mechanism: String,
    predicted_delta: f64,
    predicted_sigma: f64,
    empirical_mean: f64,
    empirical_std: f64,
    points: Vec<SeriesPoint>,
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(args);

    let users = scale.pick(200_000, 5_000);
    let dims = scale.pick(5_000, 100);
    let reported = 50.min(dims);
    let trials = scale.pick(1_000, 150);
    let epsilon = 1.0;

    println!("Figure 2 — CLT prediction vs experiment on the Uniform dataset");
    println!(
        "scale: {} | n = {users}, d = {dims}, m = {reported}, eps = {epsilon}, trials = {trials}\n",
        scale.label()
    );

    let dataset = UniformDataset::new(users, dims)?.generate(&mut StdRng::seed_from_u64(2022));
    let true_means = dataset.true_means();
    let reports = users as f64 * reported as f64 / dims as f64;

    let mut all_series = Vec::new();
    for kind in MechanismKind::PAPER_EVALUATED {
        let pipeline =
            MeanEstimationPipeline::new(kind, PipelineConfig::new(epsilon, reported, 7))?;
        // Framework prediction for dimension 0 (Lemma 2 / Lemma 3).
        let column = dataset.column(0)?;
        let values = hdldp_data::DiscreteValueDistribution::from_column_bucketed(&column, 64)?;
        let predicted =
            DeviationApproximation::for_dimension(pipeline.mechanism(), &values, reports)?;

        // Empirical deviations of dimension 0 over repeated runs.
        let mut deviations = Vec::with_capacity(trials);
        for estimate in pipeline.run_trials(&dataset, trials)? {
            deviations.push(estimate.estimated_means[0] - true_means[0]);
        }
        let emp_mean = deviations.iter().sum::<f64>() / trials as f64;
        let emp_std = (deviations
            .iter()
            .map(|x| (x - emp_mean).powi(2))
            .sum::<f64>()
            / trials as f64)
            .sqrt();

        let histogram = Histogram::from_samples(&deviations, 25)?;
        let points: Vec<SeriesPoint> = histogram
            .density()
            .into_iter()
            .map(|(x, empirical)| SeriesPoint {
                deviation: x,
                empirical_density: empirical,
                clt_density: predicted.pdf(x),
            })
            .collect();

        println!(
            "{}: predicted N({:.4}, {:.3e}) | empirical mean {:.4}, std {:.4}",
            kind.name(),
            predicted.delta(),
            predicted.variance(),
            emp_mean,
            emp_std
        );
        let mut table = TextTable::new(vec!["deviation", "empirical pdf", "CLT pdf"]);
        for p in &points {
            table.push_row(vec![
                format!("{:+.4}", p.deviation),
                format!("{:.4}", p.empirical_density),
                format!("{:.4}", p.clt_density),
            ]);
        }
        println!("{}", table.render());

        all_series.push(MechanismSeries {
            mechanism: kind.name().to_string(),
            predicted_delta: predicted.delta(),
            predicted_sigma: predicted.std_dev(),
            empirical_mean: emp_mean,
            empirical_std: emp_std,
            points,
        });
    }

    let path = write_json_results("fig2_clt_validation", &all_series)?;
    println!("results written to {}", path.display());
    Ok(())
}
