//! Reproduces **Figure 3** of the paper: the CLT-vs-experiment comparison on
//! the *discretized* case-study data of Section IV-C (values {0.1, …, 1.0}
//! with probability 10% each), for the Piecewise and Square Wave mechanisms —
//! confirming that the densities derived in the case study (Equations 16 and
//! 20) model the simulated deviations.
//!
//! The case study is one-dimensional by construction (every dimension is
//! statistically identical), so the simulation here draws `r = 10,000` reports
//! per trial from the case-study value distribution, perturbs them with the
//! mechanism on its *native* domain (Square Wave on `[0, 1]`, exactly as in
//! the paper), aggregates naively and records the deviation from the true
//! mean.
//!
//! ```text
//! cargo run --release -p hdldp-bench --bin fig3_case_study_validation [--full]
//! ```

use hdldp_bench::{write_json_results, ExperimentScale, TextTable};
use hdldp_framework::CaseStudy;
use hdldp_math::Histogram;
use hdldp_mechanisms::{Mechanism, PiecewiseMechanism, SquareWaveMechanism};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct SeriesPoint {
    deviation: f64,
    empirical_density: f64,
    clt_density: f64,
}

#[derive(Serialize)]
struct MechanismSeries {
    mechanism: String,
    predicted_delta: f64,
    predicted_sigma: f64,
    empirical_mean: f64,
    points: Vec<SeriesPoint>,
}

fn simulate_deviations(
    mechanism: &dyn Mechanism,
    case_study: &CaseStudy,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    let values = case_study.values.values().to_vec();
    let true_mean = case_study.values.mean();
    let reports = case_study.reports_per_dimension as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..trials)
        .map(|_| {
            let mut sum = 0.0;
            for _ in 0..reports {
                let original = values[rng.gen_range(0..values.len())];
                sum += mechanism.perturb(original, &mut rng);
            }
            sum / reports as f64 - true_mean
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(args);
    let trials = scale.pick(1_000, 200);

    let case_study = CaseStudy::default();
    println!("Figure 3 — CLT prediction vs experiment in the Section IV-C case study");
    println!(
        "scale: {} | eps/m = {}, r = {}, trials = {trials}\n",
        scale.label(),
        case_study.per_dimension_epsilon(),
        case_study.reports_per_dimension
    );

    let piecewise = PiecewiseMechanism::new(case_study.per_dimension_epsilon())?;
    let square_wave = SquareWaveMechanism::new(case_study.per_dimension_epsilon())?;
    let configurations: [(&dyn Mechanism, _); 2] = [
        (&piecewise, case_study.piecewise_deviation()?),
        (&square_wave, case_study.square_wave_deviation()?),
    ];

    let mut all_series = Vec::new();
    for (mechanism, predicted) in configurations {
        let deviations = simulate_deviations(mechanism, &case_study, trials, 31);
        let empirical_mean = deviations.iter().sum::<f64>() / trials as f64;

        let histogram = Histogram::from_samples(&deviations, 25)?;
        let points: Vec<SeriesPoint> = histogram
            .density()
            .into_iter()
            .map(|(x, empirical)| SeriesPoint {
                deviation: x,
                empirical_density: empirical,
                clt_density: predicted.pdf(x),
            })
            .collect();

        println!(
            "{}: predicted N({:.4}, {:.3e}) | empirical mean {:.4}",
            mechanism.name(),
            predicted.delta(),
            predicted.variance(),
            empirical_mean
        );
        let mut table = TextTable::new(vec!["deviation", "empirical pdf", "CLT pdf"]);
        for p in &points {
            table.push_row(vec![
                format!("{:+.4}", p.deviation),
                format!("{:.4}", p.empirical_density),
                format!("{:.4}", p.clt_density),
            ]);
        }
        println!("{}", table.render());

        all_series.push(MechanismSeries {
            mechanism: mechanism.name().to_string(),
            predicted_delta: predicted.delta(),
            predicted_sigma: predicted.std_dev(),
            empirical_mean,
            points,
        });
    }

    let path = write_json_results("fig3_case_study_validation", &all_series)?;
    println!("results written to {}", path.display());
    Ok(())
}
