//! Reproduces **Figure 4** of the paper: MSE of the naive aggregation vs
//! HDR4ME with L1- and L2-regularization as the collective privacy budget ε
//! varies, for the Laplace, Piecewise and Square Wave mechanisms on one of the
//! four evaluation datasets.
//!
//! ```text
//! cargo run --release -p hdldp-bench --bin fig4_mse_vs_epsilon -- --dataset gaussian [--full]
//! cargo run --release -p hdldp-bench --bin fig4_mse_vs_epsilon -- --dataset poisson
//! cargo run --release -p hdldp-bench --bin fig4_mse_vs_epsilon -- --dataset uniform
//! cargo run --release -p hdldp-bench --bin fig4_mse_vs_epsilon -- --dataset covid
//! cargo run --release -p hdldp-bench --bin fig4_mse_vs_epsilon -- --telemetry
//! ```
//!
//! With `--telemetry`, every pipeline run and re-calibration across the sweep
//! records into one `hdldp_telemetry::Registry`; the aggregate snapshot is
//! printed and written to `results/telemetry_fig4_mse_vs_epsilon.json`.
//!
//! As in the paper, every user reports *all* dimensions (m = d), ε is
//! partitioned across them, the ε grid is {0.1, 0.2, 0.4, 0.8, 1.6, 3.2} for
//! Laplace/Piecewise and {0.1, 10, 100, 500, 1000, 5000} for Square Wave
//! (whose utility barely moves at small ε), and each point is averaged over
//! repeated runs.

use hdldp_bench::scale::arg_value;
use hdldp_bench::{
    average_mse_with, write_json_results, ExperimentScale, MsePoint, RunnerConfig, TextTable,
};
use hdldp_data::{generators, DatasetKind};
use hdldp_mechanisms::MechanismKind;
use hdldp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct ResultRow {
    dataset: String,
    mechanism: String,
    epsilon: f64,
    mse: MsePoint,
}

/// The paper's dataset shapes for Figure 4 (users, dims) and the reduced ones.
fn shape(kind: DatasetKind, scale: ExperimentScale) -> (usize, usize) {
    match kind {
        DatasetKind::Gaussian => scale.pick((100_000, 100), (10_000, 100)),
        DatasetKind::Poisson => scale.pick((150_000, 300), (10_000, 150)),
        DatasetKind::Uniform => scale.pick((120_000, 500), (10_000, 200)),
        DatasetKind::Covid => scale.pick((150_000, 750), (10_000, 250)),
    }
}

fn epsilon_grid(mechanism: MechanismKind) -> Vec<f64> {
    match mechanism {
        MechanismKind::SquareWave => vec![0.1, 10.0, 100.0, 500.0, 1000.0, 5000.0],
        _ => vec![0.1, 0.2, 0.4, 0.8, 1.6, 3.2],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(args.clone());
    let dataset_kind = arg_value(&args, "--dataset")
        .and_then(|name| DatasetKind::parse(&name))
        .unwrap_or(DatasetKind::Gaussian);
    let registry = if args.iter().any(|a| a == "--telemetry") {
        Registry::new()
    } else {
        Registry::disabled()
    };

    let (users, dims) = shape(dataset_kind, scale);
    let trials = scale.pick(100, 5);

    println!(
        "Figure 4 — MSE vs privacy budget on the {} dataset",
        dataset_kind.name()
    );
    println!(
        "scale: {} | n = {users}, d = {dims}, m = d, trials = {trials}\n",
        scale.label()
    );

    let dataset =
        generators::generate(dataset_kind, users, dims, &mut StdRng::seed_from_u64(2022))?;

    let mut rows = Vec::new();
    for mechanism in MechanismKind::PAPER_EVALUATED {
        println!("mechanism: {}", mechanism.name());
        let mut table = TextTable::new(vec!["epsilon", "naive MSE", "L1 MSE", "L2 MSE"]);
        for epsilon in epsilon_grid(mechanism) {
            let point = average_mse_with(
                &dataset,
                RunnerConfig {
                    mechanism,
                    total_epsilon: epsilon,
                    reported_dims: dims,
                    trials,
                    seed: 4242,
                },
                &registry,
            )?;
            table.push_row(vec![
                format!("{epsilon}"),
                format!("{:.4e}", point.naive),
                format!("{:.4e}", point.l1),
                format!("{:.4e}", point.l2),
            ]);
            rows.push(ResultRow {
                dataset: dataset_kind.name().to_string(),
                mechanism: mechanism.name().to_string(),
                epsilon,
                mse: point,
            });
        }
        println!("{}", table.render());
    }

    let path = write_json_results(
        &format!("fig4_mse_vs_epsilon_{}", dataset_kind.name()),
        &rows,
    )?;
    println!("results written to {}", path.display());
    if registry.is_enabled() {
        let snapshot = registry.snapshot();
        println!("\ntelemetry across the sweep:\n{}", snapshot.render_table());
        let path = write_json_results("telemetry_fig4_mse_vs_epsilon", &snapshot)?;
        println!("telemetry written to {}", path.display());
    }
    Ok(())
}
