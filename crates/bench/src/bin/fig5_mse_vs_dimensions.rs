//! Reproduces **Figure 5** of the paper: MSE of the naive aggregation vs
//! HDR4ME with L1- and L2-regularization as the dimensionality grows, on the
//! (synthetic) COV-19 dataset with ε = 0.8, for the Laplace and Piecewise
//! mechanisms.
//!
//! ```text
//! cargo run --release -p hdldp-bench --bin fig5_mse_vs_dimensions [--full] [--telemetry]
//! ```
//!
//! With `--telemetry`, every pipeline run and re-calibration across the sweep
//! records into one `hdldp_telemetry::Registry`; the aggregate snapshot is
//! printed and written to `results/telemetry_fig5_mse_vs_dimensions.json`.
//!
//! The paper varies d over {50, 100, 200, 400, 800, 1600}; dimensionalities
//! beyond the base table's 750 columns are obtained by re-sampling columns,
//! exactly as the paper describes ("we randomly sample some dimensions from
//! COV-19 dataset to make up").

use hdldp_bench::{
    average_mse_with, write_json_results, ExperimentScale, MsePoint, RunnerConfig, TextTable,
};
use hdldp_data::{CorrelatedDataset, Dataset};
use hdldp_mechanisms::MechanismKind;
use hdldp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct ResultRow {
    mechanism: String,
    dims: usize,
    mse: MsePoint,
}

/// Build a `target_dims`-column dataset by sampling (with replacement when
/// necessary) columns of the base COV-19-like table.
fn resample_columns(base: &Dataset, target_dims: usize, rng: &mut StdRng) -> Dataset {
    let columns: Vec<usize> = if target_dims <= base.dims() {
        // Sample distinct columns.
        rand::seq::index::sample(rng, base.dims(), target_dims).into_vec()
    } else {
        (0..target_dims)
            .map(|_| rng.gen_range(0..base.dims()))
            .collect()
    };
    base.select_columns(&columns)
        .expect("column indices are valid")
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = if args.iter().any(|a| a == "--telemetry") {
        Registry::new()
    } else {
        Registry::disabled()
    };
    let scale = ExperimentScale::from_args(args);

    let users = scale.pick(150_000, 8_000);
    let base_dims = scale.pick(750, 400);
    let trials = scale.pick(100, 3);
    let epsilon = 0.8;
    let dim_grid = [50usize, 100, 200, 400, 800, 1600];

    println!("Figure 5 — MSE vs dimensionality on the (synthetic) COV-19 dataset");
    println!(
        "scale: {} | n = {users}, base d = {base_dims}, eps = {epsilon}, trials = {trials}\n",
        scale.label()
    );

    let mut rng = StdRng::seed_from_u64(777);
    let base = CorrelatedDataset::new(users, base_dims)?.generate(&mut rng);

    let mut rows = Vec::new();
    for mechanism in [MechanismKind::Laplace, MechanismKind::Piecewise] {
        println!("mechanism: {}", mechanism.name());
        let mut table = TextTable::new(vec!["dims", "naive MSE", "L1 MSE", "L2 MSE"]);
        for &dims in &dim_grid {
            let dataset = resample_columns(&base, dims, &mut rng);
            let point = average_mse_with(
                &dataset,
                RunnerConfig {
                    mechanism,
                    total_epsilon: epsilon,
                    reported_dims: dims,
                    trials,
                    seed: 31337,
                },
                &registry,
            )?;
            table.push_row(vec![
                format!("{dims}"),
                format!("{:.4e}", point.naive),
                format!("{:.4e}", point.l1),
                format!("{:.4e}", point.l2),
            ]);
            rows.push(ResultRow {
                mechanism: mechanism.name().to_string(),
                dims,
                mse: point,
            });
        }
        println!("{}", table.render());
    }

    let path = write_json_results("fig5_mse_vs_dimensions", &rows)?;
    println!("results written to {}", path.display());
    if registry.is_enabled() {
        let snapshot = registry.snapshot();
        println!("\ntelemetry across the sweep:\n{}", snapshot.render_table());
        let path = write_json_results("telemetry_fig5_mse_vs_dimensions", &snapshot)?;
        println!("telemetry written to {}", path.display());
    }
    Ok(())
}
