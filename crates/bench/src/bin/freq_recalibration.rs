//! Exercises the **Section V-C** extension: high-dimensional frequency
//! estimation via histogram encoding, with and without HDR4ME re-calibration.
//!
//! ```text
//! cargo run --release -p hdldp-bench --bin freq_recalibration [--full]
//! ```
//!
//! The workload is a Zipf-skewed categorical dataset; the table reports, for
//! each mechanism and budget, the frequency-vector MSE of the raw estimate,
//! of the clip-and-renormalize baseline, and of HDR4ME (L1/L2) — averaged over
//! the categorical dimensions.

use hdldp_bench::{write_json_results, ExperimentScale, TextTable};
use hdldp_core::Hdr4me;
use hdldp_data::CategoricalDataset;
use hdldp_math::stats;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{FrequencyPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct ResultRow {
    mechanism: String,
    epsilon: f64,
    raw_mse: f64,
    normalized_mse: f64,
    l1_mse: f64,
    l2_mse: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(args);

    let users = scale.pick(100_000, 10_000);
    let dims = scale.pick(50, 20);
    let categories = 10usize;
    let reported = scale.pick(10, 5);

    println!("Section V-C — frequency estimation with HDR4ME re-calibration");
    println!(
        "scale: {} | n = {users}, categorical dims = {dims}, categories = {categories}, m = {reported}\n",
        scale.label()
    );

    let data = CategoricalDataset::generate_zipf(
        users,
        vec![categories; dims],
        &mut StdRng::seed_from_u64(909),
    )?;

    let mut rows = Vec::new();
    for mechanism in MechanismKind::PAPER_EVALUATED {
        println!("mechanism: {}", mechanism.name());
        let mut table = TextTable::new(vec![
            "epsilon",
            "raw MSE",
            "clip+norm MSE",
            "HDR4ME-L1 MSE",
            "HDR4ME-L2 MSE",
        ]);
        for &epsilon in &[0.5, 1.0, 2.0, 4.0] {
            let pipeline =
                FrequencyPipeline::new(mechanism, PipelineConfig::new(epsilon, reported, 55))?;
            let estimate = pipeline.run(&data)?;

            let mut raw = 0.0;
            let mut norm = 0.0;
            let mut l1 = 0.0;
            let mut l2 = 0.0;
            for dim in 0..dims {
                let truth = &estimate.true_frequencies[dim];
                raw += stats::mse(&estimate.estimated[dim], truth)?;
                norm += stats::mse(&estimate.normalized(dim), truth)?;
                let r1 =
                    Hdr4me::l1().recalibrate_frequencies(&estimate, dim, pipeline.mechanism())?;
                let r2 =
                    Hdr4me::l2().recalibrate_frequencies(&estimate, dim, pipeline.mechanism())?;
                l1 += stats::mse(&r1.enhanced, truth)?;
                l2 += stats::mse(&r2.enhanced, truth)?;
            }
            let d = dims as f64;
            table.push_row(vec![
                format!("{epsilon}"),
                format!("{:.4e}", raw / d),
                format!("{:.4e}", norm / d),
                format!("{:.4e}", l1 / d),
                format!("{:.4e}", l2 / d),
            ]);
            rows.push(ResultRow {
                mechanism: mechanism.name().to_string(),
                epsilon,
                raw_mse: raw / d,
                normalized_mse: norm / d,
                l1_mse: l1 / d,
                l2_mse: l2 / d,
            });
        }
        println!("{}", table.render());
    }

    let path = write_json_results("freq_recalibration", &rows)?;
    println!("results written to {}", path.display());
    Ok(())
}
