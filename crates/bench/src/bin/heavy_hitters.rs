//! Heavy-hitter identification over GRR/OUE frequency oracles, with and
//! without HDR4ME re-calibration before selection.
//!
//! ```text
//! cargo run --release -p hdldp-bench --bin heavy_hitters            # reduced
//! cargo run --release -p hdldp-bench --bin heavy_hitters -- --full  # paper-scale
//! cargo run --release -p hdldp-bench --bin heavy_hitters -- --users 20000 --domain 64
//! cargo run --release -p hdldp-bench --bin heavy_hitters -- --telemetry
//! ```
//!
//! A planted dataset gives 10 spread-out categories 80% of the mass
//! (Zipf-weighted) over a uniform tail; for each oracle and budget the table
//! reports top-10 precision/recall/F1 against the planted set plus the
//! frequency-vector MSE, selecting once on the raw (clip + renormalize)
//! estimates and once on the HDR4ME-L1 re-calibrated ones. With
//! `--telemetry` the workload and ingest metrics are printed after the sweep.

use hdldp_bench::{scale::arg_value, write_json_results, ExperimentScale, TextTable};
use hdldp_core::Regularization;
use hdldp_math::stats;
use hdldp_telemetry::Registry;
use hdldp_workloads::{
    planted_dataset, precision_recall, HeavyHitterConfig, HeavyHitterDetector, SelectionRule,
};
use hdldp_workloads::{CategoricalOracle, OracleKind};
use serde::Serialize;

#[derive(Serialize)]
struct ResultRow {
    oracle: String,
    epsilon: f64,
    variant: String,
    precision: f64,
    recall: f64,
    f1: f64,
    mse: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let scale = ExperimentScale::from_args(args.clone());

    let users: usize = match arg_value(&args, "--users") {
        Some(v) => v.parse()?,
        None => scale.pick(250_000, 100_000),
    };
    let domain: usize = match arg_value(&args, "--domain") {
        Some(v) => v.parse()?,
        None => scale.pick(256, 128),
    };
    let heavy = 10usize;
    let supremum_z: f64 = match arg_value(&args, "--z") {
        Some(v) => v.parse()?,
        None => 1.0,
    };

    println!("Heavy-hitter identification over categorical frequency oracles");
    println!(
        "scale: {} | n = {users}, domain = {domain}, planted heavies = {heavy} (80% of mass)\n",
        scale.label()
    );

    let (values, heavy_ids) = planted_dataset(users, domain, heavy, 0.8, 404)?;
    let registry = if telemetry {
        Registry::new()
    } else {
        Registry::disabled()
    };

    let mut rows = Vec::new();
    for kind in OracleKind::ALL {
        println!("oracle: {}", kind.name());
        let mut table = TextTable::new(vec![
            "epsilon",
            "variant",
            "precision",
            "recall",
            "F1",
            "freq MSE",
        ]);
        for &epsilon in &[0.5, 1.0, 2.0, 4.0] {
            for (variant, recalibration) in
                [("raw", None), ("recalibrated", Some(Regularization::L1))]
            {
                let detector = HeavyHitterDetector::with_telemetry(
                    HeavyHitterConfig {
                        kind,
                        categories: domain,
                        epsilon,
                        seed: 808,
                        rule: SelectionRule::TopK(heavy),
                        recalibration,
                        supremum_z,
                    },
                    &registry,
                )?;
                let report = detector.identify(&values)?;
                let pr = precision_recall(&report.selected, &heavy_ids);
                let mse = stats::mse(&report.frequencies, &report.estimate.true_frequencies[0])?;
                table.push_row(vec![
                    format!("{epsilon}"),
                    variant.to_string(),
                    format!("{:.3}", pr.precision),
                    format!("{:.3}", pr.recall),
                    format!("{:.3}", pr.f1),
                    format!("{:.4e}", mse),
                ]);
                rows.push(ResultRow {
                    oracle: kind.name().to_string(),
                    epsilon,
                    variant: variant.to_string(),
                    precision: pr.precision,
                    recall: pr.recall,
                    f1: pr.f1,
                    mse,
                });
            }
        }
        println!("{}", table.render());
        let oracle = CategoricalOracle::new(kind, domain, 4.0)?;
        println!(
            "per-report variance at f = 1/k, eps = 4: {:.4}\n",
            oracle.per_report_variance(1.0 / domain as f64)
        );
    }

    let path = write_json_results("heavy_hitters", &rows)?;
    println!("results written to {}", path.display());
    if telemetry {
        println!("\ntelemetry:");
        println!("{}", registry.snapshot().render_table());
    }
    Ok(())
}
