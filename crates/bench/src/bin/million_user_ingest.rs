//! End-to-end sharded ingest at population scale: simulate 1M–10M clients
//! streaming perturbed reports into the sharded ingest engine and report
//! throughput (reports/sec) alongside the estimate's MSE.
//!
//! ```text
//! cargo run --release -p hdldp-bench --bin million_user_ingest
//! cargo run --release -p hdldp-bench --bin million_user_ingest -- --full      # 10M users
//! cargo run --release -p hdldp-bench --bin million_user_ingest -- \
//!     --users 2000000 --shards 16 --dims 512 --m 16 --epsilon 2.0 --mechanism pm
//! cargo run --release -p hdldp-bench --bin million_user_ingest -- --telemetry # metrics
//! ```
//!
//! With `--telemetry`, each run records into an `hdldp_telemetry::Registry`
//! (per-shard report counters, batch-flush and merge latency histograms,
//! phase-duration gauges); the per-run snapshots are printed as tables and
//! written to `results/telemetry_million_user_ingest.json`.
//!
//! This is the ROADMAP item-1 driver: the collection protocol of Section
//! III-B run at the user counts the paper's setting assumes, with the client
//! fleet simulated lazily (only sampled dimensions are ever generated) so no
//! dataset is materialized. The run sweeps shard counts to show how ingest
//! scales, then writes every row to `results/million_user_ingest.json`.

use hdldp_bench::{scale::arg_value, write_json_results};
use hdldp_bench::{
    simulate_ingest_with, ExperimentScale, IngestSimConfig, ShardTelemetryRow, TextTable,
};
use hdldp_mechanisms::MechanismKind;
use hdldp_telemetry::Registry;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(args.clone());
    let telemetry = args.iter().any(|a| a == "--telemetry");

    let users: u64 = match arg_value(&args, "--users") {
        Some(v) => v.parse()?,
        None => scale.pick(10_000_000, 1_000_000),
    };
    let mut config = IngestSimConfig::for_users(users);
    if let Some(v) = arg_value(&args, "--dims") {
        config.dims = v.parse()?;
    }
    if let Some(v) = arg_value(&args, "--m") {
        config.reported_dims = v.parse()?;
    }
    if let Some(v) = arg_value(&args, "--epsilon") {
        config.total_epsilon = v.parse()?;
    }
    if let Some(v) = arg_value(&args, "--mechanism") {
        config.mechanism = MechanismKind::parse(&v)
            .ok_or_else(|| format!("unknown mechanism `{v}` (try: laplace, pm, hm, sw, duchi)"))?;
    }
    let shard_counts: Vec<usize> = match arg_value(&args, "--shards") {
        Some(v) => vec![v.parse()?],
        None => {
            let threads = rayon::current_num_threads().max(1);
            // Sweep 1 shard (the single-loop reference) up to 2x the worker
            // count, deduplicated and sorted.
            let mut counts = vec![1, threads, threads * 2];
            counts.sort_unstable();
            counts.dedup();
            counts
        }
    };

    println!(
        "million-user sharded ingest — {} users x {} dims, m = {}, eps = {}, {} [{}]",
        config.users,
        config.dims,
        config.reported_dims,
        config.total_epsilon,
        config.mechanism.name(),
        scale.label(),
    );
    println!();

    let mut table = TextTable::new(vec![
        "shards",
        "ingest (s)",
        "estimate (s)",
        "reports/sec",
        "entries/sec",
        "MSE",
        "max |err|",
        "shard load (min..max)",
    ]);
    let mut rows = Vec::new();
    let mut telemetry_rows = Vec::new();
    for &shards in &shard_counts {
        config.shards = shards;
        // A fresh registry per shard count, so per-shard counters never mix
        // between sweep configurations.
        let registry = if telemetry {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let summary = simulate_ingest_with(&config, &registry)?;
        table.push_row(vec![
            format!("{shards}"),
            format!("{:.2}", summary.ingest_secs),
            format!("{:.2}", summary.estimate_secs),
            format!("{:.0}", summary.reports_per_sec),
            format!("{:.0}", summary.entries_per_sec),
            format!("{:.6}", summary.mse),
            format!("{:.4}", summary.max_abs_error),
            format!("{}..{}", summary.min_shard_load, summary.max_shard_load),
        ]);
        rows.push(summary);
        if telemetry {
            let snapshot = registry.snapshot();
            println!("telemetry @ {shards} shard(s):");
            println!("{}", snapshot.render_table());
            telemetry_rows.push(ShardTelemetryRow { shards, snapshot });
        }
    }
    println!("{}", table.render());

    let path = write_json_results("million_user_ingest", &rows)?;
    println!("results written to {}", path.display());
    if telemetry {
        let path = write_json_results("telemetry_million_user_ingest", &telemetry_rows)?;
        println!("telemetry written to {}", path.display());
    }
    Ok(())
}
