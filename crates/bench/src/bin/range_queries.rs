//! Hierarchical range queries over a dyadic-interval tree, comparing raw
//! per-level estimates against HDR4ME-re-calibrated ones.
//!
//! ```text
//! cargo run --release -p hdldp-bench --bin range_queries            # reduced
//! cargo run --release -p hdldp-bench --bin range_queries -- --full  # paper-scale
//! cargo run --release -p hdldp-bench --bin range_queries -- --users 20000 --domain 64
//! cargo run --release -p hdldp-bench --bin range_queries -- --telemetry
//! ```
//!
//! The value distribution is skewed (most mass Zipf-concentrated on the low
//! eighth of the domain over a uniform tail) — the regime hierarchical
//! estimators are built for. For each oracle and total budget the tree is
//! built twice with identical per-level perturbations — once post-processed
//! raw (clip + renormalize per level), once HDR4ME-L1 re-calibrated per level
//! — followed by the same consistency pass, and evaluated on a fixed-seed set
//! of random ranges by mean relative error (denominator floored at 1e-3).

use hdldp_bench::{scale::arg_value, write_json_results, ExperimentScale, TextTable};
use hdldp_core::Regularization;
use hdldp_telemetry::Registry;
use hdldp_workloads::{true_range_frequency, OracleKind, RangeQueryConfig, RangeWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct ResultRow {
    oracle: String,
    epsilon: f64,
    variant: String,
    mean_relative_error: f64,
    mean_absolute_error: f64,
    consistency_gap: f64,
}

fn skewed_values(n: usize, domain: usize, seed: u64) -> Vec<usize> {
    let hot = (domain / 8).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..hot).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.8) {
                // Zipf over the hot prefix.
                let u: f64 = rng.gen_range(0.0..total);
                let mut acc = 0.0;
                for (i, w) in weights.iter().enumerate() {
                    acc += w;
                    if u < acc {
                        return i;
                    }
                }
                hot - 1
            } else {
                rng.gen_range(0..domain)
            }
        })
        .collect()
}

fn random_ranges(count: usize, domain: usize, seed: u64) -> Vec<std::ops::Range<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a = rng.gen_range(0..domain);
            let b = rng.gen_range(0..domain);
            a.min(b)..a.max(b) + 1
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let scale = ExperimentScale::from_args(args.clone());

    let users: usize = match arg_value(&args, "--users") {
        Some(v) => v.parse()?,
        None => scale.pick(200_000, 60_000),
    };
    let domain: usize = match arg_value(&args, "--domain") {
        Some(v) => v.parse()?,
        None => scale.pick(256, 256),
    };
    let queries = 200usize;
    let supremum_z: f64 = match arg_value(&args, "--z") {
        Some(v) => v.parse()?,
        None => 1.0,
    };

    println!("Hierarchical range queries over a dyadic-interval tree");
    println!(
        "scale: {} | n = {users}, domain = {domain}, {queries} fixed random ranges\n",
        scale.label()
    );

    let values = skewed_values(users, domain, 505);
    let ranges = random_ranges(queries, domain, 606);
    let registry = if telemetry {
        Registry::new()
    } else {
        Registry::disabled()
    };

    let mut rows = Vec::new();
    for kind in OracleKind::ALL {
        println!("oracle: {}", kind.name());
        let mut table = TextTable::new(vec![
            "epsilon",
            "variant",
            "mean rel err",
            "mean abs err",
            "consistency gap",
        ]);
        for &epsilon in &[0.5, 1.0, 2.0] {
            for (variant, recalibration) in
                [("raw", None), ("recalibrated", Some(Regularization::L1))]
            {
                let workload = RangeWorkload::with_telemetry(
                    RangeQueryConfig {
                        kind,
                        domain,
                        epsilon,
                        seed: 707,
                        recalibration,
                        supremum_z,
                    },
                    &registry,
                )?;
                let tree = workload.build(&values)?;
                let mut rel = 0.0;
                let mut abs = 0.0;
                for range in &ranges {
                    let truth = true_range_frequency(&values, range.clone());
                    let est = tree.query(range.clone())?;
                    abs += (est - truth).abs();
                    rel += (est - truth).abs() / truth.max(1e-3);
                }
                let q = queries as f64;
                table.push_row(vec![
                    format!("{epsilon}"),
                    variant.to_string(),
                    format!("{:.4}", rel / q),
                    format!("{:.4e}", abs / q),
                    format!("{:.1e}", tree.max_consistency_gap()),
                ]);
                rows.push(ResultRow {
                    oracle: kind.name().to_string(),
                    epsilon,
                    variant: variant.to_string(),
                    mean_relative_error: rel / q,
                    mean_absolute_error: abs / q,
                    consistency_gap: tree.max_consistency_gap(),
                });
            }
        }
        println!("{}", table.render());
    }

    let path = write_json_results("range_queries", &rows)?;
    println!("results written to {}", path.display());
    if telemetry {
        println!("\ntelemetry:");
        println!("{}", registry.snapshot().render_table());
    }
    Ok(())
}
