//! Reproduces **Table II** of the paper: probabilities that the one-dimension
//! deviation of the Piecewise and Square Wave mechanisms stays within a
//! collector-chosen supremum ξ, in the Section IV-C case study
//! (ε/m = 0.001, r = 10,000, values {0.1, …, 1.0} with probability 10% each).
//!
//! ```text
//! cargo run -p hdldp-bench --bin table2_case_study
//! ```
//!
//! The table is purely analytical — no simulation is involved — which is the
//! point of the paper's framework: mechanisms are benchmarked without running
//! any experiment.

use hdldp_bench::{write_json_results, TextTable};
use hdldp_framework::CaseStudy;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let case_study = CaseStudy::default();
    let bench = case_study.table2()?;

    println!("Table II — probabilities for the supremum to hold in one dimension");
    println!(
        "case study: eps/m = {}, r = {}, v = {} values",
        case_study.per_dimension_epsilon(),
        case_study.reports_per_dimension,
        case_study.values.support_size()
    );
    println!();

    let mut header = vec![
        "mechanism".to_string(),
        "delta".to_string(),
        "sigma^2".to_string(),
    ];
    for xi in bench.suprema() {
        header.push(format!("xi={xi}"));
    }
    let mut table = TextTable::new(header);
    for row in bench.rows() {
        let mut cells = vec![
            row.mechanism.clone(),
            format!("{:.4}", row.delta),
            format!("{:.4e}", row.variance),
        ];
        for &(_, p) in &row.probabilities {
            cells.push(format!("{p:.3e}"));
        }
        table.push_row(cells);
    }
    println!("{}", table.render());

    for (idx, xi) in bench.suprema().iter().enumerate() {
        if let Some(winner) = bench.winner_at(idx) {
            println!("winner at xi = {xi}: {}", winner.mechanism);
        }
    }

    let path = write_json_results("table2_case_study", &bench.rows().to_vec())?;
    println!("\nresults written to {}", path.display());
    Ok(())
}
