//! Machine-checked comparison of two `BENCH_*.json` baseline files.
//!
//! The committed baselines record the vendored criterion shim's best-batch
//! mean ns/iter per benchmark id. This module implements the comparison
//! protocol behind the `bench_compare` binary and CI's "Perf smoke" gate:
//!
//! 1. **Collect** — scrape the `BENCH_JSON {...}` lines a bench run prints
//!    into a [`BenchFile`] ([`scrape_bench_json`]).
//! 2. **Diff** — join baseline and current records by id ([`compare`]) and
//!    compute the per-id slowdown ratio `current_ns / baseline_ns`.
//! 3. **Gate** — any ratio above the threshold (e.g. `1.5x`) is a regression
//!    ([`Comparison::regressions`]); the binary exits non-zero.
//!
//! Absolute ns are machine-dependent, so cross-machine gating normalizes both
//! sides by a calibration benchmark id first (`--normalize`): each benchmark's
//! time is divided by the calibration benchmark's time *from the same file*,
//! which cancels uniform machine-speed differences while preserving relative
//! regressions.

use serde::{Deserialize, Serialize};

/// One benchmark measurement: the shim's best-batch mean ns/iter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark id, `group/function/parameter`.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
}

/// A committed `BENCH_*.json` file: provenance plus measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchFile {
    /// Free-form provenance note.
    pub note: String,
    /// `rustc --version` of the toolchain that produced the numbers.
    pub rustc: String,
    /// Logical CPU count of the measuring machine.
    pub cpu_count: u64,
    /// The measurements.
    pub benchmarks: Vec<BenchRecord>,
}

impl BenchFile {
    /// Parse a `BENCH_*.json` document.
    ///
    /// # Errors
    /// Returns a description of the JSON or schema violation.
    pub fn parse(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid BENCH json: {e:?}"))
    }

    /// The `mean_ns` recorded for `id`, if present.
    pub fn lookup(&self, id: &str) -> Option<f64> {
        self.benchmarks
            .iter()
            .find(|b| b.id == id)
            .map(|b| b.mean_ns)
    }
}

/// Scrape the `BENCH_JSON {"id":...,"mean_ns":...}` lines out of raw bench
/// output. Non-matching lines are ignored; a line that starts the marker but
/// fails to parse is an error (it means the output format drifted).
///
/// # Errors
/// Returns a description of the malformed line.
pub fn scrape_bench_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut records = Vec::new();
    for line in text.lines() {
        let Some(json) = line.trim_start().strip_prefix("BENCH_JSON ") else {
            continue;
        };
        let record: BenchRecord = serde_json::from_str(json)
            .map_err(|e| format!("malformed BENCH_JSON line `{line}`: {e:?}"))?;
        records.push(record);
    }
    Ok(records)
}

/// Parse a regression threshold like `1.5x` (trailing `x` optional) into the
/// maximum tolerated `current/baseline` ratio.
///
/// # Errors
/// Rejects non-numeric input and ratios below 1 (a gate that fails on
/// measurements *faster* than baseline is a misconfiguration).
pub fn parse_threshold(text: &str) -> Result<f64, String> {
    let numeric = text.strip_suffix(['x', 'X']).unwrap_or(text);
    let ratio: f64 = numeric
        .parse()
        .map_err(|_| format!("invalid threshold `{text}` (expected e.g. `1.5x`)"))?;
    if !(ratio.is_finite() && ratio >= 1.0) {
        return Err(format!("threshold must be a finite ratio >= 1, got {text}"));
    }
    Ok(ratio)
}

/// The per-id join of a baseline and a current measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Benchmark id present in both files.
    pub id: String,
    /// Baseline mean ns/iter.
    pub baseline_ns: f64,
    /// Current mean ns/iter.
    pub current_ns: f64,
    /// Slowdown ratio `current / baseline`, after normalization if requested.
    /// Above 1 means the current run is slower.
    pub ratio: f64,
}

/// Result of joining two [`BenchFile`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Ids present in both files, in baseline order.
    pub deltas: Vec<Delta>,
    /// Ids in the baseline with no current measurement.
    pub missing: Vec<String>,
    /// Ids measured now that the baseline does not know.
    pub added: Vec<String>,
    /// `(baseline_ns, current_ns)` of the calibration benchmark, when
    /// normalization was requested.
    pub normalizer: Option<(f64, f64)>,
}

impl Comparison {
    /// The deltas whose slowdown ratio exceeds `threshold`.
    pub fn regressions(&self, threshold: f64) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.ratio > threshold).collect()
    }
}

/// Join `baseline` and `current` by benchmark id.
///
/// With `normalize_id`, each side's measurements are first divided by that
/// id's measurement from the *same* file, cancelling uniform machine-speed
/// differences; the calibration id itself is excluded from the deltas (its
/// normalized ratio is 1 by construction).
///
/// # Errors
/// Returns an error when a requested calibration id is absent from either
/// file or measured at a non-positive time, or when a joined baseline entry
/// is non-positive (a ratio against it is meaningless).
pub fn compare(
    baseline: &BenchFile,
    current: &BenchFile,
    normalize_id: Option<&str>,
) -> Result<Comparison, String> {
    let normalizer = match normalize_id {
        None => None,
        Some(id) => {
            let base = baseline
                .lookup(id)
                .ok_or(format!("calibration id `{id}` missing from baseline"))?;
            let cur = current
                .lookup(id)
                .ok_or(format!("calibration id `{id}` missing from current run"))?;
            if !(base.is_finite() && base > 0.0 && cur.is_finite() && cur > 0.0) {
                return Err(format!(
                    "calibration id `{id}` has non-positive time ({base} vs {cur})"
                ));
            }
            Some((base, cur))
        }
    };
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for record in &baseline.benchmarks {
        if normalize_id == Some(record.id.as_str()) {
            continue;
        }
        let Some(current_ns) = current.lookup(&record.id) else {
            missing.push(record.id.clone());
            continue;
        };
        if !(record.mean_ns.is_finite() && record.mean_ns > 0.0) {
            return Err(format!(
                "baseline id `{}` has non-positive mean_ns {}",
                record.id, record.mean_ns
            ));
        }
        let ratio = match normalizer {
            None => current_ns / record.mean_ns,
            Some((base_cal, cur_cal)) => (current_ns / cur_cal) / (record.mean_ns / base_cal),
        };
        deltas.push(Delta {
            id: record.id.clone(),
            baseline_ns: record.mean_ns,
            current_ns,
            ratio,
        });
    }
    let added = current
        .benchmarks
        .iter()
        .filter(|b| baseline.lookup(&b.id).is_none() && normalize_id != Some(b.id.as_str()))
        .map(|b| b.id.clone())
        .collect();
    Ok(Comparison {
        deltas,
        missing,
        added,
        normalizer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(pairs: &[(&str, f64)]) -> BenchFile {
        BenchFile {
            note: "test".into(),
            rustc: "rustc test".into(),
            cpu_count: 1,
            benchmarks: pairs
                .iter()
                .map(|&(id, mean_ns)| BenchRecord {
                    id: id.into(),
                    mean_ns,
                })
                .collect(),
        }
    }

    #[test]
    fn threshold_parsing_accepts_ratio_with_optional_suffix() {
        assert_eq!(parse_threshold("1.5x").unwrap(), 1.5);
        assert_eq!(parse_threshold("2X").unwrap(), 2.0);
        assert_eq!(parse_threshold("1").unwrap(), 1.0);
        assert!(parse_threshold("fast").is_err());
        assert!(parse_threshold("0.5x").is_err());
        assert!(parse_threshold("-2x").is_err());
        assert!(parse_threshold("infx").is_err());
    }

    #[test]
    fn scrape_extracts_marker_lines_and_rejects_drift() {
        let log = "compiling...\nbench: a 12 ns/iter\nBENCH_JSON {\"id\":\"a/1\",\"mean_ns\":12.5}\nnoise\n  BENCH_JSON {\"id\":\"b/2\",\"mean_ns\":3.0}\n";
        let records = scrape_bench_json(log).unwrap();
        assert_eq!(
            records,
            vec![
                BenchRecord {
                    id: "a/1".into(),
                    mean_ns: 12.5
                },
                BenchRecord {
                    id: "b/2".into(),
                    mean_ns: 3.0
                },
            ]
        );
        assert!(scrape_bench_json("BENCH_JSON {broken").is_err());
    }

    #[test]
    fn synthetic_regression_breaches_the_gate() {
        // The acceptance scenario: one benchmark got 2x slower; a 1.5x gate
        // must flag exactly it and nothing else.
        let baseline = file(&[("model/1000", 1000.0), ("pgd/1000", 500.0)]);
        let regressed = file(&[("model/1000", 2000.0), ("pgd/1000", 510.0)]);
        let comparison = compare(&baseline, &regressed, None).unwrap();
        let threshold = parse_threshold("1.5x").unwrap();
        let regressions = comparison.regressions(threshold);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].id, "model/1000");
        assert!((regressions[0].ratio - 2.0).abs() < 1e-12);
        // An identical run passes.
        let clean = compare(&baseline, &baseline.clone(), None).unwrap();
        assert!(clean.regressions(threshold).is_empty());
    }

    #[test]
    fn normalization_cancels_uniform_machine_speed() {
        // The "current" machine is uniformly 3x slower; only `model/1000`
        // genuinely regressed (6x raw = 2x normalized).
        let baseline = file(&[
            ("calibrate", 100.0),
            ("model/1000", 1000.0),
            ("pgd/1000", 500.0),
        ]);
        let slower_machine = file(&[
            ("calibrate", 300.0),
            ("model/1000", 6000.0),
            ("pgd/1000", 1500.0),
        ]);
        let raw = compare(&baseline, &slower_machine, None).unwrap();
        assert_eq!(raw.regressions(1.5).len(), 3, "raw ratios all breach");
        let normalized = compare(&baseline, &slower_machine, Some("calibrate")).unwrap();
        assert_eq!(normalized.normalizer, Some((100.0, 300.0)));
        let regressions = normalized.regressions(1.5);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].id, "model/1000");
        assert!((regressions[0].ratio - 2.0).abs() < 1e-12);
        // The calibration id itself is not a delta.
        assert!(normalized.deltas.iter().all(|d| d.id != "calibrate"));
        // A missing calibration id is an error, not a silent pass.
        assert!(compare(&baseline, &slower_machine, Some("nope")).is_err());
    }

    #[test]
    fn missing_and_added_ids_are_reported() {
        let baseline = file(&[("kept", 10.0), ("removed", 20.0)]);
        let current = file(&[("kept", 11.0), ("brand_new", 5.0)]);
        let comparison = compare(&baseline, &current, None).unwrap();
        assert_eq!(comparison.deltas.len(), 1);
        assert_eq!(comparison.missing, vec!["removed".to_string()]);
        assert_eq!(comparison.added, vec!["brand_new".to_string()]);
    }

    #[test]
    fn bench_file_round_trips_through_json() {
        let original = file(&[("a/1", 12.5)]);
        let text = serde_json::to_string_pretty(&original).unwrap();
        let parsed = BenchFile::parse(&text).unwrap();
        assert_eq!(parsed, original);
        assert!(BenchFile::parse("{}").is_err());
        assert!(BenchFile::parse("not json").is_err());
    }

    #[test]
    fn committed_baseline_files_parse() {
        // Guard the schema against drift: every committed BENCH_*.json must
        // stay machine-readable by this module.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let mut checked = 0;
        for entry in std::fs::read_dir(root).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                let text = std::fs::read_to_string(&path).unwrap();
                let parsed = BenchFile::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(!parsed.benchmarks.is_empty(), "{name} has no benchmarks");
                checked += 1;
            }
        }
        assert!(
            checked >= 4,
            "expected the committed baselines, saw {checked}"
        );
    }

    #[test]
    fn non_positive_baseline_entries_are_rejected() {
        let baseline = file(&[("a", 0.0)]);
        let current = file(&[("a", 1.0)]);
        assert!(compare(&baseline, &current, None).is_err());
    }
}
