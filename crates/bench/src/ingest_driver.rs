//! Million-user ingest simulation: the driver behind the
//! `million_user_ingest` binary and example.
//!
//! The paper's setting is an aggregator collecting perturbed reports from a
//! very large population (Section III-B). This driver simulates that scale
//! without materializing the population: each simulated user's values are a
//! pure function of `(seed, user id, dimension)`, drawn uniformly from a
//! window of width 1 centred on a per-dimension target mean, so
//!
//! * only the `m` *sampled* dimensions of each user are ever generated
//!   (via [`hdldp_protocol::Client::perturb_lazy_into`]), and
//! * the population mean of dimension `j` is exactly
//!   [`population_mean`]`(j)` — giving an analytic ground truth to compute
//!   the MSE of the sharded estimate against, at any population size.
//!
//! Users stream through [`hdldp_protocol::IngestEngine`]: hash-partitioned
//! across shards, batched shard-locally, merged on read. The driver reports
//! throughput (users and reports per second) alongside the estimate's MSE.

use hdldp_mechanisms::{build_mechanism, MechanismKind};
use hdldp_protocol::{BudgetSplit, Client, IngestConfig, IngestEngine};
use hdldp_telemetry::{Registry, TelemetrySnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of one simulated ingest run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestSimConfig {
    /// Number of simulated users `n`.
    pub users: u64,
    /// Dimensionality `d` of each user's tuple.
    pub dims: usize,
    /// Number of dimensions `m` each user samples and reports.
    pub reported_dims: usize,
    /// Total per-user privacy budget `ε`.
    pub total_epsilon: f64,
    /// Number of ingest shards.
    pub shards: usize,
    /// Reports buffered per shard between flushes.
    pub batch_capacity: usize,
    /// The perturbation mechanism.
    pub mechanism: MechanismKind,
    /// Seed for the deterministic per-user randomness.
    pub seed: u64,
}

impl IngestSimConfig {
    /// A reasonable default telemetry-style workload for `users` users:
    /// 256 dimensions, 8 reported per user, ε = 1, one shard per worker
    /// thread, Laplace perturbation.
    pub fn for_users(users: u64) -> Self {
        Self {
            users,
            dims: 256,
            reported_dims: 8,
            total_epsilon: 1.0,
            shards: rayon::current_num_threads().max(1),
            batch_capacity: IngestConfig::DEFAULT_BATCH_CAPACITY,
            mechanism: MechanismKind::Laplace,
            seed: 42,
        }
    }
}

/// Outcome of one simulated ingest run: throughput and estimate quality.
#[derive(Debug, Clone, Serialize)]
pub struct IngestSimSummary {
    /// Number of simulated users.
    pub users: u64,
    /// Dimensionality of the collection.
    pub dims: usize,
    /// Reported dimensions per user.
    pub reported_dims: usize,
    /// Mechanism name.
    pub mechanism: String,
    /// Total per-user budget ε.
    pub total_epsilon: f64,
    /// Number of ingest shards.
    pub shards: usize,
    /// Reports buffered per shard between flushes.
    pub batch_capacity: usize,
    /// Seed of the deterministic per-user randomness.
    pub seed: u64,
    /// Total reports ingested (= users).
    pub total_reports: usize,
    /// Total `(dimension, value)` entries ingested (= users · m).
    pub total_entries: u64,
    /// Total wall-clock duration (ingest + estimation), in seconds.
    pub elapsed_secs: f64,
    /// Wall-clock duration of the streaming ingest phase, in seconds.
    pub ingest_secs: f64,
    /// Wall-clock duration of the merge + scoring phase, in seconds.
    pub estimate_secs: f64,
    /// Users processed per second (one report per user).
    pub reports_per_sec: f64,
    /// Perturbed entries ingested per second.
    pub entries_per_sec: f64,
    /// MSE of the sharded estimated means against the analytic population
    /// means.
    pub mse: f64,
    /// Largest per-dimension absolute estimation error.
    pub max_abs_error: f64,
    /// Smallest per-shard report count (load-balance diagnostic).
    pub min_shard_load: usize,
    /// Largest per-shard report count (load-balance diagnostic).
    pub max_shard_load: usize,
}

/// SplitMix64 finalizer used to derive per-(user, dimension) randomness.
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a mixed 64-bit state (53 mantissa bits).
fn unit(z: u64) -> f64 {
    (mix(z) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The exact population mean of dimension `j`: a deterministic value in
/// `[-0.45, 0.45]`, so every user value (mean ± 0.5) stays inside the
/// mechanisms' `[-1, 1]` input domain without clipping.
pub fn population_mean(dim: usize) -> f64 {
    0.9 * (unit(dim as u64 ^ 0xA5A5_A5A5_A5A5_A5A5) - 0.5)
}

/// The raw (unperturbed) value of `(user, dim)` under `seed`: uniform in a
/// width-1 window centred on [`population_mean`]`(dim)`, so the population
/// mean is exact by construction.
pub fn user_value(seed: u64, user: u64, dim: usize) -> f64 {
    let noise = unit(seed ^ mix(user) ^ (dim as u64).rotate_left(32)) - 0.5;
    population_mean(dim) + noise
}

/// Run the simulated collection: `config.users` clients sample, perturb and
/// stream reports into a sharded [`IngestEngine`]; the merged estimate is
/// scored against the analytic population means. Telemetry is disabled;
/// [`simulate_ingest_with`] records into a registry.
///
/// # Errors
/// Propagates mechanism/protocol configuration errors.
pub fn simulate_ingest(
    config: &IngestSimConfig,
) -> Result<IngestSimSummary, Box<dyn std::error::Error + Send + Sync>> {
    simulate_ingest_with(config, &Registry::disabled())
}

/// [`simulate_ingest`] recording engine metrics and phase durations into
/// `registry`: the ingest engine's counters and latency histograms, plus
/// `phase_ingest_seconds` / `phase_estimate_seconds` gauges mirroring the
/// summary's elapsed-time breakdown.
///
/// # Errors
/// Propagates mechanism/protocol configuration errors.
pub fn simulate_ingest_with(
    config: &IngestSimConfig,
    registry: &Registry,
) -> Result<IngestSimSummary, Box<dyn std::error::Error + Send + Sync>> {
    let budget = BudgetSplit::new(config.total_epsilon, config.reported_dims)?;
    let mechanism = build_mechanism(config.mechanism, budget.per_dimension())?;
    let client = Client::new(mechanism.as_ref(), budget, config.dims)?;
    let mut engine = IngestEngine::with_telemetry(
        config.dims,
        IngestConfig::new(config.shards, config.batch_capacity)?,
        registry,
    )?;

    let seed = config.seed;
    let start = Instant::now();
    engine.ingest_partitioned(0..config.users, |user, out| {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(mix(user)));
        client.perturb_lazy_into(|dim| user_value(seed, user, dim), &mut rng, out);
        Ok(())
    })?;
    let ingest_secs = start.elapsed().as_secs_f64().max(1e-9);
    registry.gauge("phase_ingest_seconds").set(ingest_secs);

    let estimate_start = Instant::now();
    let merged = engine.merged()?;
    let means = merged.means()?;
    let mut mse = 0.0;
    let mut max_abs_error: f64 = 0.0;
    for (dim, &estimate) in means.iter().enumerate() {
        let err = estimate - population_mean(dim);
        mse += err * err;
        max_abs_error = max_abs_error.max(err.abs());
    }
    mse /= config.dims as f64;
    let estimate_secs = estimate_start.elapsed().as_secs_f64().max(1e-9);
    registry.gauge("phase_estimate_seconds").set(estimate_secs);

    let elapsed = ingest_secs + estimate_secs;
    let loads = engine.shard_loads();
    let total_entries: u64 = merged.counts().iter().sum();
    Ok(IngestSimSummary {
        users: config.users,
        dims: config.dims,
        reported_dims: config.reported_dims,
        mechanism: config.mechanism.name().to_string(),
        total_epsilon: config.total_epsilon,
        shards: config.shards,
        batch_capacity: config.batch_capacity,
        seed: config.seed,
        total_reports: merged.reports(),
        total_entries,
        elapsed_secs: elapsed,
        ingest_secs,
        estimate_secs,
        reports_per_sec: merged.reports() as f64 / ingest_secs,
        entries_per_sec: total_entries as f64 / ingest_secs,
        mse,
        max_abs_error,
        min_shard_load: loads.iter().copied().min().unwrap_or(0),
        max_shard_load: loads.iter().copied().max().unwrap_or(0),
    })
}

/// One row of a telemetry result file: the registry snapshot of a run at one
/// shard count (the `million_user_ingest` binary writes a `Vec` of these to
/// `results/telemetry_million_user_ingest.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardTelemetryRow {
    /// Shard count of the run this snapshot belongs to.
    pub shards: usize,
    /// The full registry snapshot taken after the run.
    pub snapshot: TelemetrySnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_means_stay_in_the_safe_window() {
        for dim in 0..2_000 {
            let mu = population_mean(dim);
            assert!(mu.abs() <= 0.45, "dim {dim}: {mu}");
        }
    }

    #[test]
    fn user_values_stay_in_the_mechanism_domain() {
        for user in 0..200u64 {
            for dim in 0..32 {
                let v = user_value(7, user, dim);
                assert!((-1.0..=1.0).contains(&v), "({user}, {dim}): {v}");
            }
        }
    }

    #[test]
    fn user_values_average_to_the_population_mean() {
        let dim = 5;
        let n = 20_000u64;
        let sum: f64 = (0..n).map(|u| user_value(3, u, dim)).sum();
        let err = (sum / n as f64 - population_mean(dim)).abs();
        // Uniform(±0.5) sampling error at n = 20k is ~0.002; allow 4σ.
        assert!(err < 0.01, "empirical mean off by {err}");
    }

    #[test]
    fn simulation_reports_conserved_counts_and_finite_mse() {
        let mut config = IngestSimConfig::for_users(4_000);
        config.dims = 32;
        config.reported_dims = 4;
        config.shards = 4;
        let summary = simulate_ingest(&config).unwrap();
        assert_eq!(summary.total_reports, 4_000);
        assert_eq!(summary.total_entries, 4_000 * 4);
        assert!(summary.mse.is_finite() && summary.mse > 0.0);
        assert!(summary.reports_per_sec > 0.0);
        assert!(summary.min_shard_load > 0);
        assert!(summary.min_shard_load <= summary.max_shard_load);
    }

    #[test]
    fn simulation_is_deterministic_in_everything_but_timing() {
        let mut config = IngestSimConfig::for_users(2_000);
        config.dims = 16;
        config.reported_dims = 2;
        config.shards = 3;
        let a = simulate_ingest(&config).unwrap();
        let b = simulate_ingest(&config).unwrap();
        assert_eq!(a.mse, b.mse);
        assert_eq!(a.max_abs_error, b.max_abs_error);
        assert_eq!(a.total_entries, b.total_entries);
    }

    #[test]
    fn telemetry_snapshot_covers_the_run() {
        let mut config = IngestSimConfig::for_users(2_000);
        config.dims = 16;
        config.reported_dims = 2;
        config.shards = 2;
        let registry = Registry::new();
        let summary = simulate_ingest_with(&config, &registry).unwrap();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("ingest_reports_total"), Some(2_000));
        let per_shard = snapshot.counter("ingest_shard000_reports_total").unwrap()
            + snapshot.counter("ingest_shard001_reports_total").unwrap();
        assert_eq!(per_shard, 2_000);
        assert!(snapshot.histogram("ingest_batch_flush_ns").unwrap().count > 0);
        assert!(snapshot.gauge("phase_ingest_seconds").unwrap() > 0.0);
        assert!(snapshot.gauge("phase_estimate_seconds").unwrap() > 0.0);
        assert!(summary.ingest_secs > 0.0 && summary.estimate_secs > 0.0);
        let total = summary.ingest_secs + summary.estimate_secs;
        assert!((summary.elapsed_secs - total).abs() < 1e-12);
        assert_eq!(summary.batch_capacity, config.batch_capacity);
        assert_eq!(summary.seed, config.seed);
    }

    #[test]
    fn generous_budget_estimates_are_accurate() {
        let mut config = IngestSimConfig::for_users(50_000);
        config.dims = 16;
        config.reported_dims = 16;
        config.total_epsilon = 200.0;
        config.shards = 4;
        let summary = simulate_ingest(&config).unwrap();
        assert!(summary.mse < 1e-3, "mse = {}", summary.mse);
    }
}
