//! # hdldp-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section VI). Each table/figure has a dedicated binary
//! under `src/bin/`; this library holds the shared machinery:
//!
//! * [`scale`] — paper-scale vs reduced-scale experiment sizing (`--full`).
//! * [`mod@compare`] — diff two `BENCH_*.json` baselines; backs the
//!   `bench_compare` binary and CI's perf-regression gate.
//! * [`runner`] — run an LDP pipeline + HDR4ME over a dataset and average the
//!   paper's MSE metric over repetitions.
//! * [`ingest_driver`] — simulate millions of clients streaming reports into
//!   the sharded ingest engine (throughput + MSE, no materialized dataset).
//! * [`output`] — aligned text tables plus machine-readable JSON result files.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2_case_study` | Table II |
//! | `fig2_clt_validation` | Figure 2 |
//! | `fig3_case_study_validation` | Figure 3 |
//! | `fig4_mse_vs_epsilon` | Figure 4 (a)–(l), one dataset per invocation |
//! | `fig5_mse_vs_dimensions` | Figure 5 |
//! | `berry_esseen_bound` | §IV-D worked example |
//! | `freq_recalibration` | §V-C frequency-estimation extension |
//! | `million_user_ingest` | §III-B collection at population scale |
//!
//! Criterion micro-benchmarks (perturbation, aggregation, re-calibration,
//! framework evaluation) live under `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod compare;
pub mod ingest_driver;
pub mod output;
pub mod runner;
pub mod scale;

pub use compare::{
    compare, parse_threshold, scrape_bench_json, BenchFile, BenchRecord, Comparison,
};
pub use ingest_driver::{
    simulate_ingest, simulate_ingest_with, IngestSimConfig, IngestSimSummary, ShardTelemetryRow,
};
pub use output::{write_json_results, TextTable};
pub use runner::{average_mse, average_mse_with, MsePoint, RunnerConfig};
pub use scale::ExperimentScale;
