//! Output helpers for the experiment binaries: aligned text tables for the
//! terminal (the same rows/series the paper's tables and figures report) and
//! JSON files so EXPERIMENTS.md numbers stay traceable.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with columns padded to their widest cell.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(widths.len()) {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Write a serializable result set to `results/<name>.json` (creating the
/// directory if needed) and return the path written.
///
/// # Errors
/// Returns any filesystem or serialization error.
pub fn write_json_results<T: Serialize>(
    name: &str,
    results: &T,
) -> Result<PathBuf, Box<dyn std::error::Error + Send + Sync>> {
    write_json_results_in(Path::new("results"), name, results)
}

/// [`write_json_results`] with an explicit output directory (used by tests).
///
/// # Errors
/// Returns any filesystem or serialization error.
pub fn write_json_results_in<T: Serialize>(
    dir: &Path,
    name: &str,
    results: &T,
) -> Result<PathBuf, Box<dyn std::error::Error + Send + Sync>> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(results)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["epsilon", "naive", "l1"]);
        assert!(t.is_empty());
        t.push_row(vec!["0.1", "0.123456", "0.01"]);
        t.push_row(vec!["3.2", "0.001", "0.0005"]);
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].contains("epsilon"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines.len(), 4);
        // Columns align: "naive" column starts at the same offset in all rows.
        let offset = lines[0].find("naive").unwrap();
        assert_eq!(&lines[2][offset..offset + 2], "0.");
    }

    #[test]
    fn json_results_round_trip() {
        #[derive(Serialize)]
        struct Point {
            epsilon: f64,
            mse: f64,
        }
        let dir = std::env::temp_dir().join("hdldp_bench_test_results");
        let path = write_json_results_in(
            &dir,
            "unit_test",
            &vec![Point {
                epsilon: 0.1,
                mse: 0.5,
            }],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("epsilon"));
        assert!(content.contains("0.5"));
        std::fs::remove_file(path).ok();
    }
}
