//! Shared experiment runner: naive vs HDR4ME-enhanced MSE for one
//! mechanism/dataset/budget configuration, averaged over repetitions.
//!
//! This is the inner loop of Figures 4 and 5: run the LDP collection pipeline,
//! compute the naive MSE, build the deviation model once, apply HDR4ME with L1
//! and with L2, and report all three MSEs. Trials differ only in their seed
//! and are averaged, exactly like the paper's repeated experiments.

use hdldp_core::Hdr4me;
use hdldp_data::Dataset;
use hdldp_framework::DeviationModel;
use hdldp_math::stats;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{MeanEstimationPipeline, PipelineConfig};
use hdldp_telemetry::Registry;
use rayon::prelude::*;
use serde::Serialize;

/// Configuration for one (mechanism, dataset, ε) experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunnerConfig {
    /// The mechanism under test.
    pub mechanism: MechanismKind,
    /// Total per-user budget ε.
    pub total_epsilon: f64,
    /// Number of reported dimensions m (the paper's Figure 4/5 experiments
    /// report *all* dimensions, i.e. `m = d`).
    pub reported_dims: usize,
    /// Number of repetitions to average over.
    pub trials: usize,
    /// Base seed; trial `t` uses `seed + t`.
    pub seed: u64,
}

/// Averaged MSE of the naive aggregation and of both HDR4ME variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MsePoint {
    /// MSE of the naive aggregation (the paper's baseline curve).
    pub naive: f64,
    /// MSE after HDR4ME with L1-regularization.
    pub l1: f64,
    /// MSE after HDR4ME with L2-regularization.
    pub l2: f64,
}

/// Run the experiment point and average the three MSEs over the trials.
/// Telemetry is disabled; [`average_mse_with`] records into a registry.
///
/// # Errors
/// Propagates pipeline, framework and re-calibration errors (boxed, since they
/// originate in different crates).
pub fn average_mse(
    dataset: &Dataset,
    config: RunnerConfig,
) -> Result<MsePoint, Box<dyn std::error::Error + Send + Sync>> {
    average_mse_with(dataset, config, &Registry::disabled())
}

/// [`average_mse`] recording pipeline phase timings, ingest metrics and
/// re-calibration metrics into `registry` (all trials share the same cells).
///
/// # Errors
/// Same conditions as [`average_mse`].
pub fn average_mse_with(
    dataset: &Dataset,
    config: RunnerConfig,
    registry: &Registry,
) -> Result<MsePoint, Box<dyn std::error::Error + Send + Sync>> {
    if config.trials == 0 {
        return Err("trials must be positive".into());
    }
    let truth = dataset.true_means();

    // The deviation model depends on the mechanism/budget/dataset, not on the
    // trial seed, so build it once outside the trial loop; the re-calibrators
    // likewise, so every trial records into the same metric cells.
    let probe = MeanEstimationPipeline::new(
        config.mechanism,
        PipelineConfig::new(config.total_epsilon, config.reported_dims, config.seed),
    )?;
    let expected_reports =
        dataset.users() as f64 * config.reported_dims as f64 / dataset.dims() as f64;
    let model = DeviationModel::for_dataset(probe.mechanism(), dataset, expected_reports.max(1.0))?;
    let hdr_l1 = Hdr4me::l1().with_telemetry(registry);
    let hdr_l2 = Hdr4me::l2().with_telemetry(registry);

    type TrialResult = Result<(f64, f64, f64), Box<dyn std::error::Error + Send + Sync>>;
    let results: Vec<TrialResult> = (0..config.trials)
        .into_par_iter()
        .map(|trial| {
            let pipeline = MeanEstimationPipeline::new(
                config.mechanism,
                PipelineConfig::new(
                    config.total_epsilon,
                    config.reported_dims,
                    config.seed.wrapping_add(trial as u64 * 7919),
                ),
            )?
            .with_telemetry(registry);
            let estimate = pipeline.run(dataset)?;
            let naive = stats::mse(&estimate.estimated_means, &truth)?;
            let l1 = hdr_l1.recalibrate(&estimate.estimated_means, &model)?;
            let l2 = hdr_l2.recalibrate(&estimate.estimated_means, &model)?;
            Ok((
                naive,
                stats::mse(&l1.enhanced_means, &truth)?,
                stats::mse(&l2.enhanced_means, &truth)?,
            ))
        })
        .collect();

    let mut naive = 0.0;
    let mut l1 = 0.0;
    let mut l2 = 0.0;
    for r in results {
        let (n, a, b) = r?;
        naive += n;
        l1 += a;
        l2 += b;
    }
    let t = config.trials as f64;
    Ok(MsePoint {
        naive: naive / t,
        l1: l1 / t,
        l2: l2 / t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_data::GaussianDataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        GaussianDataset::new(2_000, 40)
            .unwrap()
            .generate(&mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn zero_trials_is_rejected() {
        let cfg = RunnerConfig {
            mechanism: MechanismKind::Laplace,
            total_epsilon: 1.0,
            reported_dims: 40,
            trials: 0,
            seed: 0,
        };
        assert!(average_mse(&dataset(), cfg).is_err());
    }

    #[test]
    fn hdr4me_improves_mse_in_the_high_dimensional_low_budget_regime() {
        // The core Figure 4 claim at one point: tight budget split over all
        // dimensions makes the naive aggregate noisy; both regularizations help.
        let cfg = RunnerConfig {
            mechanism: MechanismKind::Laplace,
            total_epsilon: 0.4,
            reported_dims: 40,
            trials: 3,
            seed: 11,
        };
        let point = average_mse(&dataset(), cfg).unwrap();
        assert!(point.l1 < point.naive, "{point:?}");
        assert!(point.l2 < point.naive, "{point:?}");
    }

    #[test]
    fn mse_decreases_with_budget_for_the_naive_aggregation() {
        let data = dataset();
        let at = |eps: f64| {
            average_mse(
                &data,
                RunnerConfig {
                    mechanism: MechanismKind::Piecewise,
                    total_epsilon: eps,
                    reported_dims: 40,
                    trials: 2,
                    seed: 5,
                },
            )
            .unwrap()
            .naive
        };
        assert!(at(0.2) > at(3.2));
    }

    #[test]
    fn telemetry_records_runs_and_recalibrations() {
        let registry = Registry::new();
        let cfg = RunnerConfig {
            mechanism: MechanismKind::Laplace,
            total_epsilon: 1.0,
            reported_dims: 40,
            trials: 2,
            seed: 9,
        };
        average_mse_with(&dataset(), cfg, &registry).unwrap();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("pipeline_runs_total"), Some(2));
        // Two trials, each re-calibrated with L1 and with L2.
        assert_eq!(snapshot.counter("recalibrations_total"), Some(4));
        assert_eq!(snapshot.histogram("pipeline_ingest_ns").unwrap().count, 2);
        assert_eq!(snapshot.histogram("recalibrate_solve_ns").unwrap().count, 4);
        assert!(snapshot.counter("ingest_reports_total").unwrap_or(0) > 0);
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let data = dataset();
        let cfg = RunnerConfig {
            mechanism: MechanismKind::Laplace,
            total_epsilon: 0.8,
            reported_dims: 40,
            trials: 2,
            seed: 123,
        };
        let a = average_mse(&data, cfg).unwrap();
        let b = average_mse(&data, cfg).unwrap();
        assert_eq!(a, b);
    }
}
