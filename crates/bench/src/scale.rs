//! Experiment scale selection.
//!
//! The paper's figures use up to 200,000 users × 5,000 dimensions with 100 to
//! 1,000 repetitions; running all of that takes a while on a laptop. Every
//! bench binary therefore defaults to a reduced scale that preserves the
//! *shape* of the results (who wins, by roughly what factor) and accepts
//! `--full` to run the paper's exact sizes. EXPERIMENTS.md records which scale
//! produced the checked-in numbers.

/// Whether to run the paper's exact sizes or a reduced configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// The paper's exact parameters.
    Full,
    /// Reduced user counts / repetitions (default).
    Reduced,
}

impl ExperimentScale {
    /// Parse the scale from command-line arguments (presence of `--full`).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        if args.into_iter().any(|a| a == "--full") {
            ExperimentScale::Full
        } else {
            ExperimentScale::Reduced
        }
    }

    /// Pick `full` at full scale and `reduced` otherwise.
    pub fn pick<T>(&self, full: T, reduced: T) -> T {
        match self {
            ExperimentScale::Full => full,
            ExperimentScale::Reduced => reduced,
        }
    }

    /// Human-readable label used in the output headers.
    pub fn label(&self) -> &'static str {
        match self {
            ExperimentScale::Full => "full (paper-scale)",
            ExperimentScale::Reduced => "reduced (default; pass --full for paper-scale)",
        }
    }
}

/// Extract the value following a `--key` flag from an argument list.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_flag() {
        let full = ExperimentScale::from_args(vec!["--full".to_string()]);
        assert_eq!(full, ExperimentScale::Full);
        let reduced = ExperimentScale::from_args(vec!["--dataset".to_string(), "x".to_string()]);
        assert_eq!(reduced, ExperimentScale::Reduced);
        assert_eq!(ExperimentScale::from_args(vec![]), ExperimentScale::Reduced);
    }

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(ExperimentScale::Full.pick(10, 2), 10);
        assert_eq!(ExperimentScale::Reduced.pick(10, 2), 2);
        assert!(ExperimentScale::Reduced.label().contains("--full"));
        assert!(ExperimentScale::Full.label().contains("paper"));
    }

    #[test]
    fn arg_value_extracts_following_token() {
        let args: Vec<String> = ["--dataset", "gaussian", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--dataset").as_deref(), Some("gaussian"));
        assert_eq!(arg_value(&args, "--full"), None);
        assert_eq!(arg_value(&args, "--missing"), None);
    }
}
