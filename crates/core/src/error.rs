//! Error type for HDR4ME.

use std::fmt;

/// Errors raised while configuring or running HDR4ME.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// Vector lengths do not agree (estimate vs weights vs model dimensions).
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// An error bubbled up from the analytical framework.
    Framework(hdldp_framework::FrameworkError),
    /// An error bubbled up from the collection protocol.
    Protocol(hdldp_protocol::ProtocolError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { name, reason } => {
                write!(f, "invalid HDR4ME configuration `{name}`: {reason}")
            }
            CoreError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            CoreError::Framework(e) => write!(f, "framework error: {e}"),
            CoreError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Framework(e) => Some(e),
            CoreError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdldp_framework::FrameworkError> for CoreError {
    fn from(e: hdldp_framework::FrameworkError) -> Self {
        CoreError::Framework(e)
    }
}

impl From<hdldp_protocol::ProtocolError> for CoreError {
    fn from(e: hdldp_protocol::ProtocolError) -> Self {
        CoreError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CoreError::InvalidConfig {
            name: "supremum_z",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("supremum_z"));
        let e = CoreError::LengthMismatch {
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains('2'));
        let e: CoreError = hdldp_framework::FrameworkError::InvalidParameter {
            name: "x",
            reason: "y".into(),
        }
        .into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = hdldp_protocol::ProtocolError::EmptyDimension { dimension: 0 }.into();
        assert!(e.to_string().contains("protocol"));
    }
}
