//! HDR4ME for frequency estimation (Section V-C).
//!
//! Histogram encoding turns one categorical dimension with `v_j` categories
//! into `v_j` numeric entries in `[0, 1]` whose means are the category
//! frequencies; the collection protocol (see
//! [`hdldp_protocol::FrequencyPipeline`]) estimates those means naively, and
//! this module applies the same re-calibration as for numeric means:
//!
//! 1. build the deviation model of the per-entry mechanism over the `{0, 1}`
//!    value distribution implied by the (estimated) frequencies,
//! 2. select `λ*` and apply the one-off solver,
//! 3. clip to `[0, 1]` and renormalize so the enhanced frequencies form a
//!    distribution.

use crate::{Hdr4me, RecalibratedMean};
use hdldp_data::DiscreteValueDistribution;
use hdldp_framework::{DeviationApproximation, DeviationModel};
use hdldp_mechanisms::Mechanism;
use hdldp_protocol::FrequencyEstimate;

/// The outcome of re-calibrating one categorical dimension's frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct RecalibratedFrequencies {
    /// Enhanced frequencies after clipping to `[0, 1]` and renormalizing.
    pub enhanced: Vec<f64>,
    /// The raw re-calibration output before the consistency step.
    pub raw: RecalibratedMean,
}

impl Hdr4me {
    /// Re-calibrate the estimated frequencies of categorical dimension `dim`.
    ///
    /// `mechanism` must be the per-entry mechanism the estimate was produced
    /// with (available from [`hdldp_protocol::FrequencyPipeline::mechanism`]).
    ///
    /// # Errors
    /// Propagates framework/model construction and solver errors, and returns a
    /// length-mismatch error when `dim` is out of range.
    pub fn recalibrate_frequencies(
        &self,
        estimate: &FrequencyEstimate,
        dim: usize,
        mechanism: &dyn Mechanism,
    ) -> crate::Result<RecalibratedFrequencies> {
        let raw_freqs = estimate
            .estimated
            .get(dim)
            .ok_or(crate::CoreError::LengthMismatch {
                expected: estimate.estimated.len(),
                actual: dim,
            })?;
        let reports = estimate.report_counts[dim].max(1) as f64;

        // Deviation model: each one-hot entry takes value 1 with (estimated)
        // probability f and 0 otherwise. Use the clipped estimate as the best
        // available stand-in for the true frequency.
        let mut dims = Vec::with_capacity(raw_freqs.len());
        for &f in raw_freqs {
            let p_one = f.clamp(0.0, 1.0);
            let values = DiscreteValueDistribution::new(vec![0.0, 1.0], vec![1.0 - p_one, p_one])
                .map_err(hdldp_framework::FrameworkError::from)?;
            dims.push(DeviationApproximation::for_dimension(
                mechanism, &values, reports,
            )?);
        }
        let model = DeviationModel::new(dims)?;
        let raw = self.recalibrate(raw_freqs, &model)?;

        // Consistency post-processing: clip and renormalize.
        let clipped: Vec<f64> = raw
            .enhanced_means
            .iter()
            .map(|f| f.clamp(0.0, 1.0))
            .collect();
        let total: f64 = clipped.iter().sum();
        let enhanced = if total > 0.0 {
            clipped.iter().map(|f| f / total).collect()
        } else {
            vec![1.0 / clipped.len() as f64; clipped.len()]
        };

        Ok(RecalibratedFrequencies { enhanced, raw })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_data::CategoricalDataset;
    use hdldp_math::stats;
    use hdldp_mechanisms::MechanismKind;
    use hdldp_protocol::{FrequencyPipeline, PipelineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_pipeline(eps: f64, users: usize) -> (FrequencyEstimate, FrequencyPipeline) {
        let data =
            CategoricalDataset::generate_zipf(users, vec![8, 5], &mut StdRng::seed_from_u64(100))
                .unwrap();
        let pipeline =
            FrequencyPipeline::new(MechanismKind::Piecewise, PipelineConfig::new(eps, 2, 9))
                .unwrap();
        (pipeline.run(&data).unwrap(), pipeline)
    }

    #[test]
    fn enhanced_frequencies_form_a_distribution() {
        let (estimate, pipeline) = run_pipeline(0.4, 2_000);
        for dim in 0..2 {
            let result = Hdr4me::l1()
                .recalibrate_frequencies(&estimate, dim, pipeline.mechanism())
                .unwrap();
            let total: f64 = result.enhanced.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "dim {dim}");
            assert!(result.enhanced.iter().all(|&f| (0.0..=1.0).contains(&f)));
            assert_eq!(result.enhanced.len(), estimate.true_frequencies[dim].len());
        }
    }

    #[test]
    fn out_of_range_dimension_is_rejected() {
        let (estimate, pipeline) = run_pipeline(0.4, 500);
        assert!(Hdr4me::l1()
            .recalibrate_frequencies(&estimate, 7, pipeline.mechanism())
            .is_err());
    }

    #[test]
    fn recalibration_improves_noisy_frequency_estimates() {
        // Tight budget over many users: raw estimates are noisy; the enhanced,
        // renormalized estimate should have lower MSE against the truth.
        let (estimate, pipeline) = run_pipeline(0.2, 4_000);
        let mut improved = 0;
        for dim in 0..2 {
            let truth = &estimate.true_frequencies[dim];
            let raw_mse = stats::mse(&estimate.estimated[dim], truth).unwrap();
            let result = Hdr4me::l2()
                .recalibrate_frequencies(&estimate, dim, pipeline.mechanism())
                .unwrap();
            let enhanced_mse = stats::mse(&result.enhanced, truth).unwrap();
            if enhanced_mse < raw_mse {
                improved += 1;
            }
        }
        assert!(
            improved >= 1,
            "L2 re-calibration should help on at least one dimension"
        );
    }

    #[test]
    fn l1_and_l2_both_produce_finite_output() {
        let (estimate, pipeline) = run_pipeline(1.0, 1_000);
        for hdr in [Hdr4me::l1(), Hdr4me::l2()] {
            let result = hdr
                .recalibrate_frequencies(&estimate, 0, pipeline.mechanism())
                .unwrap();
            assert!(result.enhanced.iter().all(|f| f.is_finite()));
            assert!(result.raw.weights.iter().all(|w| w.is_finite()));
        }
    }

    /// Hand-build an estimate with the given raw frequency column (bypassing
    /// the pipeline, so degenerate shapes can be exercised directly).
    fn synthetic_estimate(raw: Vec<f64>, reports: u64) -> FrequencyEstimate {
        let k = raw.len();
        FrequencyEstimate {
            estimated: vec![raw],
            true_frequencies: vec![vec![1.0 / k as f64; k]],
            report_counts: vec![reports],
            per_entry_epsilon: 0.5,
        }
    }

    fn unit_mechanism() -> impl hdldp_mechanisms::Mechanism {
        // Square wave is natively on the one-hot entry domain [0, 1].
        hdldp_mechanisms::SquareWaveMechanism::new(0.5).unwrap()
    }

    #[test]
    fn single_category_collapses_to_certainty() {
        // A dimension with one category: whatever the raw estimate says, the
        // renormalized result is the point distribution {1.0}.
        for raw in [0.3, 1.7, -0.2] {
            let estimate = synthetic_estimate(vec![raw], 500);
            for hdr in [Hdr4me::l1(), Hdr4me::l2()] {
                let result = hdr
                    .recalibrate_frequencies(&estimate, 0, &unit_mechanism())
                    .unwrap();
                assert_eq!(result.enhanced, vec![1.0], "raw = {raw}");
            }
        }
    }

    #[test]
    fn already_consistent_input_stays_a_distribution() {
        // An input that is already a clean distribution must come back as a
        // distribution — recalibration may shrink, but the consistency step
        // restores sum-to-one and never pushes entries outside [0, 1].
        let estimate = synthetic_estimate(vec![0.5, 0.3, 0.15, 0.05], 10_000);
        for hdr in [Hdr4me::l1(), Hdr4me::l2()] {
            let result = hdr
                .recalibrate_frequencies(&estimate, 0, &unit_mechanism())
                .unwrap();
            let total: f64 = result.enhanced.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(result.enhanced.iter().all(|&f| (0.0..=1.0).contains(&f)));
            // Ordering of a well-separated consistent input is preserved.
            assert!(result.enhanced[0] >= result.enhanced[3]);
        }
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn recalibrated_frequencies_are_nonnegative_and_normalized(
                raw in proptest::collection::vec(-0.3f64..1.3, 1..9),
                reports in 10u64..100_000,
                l1 in proptest::bool::ANY,
            ) {
                let estimate = synthetic_estimate(raw, reports);
                let hdr = if l1 { Hdr4me::l1() } else { Hdr4me::l2() };
                let result = hdr
                    .recalibrate_frequencies(&estimate, 0, &unit_mechanism())
                    .unwrap();
                let total: f64 = result.enhanced.iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                prop_assert!(result.enhanced.iter().all(|f| (0.0..=1.0).contains(f)));
                prop_assert!(result.raw.weights.iter().all(|w| w.is_finite()));
            }
        }
    }
}
