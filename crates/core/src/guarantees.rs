//! The improvement guarantees of Theorems 3 and 4.
//!
//! HDR4ME improves on the naive aggregation whenever every dimension's
//! deviation exceeds the regularizer's threshold (1 for L1, 2 for L2 — Lemmas
//! 4 and 5). Theorem 1's multivariate density turns that event into a number:
//! the improvement holds with probability at least
//! `1 − ∫_{[-τ, τ]^d} f(θ̂ − θ̄)` where `τ` is the threshold.
//!
//! The guarantee doubles as a *decision rule*: when the probability is low
//! (small `d`, generous budget), the paper explicitly warns that the
//! re-calibration can hurt and should be skipped — [`ImprovementGuarantee`]
//! carries exactly that recommendation.

use crate::Regularization;
use hdldp_framework::DeviationModel;
use serde::{Deserialize, Serialize};

/// The Theorem 3/4 lower bound on the probability that HDR4ME improves the
/// estimate, plus the derived recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImprovementGuarantee {
    /// Which regularization the guarantee is about.
    pub regularization: Regularization,
    /// The per-dimension deviation threshold (1 for L1, 2 for L2).
    pub threshold: f64,
    /// Lower bound on the probability that the re-calibrated mean is closer to
    /// the truth than the naive mean.
    pub probability: f64,
}

impl ImprovementGuarantee {
    /// Evaluate the guarantee for a deviation model.
    pub fn evaluate(model: &DeviationModel, regularization: Regularization) -> Self {
        let probability = match regularization {
            Regularization::L1 => model.l1_improvement_probability(),
            Regularization::L2 => model.l2_improvement_probability(),
        };
        Self {
            regularization,
            threshold: regularization.improvement_threshold(),
            probability,
        }
    }

    /// Whether applying the re-calibration is advisable at the given confidence
    /// level (i.e. the guaranteed improvement probability reaches it).
    pub fn is_recommended(&self, confidence: f64) -> bool {
        self.probability >= confidence
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_data::DiscreteValueDistribution;
    use hdldp_mechanisms::LaplaceMechanism;

    fn model(eps: f64, reports: f64, dims: usize) -> DeviationModel {
        let mech = LaplaceMechanism::new(eps).unwrap();
        let values = DiscreteValueDistribution::case_study();
        DeviationModel::homogeneous(&mech, &values, reports, dims).unwrap()
    }

    #[test]
    fn high_dimensional_noisy_setting_recommends_recalibration() {
        // 500 dimensions, tiny per-dimension budget: the noise dwarfs the signal.
        let m = model(0.002, 200.0, 500);
        let l1 = ImprovementGuarantee::evaluate(&m, Regularization::L1);
        let l2 = ImprovementGuarantee::evaluate(&m, Regularization::L2);
        assert!(l1.probability > 0.999);
        assert!(l2.probability > 0.99);
        assert!(l1.is_recommended(0.95));
        assert!(l2.is_recommended(0.95));
        assert_eq!(l1.threshold, 1.0);
        assert_eq!(l2.threshold, 2.0);
    }

    #[test]
    fn low_dimensional_generous_budget_does_not_recommend() {
        let m = model(5.0, 10_000.0, 3);
        let l1 = ImprovementGuarantee::evaluate(&m, Regularization::L1);
        let l2 = ImprovementGuarantee::evaluate(&m, Regularization::L2);
        assert!(l1.probability < 0.05, "p = {}", l1.probability);
        assert!(l2.probability < 0.05);
        assert!(!l1.is_recommended(0.5));
        assert!(!l2.is_recommended(0.5));
    }

    #[test]
    fn l1_guarantee_is_at_least_the_l2_guarantee() {
        // The L1 threshold (1) is easier to exceed than the L2 threshold (2).
        for &(eps, dims) in &[(0.01, 50), (0.1, 200), (1.0, 1000)] {
            let m = model(eps, 500.0, dims);
            let l1 = ImprovementGuarantee::evaluate(&m, Regularization::L1);
            let l2 = ImprovementGuarantee::evaluate(&m, Regularization::L2);
            assert!(
                l1.probability + 1e-12 >= l2.probability,
                "eps = {eps}, d = {dims}"
            );
        }
    }

    #[test]
    fn probability_grows_with_dimensionality() {
        let p50 = ImprovementGuarantee::evaluate(&model(0.05, 500.0, 50), Regularization::L1);
        let p500 = ImprovementGuarantee::evaluate(&model(0.05, 500.0, 500), Regularization::L1);
        assert!(p500.probability >= p50.probability);
    }

    #[test]
    fn serializes_to_json() {
        let g = ImprovementGuarantee::evaluate(&model(0.1, 100.0, 10), Regularization::L1);
        let json = serde_json::to_string(&g).unwrap();
        assert!(json.contains("probability"));
    }
}
