//! Regularization-weight (`λ*`) selection from the analytical framework.
//!
//! Lemma 4 (L1) sets `λ*_j = sup|θ̂_j − θ̄_j|`; Lemma 5 (L2) sets
//! `λ*_j = sup (θ̂_j − θ̄_j) / (2 θ̄_j)`, where the supremum of the deviation is
//! read off the framework's Gaussian approximation and, for L2, "θ̄_j can select
//! the mean of the normal distribution that approximates θ̂_j − θ̄_j".
//!
//! Two practical choices have to be made explicit (and are configurable):
//!
//! * a Gaussian has no finite supremum, so we use the high quantile
//!   `|δ_j| + z·σ_j` (default `z = 3`, covering 99.7% of the deviation mass) —
//!   this mirrors the paper's "collector-chosen tolerated supremum";
//! * for unbiased mechanisms the deviation mean `δ_j` is zero, which would make
//!   the L2 weight infinite. We floor the denominator at a configurable value
//!   (default `0.05`), which reproduces the paper's observed behaviour that L2
//!   weights become very large in high dimensions and push the enhanced mean
//!   towards zero, without ever producing a non-finite weight.

use crate::{CoreError, Regularization};
use hdldp_framework::DeviationModel;
use serde::{Deserialize, Serialize};

/// Policy for turning the deviation model into per-dimension `λ*` weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LambdaSelector {
    /// Number of deviation standard deviations used as the practical supremum.
    pub supremum_z: f64,
    /// Floor applied to `|δ_j|` in the L2 denominator `2·θ̄_j`.
    pub l2_denominator_floor: f64,
}

impl Default for LambdaSelector {
    fn default() -> Self {
        Self {
            supremum_z: 3.0,
            l2_denominator_floor: 0.05,
        }
    }
}

impl LambdaSelector {
    /// Create a selector, validating the knobs.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] when either parameter is not a
    /// positive finite number.
    pub fn new(supremum_z: f64, l2_denominator_floor: f64) -> crate::Result<Self> {
        if !(supremum_z.is_finite() && supremum_z > 0.0) {
            return Err(CoreError::InvalidConfig {
                name: "supremum_z",
                reason: format!("must be positive and finite, got {supremum_z}"),
            });
        }
        if !(l2_denominator_floor.is_finite() && l2_denominator_floor > 0.0) {
            return Err(CoreError::InvalidConfig {
                name: "l2_denominator_floor",
                reason: format!("must be positive and finite, got {l2_denominator_floor}"),
            });
        }
        Ok(Self {
            supremum_z,
            l2_denominator_floor,
        })
    }

    /// The per-dimension practical suprema `sup|θ̂_j − θ̄_j| = |δ_j| + z σ_j`.
    pub fn suprema(&self, model: &DeviationModel) -> Vec<f64> {
        model.suprema(self.supremum_z)
    }

    /// The `λ*` weights for the given regularization (Lemma 4 / Lemma 5).
    pub fn weights(&self, model: &DeviationModel, regularization: Regularization) -> Vec<f64> {
        let suprema = self.suprema(model);
        match regularization {
            Regularization::L1 => suprema,
            Regularization::L2 => suprema
                .iter()
                .zip(model.deltas())
                .map(|(&sup, delta)| {
                    let denom = delta.abs().max(self.l2_denominator_floor);
                    sup / (2.0 * denom)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_data::DiscreteValueDistribution;
    use hdldp_framework::DeviationModel;
    use hdldp_mechanisms::{LaplaceMechanism, SquareWaveMechanism};

    fn laplace_model(eps: f64, reports: f64, dims: usize) -> DeviationModel {
        let mech = LaplaceMechanism::new(eps).unwrap();
        let values = DiscreteValueDistribution::case_study();
        DeviationModel::homogeneous(&mech, &values, reports, dims).unwrap()
    }

    #[test]
    fn construction_validates_knobs() {
        assert!(LambdaSelector::new(3.0, 0.05).is_ok());
        assert!(LambdaSelector::new(0.0, 0.05).is_err());
        assert!(LambdaSelector::new(3.0, 0.0).is_err());
        assert!(LambdaSelector::new(f64::NAN, 0.05).is_err());
        let d = LambdaSelector::default();
        assert_eq!(d.supremum_z, 3.0);
        assert_eq!(d.l2_denominator_floor, 0.05);
    }

    #[test]
    fn l1_weights_are_the_suprema() {
        let model = laplace_model(0.01, 100.0, 5);
        let sel = LambdaSelector::default();
        assert_eq!(sel.weights(&model, Regularization::L1), sel.suprema(&model));
        // Unbiased Laplace: supremum = 3 sigma.
        let sigma = model.std_devs()[0];
        assert!((sel.suprema(&model)[0] - 3.0 * sigma).abs() < 1e-12);
    }

    #[test]
    fn l2_weights_use_floored_denominator_for_unbiased_mechanisms() {
        let model = laplace_model(0.01, 100.0, 3);
        let sel = LambdaSelector::default();
        let l2 = sel.weights(&model, Regularization::L2);
        let expected = sel.suprema(&model)[0] / (2.0 * 0.05);
        assert!((l2[0] - expected).abs() < 1e-12);
        assert!(l2.iter().all(|w| w.is_finite() && *w > 0.0));
    }

    #[test]
    fn l2_weights_use_deviation_mean_for_biased_mechanisms() {
        // Square Wave at the case-study budget has |delta| ≈ 0.049 < floor 0.05,
        // so the floor still applies; with a smaller floor the bias is used.
        let mech = SquareWaveMechanism::new(0.001).unwrap();
        let values = DiscreteValueDistribution::case_study();
        let model = DeviationModel::homogeneous(&mech, &values, 10_000.0, 2).unwrap();
        let sel = LambdaSelector::new(3.0, 0.01).unwrap();
        let l2 = sel.weights(&model, Regularization::L2);
        let sup = sel.suprema(&model)[0];
        let delta = model.deltas()[0].abs();
        assert!(delta > 0.01);
        assert!((l2[0] - sup / (2.0 * delta)).abs() < 1e-12);
    }

    #[test]
    fn weights_grow_as_budget_shrinks() {
        let sel = LambdaSelector::default();
        let tight = sel.weights(&laplace_model(0.001, 100.0, 1), Regularization::L1)[0];
        let loose = sel.weights(&laplace_model(1.0, 100.0, 1), Regularization::L1)[0];
        assert!(tight > loose * 100.0);
    }

    #[test]
    fn larger_z_gives_larger_weights() {
        let model = laplace_model(0.1, 100.0, 2);
        let small = LambdaSelector::new(1.0, 0.05).unwrap();
        let large = LambdaSelector::new(5.0, 0.05).unwrap();
        for (a, b) in small
            .weights(&model, Regularization::L1)
            .iter()
            .zip(large.weights(&model, Regularization::L1))
        {
            assert!(b > *a);
        }
    }
}
