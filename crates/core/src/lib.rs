//! # hdldp-core — HDR4ME
//!
//! The paper's second contribution: **H**igh-**D**imensional **R**e-calibration
//! for **M**ean **E**stimation. HDR4ME is a one-off, non-iterative
//! re-calibration applied by the data collector *after* any LDP mechanism has
//! been aggregated naively: it adds an L1 or L2 regularizer to the aggregation
//! loss
//!
//! ```text
//! θ* = argmin_θ  (1/2r) Σ_i ‖t*_i − θ‖²  +  R(λ* ∘ θ)
//! ```
//!
//! and solves it in closed form — soft-thresholding for L1 (Equation 34),
//! shrinkage for L2 (Equation 42) — with the regularization weights `λ*` read
//! off the analytical framework of [`hdldp_framework`] (Lemmas 4 and 5). In
//! high-dimensional space, where the per-dimension budget `ε/m` is tiny and the
//! noise overwhelms the signal, the re-calibration provably improves the
//! estimate with the probabilities of Theorems 3 and 4; when dimensionality is
//! low or the budget generous, the thresholds are not met and the paper warns
//! the re-calibration can hurt — [`guarantees`] exposes exactly that decision
//! information.
//!
//! Modules:
//!
//! * [`regularization`] — the L1/L2 regularizer choice.
//! * [`solver`] — the closed-form one-off solvers (Equations 34 and 42).
//! * [`pgd`] — an iterative proximal-gradient-descent solver used to
//!   cross-validate the closed forms (the paper derives the closed forms from
//!   PGD; we keep both and property-test their agreement).
//! * [`lambda`] — regularization-weight selection from the deviation model.
//! * [`recalibrate`] — the [`Hdr4me`] re-calibrator tying everything together.
//! * [`guarantees`] — the Theorem 3/4 improvement probabilities.
//! * [`frequency`] — the extension to frequency estimation (Section V-C).
//! * [`telemetry`] — the pre-registered runtime-metric bundle recalibrators
//!   record into when built with [`Hdr4me::with_telemetry`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod error;
pub mod frequency;
pub mod guarantees;
pub mod lambda;
pub mod pgd;
pub mod recalibrate;
pub mod regularization;
pub mod solver;
pub mod telemetry;

pub use error::CoreError;
pub use guarantees::ImprovementGuarantee;
pub use lambda::LambdaSelector;
pub use recalibrate::{Hdr4me, Hdr4meConfig, RecalibratedMean};
pub use regularization::Regularization;
pub use telemetry::RecalibrationMetrics;

/// Convenience result alias for HDR4ME operations.
pub type Result<T> = std::result::Result<T, CoreError>;
