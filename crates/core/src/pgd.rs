//! Iterative proximal gradient descent (PGD) over the regularized aggregation
//! loss.
//!
//! The paper *derives* HDR4ME's closed-form solvers by observing that one
//! proximal step from `θ_k` with gradient `∇L(θ_k) = θ_k − θ̂` lands on the
//! minimiser. We keep a genuine iterative PGD implementation for two reasons:
//!
//! * it cross-validates the closed forms (the ablation benchmark measures how
//!   much the one-off solver saves), and
//! * it generalises to step sizes `η < 1`, where convergence takes several
//!   iterations and the fixed point can be checked independently.

use crate::solver::{l2_shrink, soft_threshold};
use crate::{CoreError, Regularization};

/// Configuration of the iterative PGD solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgdConfig {
    /// Step size `η ∈ (0, 1]` (the loss has unit Lipschitz gradient, so any
    /// step in that range converges).
    pub step_size: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Stop when the L∞ change between iterates drops below this value.
    pub tolerance: f64,
}

impl Default for PgdConfig {
    fn default() -> Self {
        Self {
            step_size: 1.0,
            max_iterations: 1_000,
            tolerance: 1e-12,
        }
    }
}

/// The result of a PGD run.
#[derive(Debug, Clone, PartialEq)]
pub struct PgdSolution {
    /// The final iterate `θ*`.
    pub theta: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Run proximal gradient descent on
/// `argmin_θ 0.5‖θ − θ̂‖² + R(λ ∘ θ)`.
///
/// # Errors
/// Returns [`CoreError::InvalidConfig`] for an invalid step size, tolerance or
/// iteration budget, and [`CoreError::LengthMismatch`] when `weights` and
/// `estimate` differ in length.
pub fn proximal_gradient_descent(
    estimate: &[f64],
    weights: &[f64],
    regularization: Regularization,
    config: PgdConfig,
) -> crate::Result<PgdSolution> {
    if estimate.len() != weights.len() {
        return Err(CoreError::LengthMismatch {
            expected: estimate.len(),
            actual: weights.len(),
        });
    }
    if !(config.step_size > 0.0 && config.step_size <= 1.0) {
        return Err(CoreError::InvalidConfig {
            name: "step_size",
            reason: format!("must lie in (0, 1], got {}", config.step_size),
        });
    }
    if config.max_iterations == 0 {
        return Err(CoreError::InvalidConfig {
            name: "max_iterations",
            reason: "must be positive".into(),
        });
    }
    if !(config.tolerance.is_finite() && config.tolerance >= 0.0) {
        return Err(CoreError::InvalidConfig {
            name: "tolerance",
            reason: format!("must be non-negative, got {}", config.tolerance),
        });
    }

    let eta = config.step_size;
    let mut theta = vec![0.0; estimate.len()];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        let mut max_change: f64 = 0.0;
        for j in 0..theta.len() {
            // Gradient step on L(θ) = 0.5 ‖θ − θ̂‖²: z = θ_j − η (θ_j − θ̂_j).
            let z = theta[j] - eta * (theta[j] - estimate[j]);
            // Proximal step with the η-scaled penalty.
            let next = match regularization {
                Regularization::L1 => soft_threshold(z, eta * weights[j]),
                Regularization::L2 => l2_shrink(z, eta * weights[j]),
            };
            max_change = max_change.max((next - theta[j]).abs());
            theta[j] = next;
        }
        if max_change <= config.tolerance {
            converged = true;
            break;
        }
    }

    Ok(PgdSolution {
        theta,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_l1, solve_l2};

    #[test]
    fn validates_configuration() {
        let est = [1.0];
        let w = [0.5];
        let bad_step = PgdConfig {
            step_size: 0.0,
            ..PgdConfig::default()
        };
        assert!(proximal_gradient_descent(&est, &w, Regularization::L1, bad_step).is_err());
        let bad_iters = PgdConfig {
            max_iterations: 0,
            ..PgdConfig::default()
        };
        assert!(proximal_gradient_descent(&est, &w, Regularization::L1, bad_iters).is_err());
        let bad_tol = PgdConfig {
            tolerance: f64::NAN,
            ..PgdConfig::default()
        };
        assert!(proximal_gradient_descent(&est, &w, Regularization::L1, bad_tol).is_err());
        assert!(proximal_gradient_descent(
            &est,
            &[0.5, 0.5],
            Regularization::L1,
            PgdConfig::default()
        )
        .is_err());
    }

    #[test]
    fn unit_step_l1_converges_immediately_to_the_closed_form() {
        let est = [3.0, -0.2, 0.0, -4.0, 0.9];
        let w = [1.0, 1.0, 1.0, 0.5, 2.0];
        let sol =
            proximal_gradient_descent(&est, &w, Regularization::L1, PgdConfig::default()).unwrap();
        let closed = solve_l1(&est, &w).unwrap();
        assert!(sol.converged);
        // With η = 1 the first iterate is already the minimiser; the second
        // iteration just confirms convergence.
        assert!(sol.iterations <= 2);
        for (a, b) in sol.theta.iter().zip(&closed) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn small_step_l1_still_converges_to_the_closed_form() {
        let est = [2.5, -1.5, 0.4];
        let w = [0.7, 0.7, 0.7];
        let config = PgdConfig {
            step_size: 0.1,
            max_iterations: 5_000,
            tolerance: 1e-14,
        };
        let sol = proximal_gradient_descent(&est, &w, Regularization::L1, config).unwrap();
        let closed = solve_l1(&est, &w).unwrap();
        assert!(sol.converged);
        assert!(sol.iterations > 2, "should genuinely iterate");
        for (a, b) in sol.theta.iter().zip(&closed) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn small_step_l2_converges_to_the_closed_form() {
        let est = [2.5, -1.5, 0.4, 0.0];
        let w = [0.3, 1.0, 5.0, 2.0];
        let config = PgdConfig {
            step_size: 0.25,
            max_iterations: 10_000,
            tolerance: 1e-14,
        };
        let sol = proximal_gradient_descent(&est, &w, Regularization::L2, config).unwrap();
        let closed = solve_l2(&est, &w).unwrap();
        assert!(sol.converged);
        for (a, b) in sol.theta.iter().zip(&closed) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let est = [5.0];
        let w = [0.1];
        let config = PgdConfig {
            step_size: 0.01,
            max_iterations: 3,
            tolerance: 0.0,
        };
        let sol = proximal_gradient_descent(&est, &w, Regularization::L1, config).unwrap();
        assert_eq!(sol.iterations, 3);
        assert!(!sol.converged);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
            #[test]
            fn pgd_agrees_with_closed_form(
                pair in (1usize..16).prop_flat_map(|len| (
                    proptest::collection::vec(-5.0f64..5.0, len),
                    proptest::collection::vec(0.0f64..3.0, len),
                )),
                step in 0.05f64..1.0,
                l1 in proptest::bool::ANY,
            ) {
                let (est, w) = pair;
                let reg = if l1 { Regularization::L1 } else { Regularization::L2 };
                let config = PgdConfig { step_size: step, max_iterations: 20_000, tolerance: 1e-13 };
                let sol = proximal_gradient_descent(&est, &w, reg, config).unwrap();
                let closed = match reg {
                    Regularization::L1 => solve_l1(&est, &w).unwrap(),
                    Regularization::L2 => solve_l2(&est, &w).unwrap(),
                };
                prop_assert!(sol.converged);
                for (a, b) in sol.theta.iter().zip(&closed) {
                    prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
                }
            }
        }
    }
}
