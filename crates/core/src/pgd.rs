//! Iterative proximal gradient descent (PGD) over the regularized aggregation
//! loss.
//!
//! The paper *derives* HDR4ME's closed-form solvers by observing that one
//! proximal step from `θ_k` with gradient `∇L(θ_k) = θ_k − θ̂` lands on the
//! minimiser. We keep a genuine iterative PGD implementation for two reasons:
//!
//! * it cross-validates the closed forms (the ablation benchmark measures how
//!   much the one-off solver saves), and
//! * it generalises to step sizes `η < 1`, where convergence takes several
//!   iterations and the fixed point can be checked independently.

use crate::solver::{l2_shrink, soft_threshold};
use crate::{CoreError, Regularization};

/// Configuration of the iterative PGD solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgdConfig {
    /// Step size `η ∈ (0, 1]` (the loss has unit Lipschitz gradient, so any
    /// step in that range converges).
    pub step_size: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Stop when the L∞ change between iterates drops below this value.
    pub tolerance: f64,
}

impl Default for PgdConfig {
    fn default() -> Self {
        Self {
            step_size: 1.0,
            max_iterations: 1_000,
            tolerance: 1e-12,
        }
    }
}

/// The result of a PGD run.
#[derive(Debug, Clone, PartialEq)]
pub struct PgdSolution {
    /// The final iterate `θ*`.
    pub theta: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Validate the shared PGD inputs.
fn validate_pgd_inputs(estimate: &[f64], weights: &[f64], config: &PgdConfig) -> crate::Result<()> {
    if estimate.len() != weights.len() {
        return Err(CoreError::LengthMismatch {
            expected: estimate.len(),
            actual: weights.len(),
        });
    }
    if weights.iter().any(|w| !(w.is_finite() && *w >= 0.0)) {
        return Err(CoreError::InvalidConfig {
            name: "weights",
            reason: "regularization weights must be finite and non-negative".into(),
        });
    }
    if !(config.step_size > 0.0 && config.step_size <= 1.0) {
        return Err(CoreError::InvalidConfig {
            name: "step_size",
            reason: format!("must lie in (0, 1], got {}", config.step_size),
        });
    }
    if config.max_iterations == 0 {
        return Err(CoreError::InvalidConfig {
            name: "max_iterations",
            reason: "must be positive".into(),
        });
    }
    if !(config.tolerance.is_finite() && config.tolerance >= 0.0) {
        return Err(CoreError::InvalidConfig {
            name: "tolerance",
            reason: format!("must be non-negative, got {}", config.tolerance),
        });
    }
    Ok(())
}

/// Run proximal gradient descent on
/// `argmin_θ 0.5‖θ − θ̂‖² + R(λ ∘ θ)`.
///
/// The iteration operates on flat buffers: the η-scaled penalties (L1) or
/// shrink denominators (L2) are hoisted out of the loop, and each iteration is
/// one branch-free sweep over `(θ, θ̂, penalty)` — the regularizer is chosen
/// once per iteration, not once per coordinate, so the inner loops vectorise.
/// Produces the same iterates as [`proximal_gradient_descent_reference`]
/// (possibly differing in the sign of exact zeros, which the L∞ convergence
/// check does not observe).
///
/// # Errors
/// Returns [`CoreError::InvalidConfig`] for an invalid step size, tolerance,
/// iteration budget or negative/non-finite weights, and
/// [`CoreError::LengthMismatch`] when `weights` and `estimate` differ in
/// length.
pub fn proximal_gradient_descent(
    estimate: &[f64],
    weights: &[f64],
    regularization: Regularization,
    config: PgdConfig,
) -> crate::Result<PgdSolution> {
    validate_pgd_inputs(estimate, weights, &config)?;

    let eta = config.step_size;
    // Iteration-invariant per-coordinate penalty: λ_j = η w_j for L1's
    // threshold, 2 η w_j + 1 for L2's shrink denominator (the exact
    // expressions `soft_threshold`/`l2_shrink` would evaluate every step).
    let penalties: Vec<f64> = match regularization {
        Regularization::L1 => weights.iter().map(|w| eta * w).collect(),
        Regularization::L2 => weights.iter().map(|w| 2.0 * (eta * w) + 1.0).collect(),
    };
    let mut theta = vec![0.0; estimate.len()];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        let max_change = match regularization {
            Regularization::L1 => l1_sweep(&mut theta, estimate, &penalties, eta),
            Regularization::L2 => l2_sweep(&mut theta, estimate, &penalties, eta),
        };
        if max_change <= config.tolerance {
            converged = true;
            break;
        }
    }

    Ok(PgdSolution {
        theta,
        iterations,
        converged,
    })
}

/// One L1 iteration: gradient step plus branch-free soft threshold.
///
/// For λ ≥ 0 (validated), `max(|z| − λ, 0) · sign(z)` computes exactly the
/// same values as the branchy `soft_threshold` — the subtractions round
/// identically in both sign cases — except that a thresholded-to-zero
/// coordinate inherits the sign of `z`'s zero.
fn l1_sweep(theta: &mut [f64], estimate: &[f64], lambdas: &[f64], eta: f64) -> f64 {
    let mut max_change: f64 = 0.0;
    for ((t, &e), &lambda) in theta.iter_mut().zip(estimate).zip(lambdas) {
        let z = *t - eta * (*t - e);
        let next = (z.abs() - lambda).max(0.0).copysign(z);
        max_change = max_change.max((next - *t).abs());
        *t = next;
    }
    max_change
}

/// One L2 iteration: gradient step plus shrink by the hoisted denominator.
fn l2_sweep(theta: &mut [f64], estimate: &[f64], denominators: &[f64], eta: f64) -> f64 {
    let mut max_change: f64 = 0.0;
    for ((t, &e), &denominator) in theta.iter_mut().zip(estimate).zip(denominators) {
        let z = *t - eta * (*t - e);
        let next = z / denominator;
        max_change = max_change.max((next - *t).abs());
        *t = next;
    }
    max_change
}

/// The pre-optimisation per-coordinate implementation of
/// [`proximal_gradient_descent`], kept as an independently-coded oracle for
/// the equivalence tests and the ablation benchmarks: it re-selects the
/// regularizer and re-scales the penalty for every coordinate of every
/// iteration, exactly as the original code did.
///
/// # Errors
/// Same contract as [`proximal_gradient_descent`].
pub fn proximal_gradient_descent_reference(
    estimate: &[f64],
    weights: &[f64],
    regularization: Regularization,
    config: PgdConfig,
) -> crate::Result<PgdSolution> {
    validate_pgd_inputs(estimate, weights, &config)?;

    let eta = config.step_size;
    let mut theta = vec![0.0; estimate.len()];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        let mut max_change: f64 = 0.0;
        for ((t, &est), &w) in theta.iter_mut().zip(estimate).zip(weights) {
            // Gradient step on L(θ) = 0.5 ‖θ − θ̂‖²: z = θ_j − η (θ_j − θ̂_j).
            let z = *t - eta * (*t - est);
            // Proximal step with the η-scaled penalty.
            let next = match regularization {
                Regularization::L1 => soft_threshold(z, eta * w),
                Regularization::L2 => l2_shrink(z, eta * w),
            };
            max_change = max_change.max((next - *t).abs());
            *t = next;
        }
        if max_change <= config.tolerance {
            converged = true;
            break;
        }
    }

    Ok(PgdSolution {
        theta,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_l1, solve_l2};

    #[test]
    fn validates_configuration() {
        let est = [1.0];
        let w = [0.5];
        let bad_step = PgdConfig {
            step_size: 0.0,
            ..PgdConfig::default()
        };
        assert!(proximal_gradient_descent(&est, &w, Regularization::L1, bad_step).is_err());
        let bad_iters = PgdConfig {
            max_iterations: 0,
            ..PgdConfig::default()
        };
        assert!(proximal_gradient_descent(&est, &w, Regularization::L1, bad_iters).is_err());
        let bad_tol = PgdConfig {
            tolerance: f64::NAN,
            ..PgdConfig::default()
        };
        assert!(proximal_gradient_descent(&est, &w, Regularization::L1, bad_tol).is_err());
        assert!(proximal_gradient_descent(
            &est,
            &[0.5, 0.5],
            Regularization::L1,
            PgdConfig::default()
        )
        .is_err());
    }

    #[test]
    fn unit_step_l1_converges_immediately_to_the_closed_form() {
        let est = [3.0, -0.2, 0.0, -4.0, 0.9];
        let w = [1.0, 1.0, 1.0, 0.5, 2.0];
        let sol =
            proximal_gradient_descent(&est, &w, Regularization::L1, PgdConfig::default()).unwrap();
        let closed = solve_l1(&est, &w).unwrap();
        assert!(sol.converged);
        // With η = 1 the first iterate is already the minimiser; the second
        // iteration just confirms convergence.
        assert!(sol.iterations <= 2);
        for (a, b) in sol.theta.iter().zip(&closed) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn small_step_l1_still_converges_to_the_closed_form() {
        let est = [2.5, -1.5, 0.4];
        let w = [0.7, 0.7, 0.7];
        let config = PgdConfig {
            step_size: 0.1,
            max_iterations: 5_000,
            tolerance: 1e-14,
        };
        let sol = proximal_gradient_descent(&est, &w, Regularization::L1, config).unwrap();
        let closed = solve_l1(&est, &w).unwrap();
        assert!(sol.converged);
        assert!(sol.iterations > 2, "should genuinely iterate");
        for (a, b) in sol.theta.iter().zip(&closed) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn small_step_l2_converges_to_the_closed_form() {
        let est = [2.5, -1.5, 0.4, 0.0];
        let w = [0.3, 1.0, 5.0, 2.0];
        let config = PgdConfig {
            step_size: 0.25,
            max_iterations: 10_000,
            tolerance: 1e-14,
        };
        let sol = proximal_gradient_descent(&est, &w, Regularization::L2, config).unwrap();
        let closed = solve_l2(&est, &w).unwrap();
        assert!(sol.converged);
        for (a, b) in sol.theta.iter().zip(&closed) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_negative_or_non_finite_weights() {
        let est = [1.0, 2.0];
        for w in [[0.5, -0.1], [0.5, f64::NAN], [0.5, f64::INFINITY]] {
            assert!(
                proximal_gradient_descent(&est, &w, Regularization::L1, PgdConfig::default())
                    .is_err()
            );
            assert!(proximal_gradient_descent_reference(
                &est,
                &w,
                Regularization::L2,
                PgdConfig::default()
            )
            .is_err());
        }
    }

    #[test]
    fn vectorised_path_matches_reference() {
        let est: Vec<f64> = (0..257).map(|j| (j as f64 * 0.37).sin() * 5.0).collect();
        let w: Vec<f64> = (0..257).map(|j| 1.0 + (j % 7) as f64 * 0.3).collect();
        for reg in [Regularization::L1, Regularization::L2] {
            for step in [1.0, 0.5, 0.1] {
                let config = PgdConfig {
                    step_size: step,
                    max_iterations: 500,
                    tolerance: 1e-10,
                };
                let fast = proximal_gradient_descent(&est, &w, reg, config).unwrap();
                let slow = proximal_gradient_descent_reference(&est, &w, reg, config).unwrap();
                assert_eq!(fast.iterations, slow.iterations, "{reg:?} step {step}");
                assert_eq!(fast.converged, slow.converged, "{reg:?} step {step}");
                for (a, b) in fast.theta.iter().zip(&slow.theta) {
                    assert!((a - b).abs() <= 1e-12, "{reg:?} step {step}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let est = [5.0];
        let w = [0.1];
        let config = PgdConfig {
            step_size: 0.01,
            max_iterations: 3,
            tolerance: 0.0,
        };
        let sol = proximal_gradient_descent(&est, &w, Regularization::L1, config).unwrap();
        assert_eq!(sol.iterations, 3);
        assert!(!sol.converged);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
            #[test]
            fn pgd_agrees_with_closed_form(
                pair in (1usize..16).prop_flat_map(|len| (
                    proptest::collection::vec(-5.0f64..5.0, len),
                    proptest::collection::vec(0.0f64..3.0, len),
                )),
                step in 0.05f64..1.0,
                l1 in proptest::bool::ANY,
            ) {
                let (est, w) = pair;
                let reg = if l1 { Regularization::L1 } else { Regularization::L2 };
                let config = PgdConfig { step_size: step, max_iterations: 20_000, tolerance: 1e-13 };
                let sol = proximal_gradient_descent(&est, &w, reg, config).unwrap();
                let closed = match reg {
                    Regularization::L1 => solve_l1(&est, &w).unwrap(),
                    Regularization::L2 => solve_l2(&est, &w).unwrap(),
                };
                prop_assert!(sol.converged);
                for (a, b) in sol.theta.iter().zip(&closed) {
                    prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
                }
            }
        }
    }
}
