//! The [`Hdr4me`] re-calibrator: the protocol of Section V-B, end to end.
//!
//! Given the naive aggregate `θ̂` produced by any LDP mechanism and the
//! analytical framework's deviation model for that mechanism/dataset/budget,
//! HDR4ME:
//!
//! 1. selects the per-dimension regularization weights `λ*` (Lemmas 4/5),
//! 2. applies the one-off closed-form solver (Equation 34 for L1, Equation 42
//!    for L2) to obtain the enhanced mean `θ*`, and
//! 3. reports the Theorem 3/4 improvement guarantee so the collector can
//!    decide whether to trust the re-calibration at all.
//!
//! Nothing about the LDP mechanism or the user-side protocol changes — the
//! re-calibration is a pure post-processing step at the collector, which also
//! means it costs no additional privacy budget.

use crate::solver::{solve_l1, solve_l2};
use crate::telemetry::RecalibrationMetrics;
use crate::{CoreError, ImprovementGuarantee, LambdaSelector, Regularization};
use hdldp_framework::DeviationModel;
use hdldp_mechanisms::Mechanism;
use hdldp_protocol::MeanEstimate;
use hdldp_telemetry::Registry;
use serde::{Deserialize, Serialize};

/// Configuration of the HDR4ME re-calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hdr4meConfig {
    /// Which regularizer to use.
    pub regularization: Regularization,
    /// How the `λ*` weights are derived from the deviation model.
    pub lambda: LambdaSelector,
}

impl Hdr4meConfig {
    /// L1 configuration with default weight selection.
    pub fn l1() -> Self {
        Self {
            regularization: Regularization::L1,
            lambda: LambdaSelector::default(),
        }
    }

    /// L2 configuration with default weight selection.
    pub fn l2() -> Self {
        Self {
            regularization: Regularization::L2,
            lambda: LambdaSelector::default(),
        }
    }
}

/// The outcome of a re-calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct RecalibratedMean {
    /// The enhanced mean `θ*`.
    pub enhanced_means: Vec<f64>,
    /// The regularization weights `λ*` that were applied.
    pub weights: Vec<f64>,
    /// The Theorem 3/4 improvement guarantee for this setting.
    pub guarantee: ImprovementGuarantee,
}

/// The HDR4ME re-calibrator.
///
/// Re-calibrators built with [`Hdr4me::with_telemetry`] count completed
/// re-calibrations and time the weight-selection and solver phases (see the
/// metric table in [`crate::telemetry`]); by default telemetry is disabled
/// and every recording site is a single branch. Clones share the same metric
/// cells.
#[derive(Debug, Clone)]
pub struct Hdr4me {
    config: Hdr4meConfig,
    metrics: RecalibrationMetrics,
}

impl Hdr4me {
    /// Create a re-calibrator with the given configuration.
    pub fn new(config: Hdr4meConfig) -> Self {
        Self {
            config,
            metrics: RecalibrationMetrics::register(&Registry::disabled()),
        }
    }

    /// Record re-calibration metrics into `registry`.
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.metrics = RecalibrationMetrics::register(registry);
        self
    }

    /// Create an L1 re-calibrator with default weight selection.
    pub fn l1() -> Self {
        Self::new(Hdr4meConfig::l1())
    }

    /// Create an L2 re-calibrator with default weight selection.
    pub fn l2() -> Self {
        Self::new(Hdr4meConfig::l2())
    }

    /// The configuration in use.
    pub fn config(&self) -> Hdr4meConfig {
        self.config
    }

    /// Re-calibrate a naive estimated mean using an already-built deviation
    /// model.
    ///
    /// # Errors
    /// Returns [`CoreError::LengthMismatch`] when the estimate's length differs
    /// from the model's dimensionality, and propagates solver errors.
    pub fn recalibrate(
        &self,
        estimated_means: &[f64],
        model: &DeviationModel,
    ) -> crate::Result<RecalibratedMean> {
        if estimated_means.len() != model.dims() {
            return Err(CoreError::LengthMismatch {
                expected: model.dims(),
                actual: estimated_means.len(),
            });
        }
        let weights_timer = self.metrics.weights_ns.start();
        let weights = self
            .config
            .lambda
            .weights(model, self.config.regularization);
        weights_timer.stop();
        let solve_timer = self.metrics.solve_ns.start();
        let enhanced_means = match self.config.regularization {
            Regularization::L1 => solve_l1(estimated_means, &weights)?,
            Regularization::L2 => solve_l2(estimated_means, &weights)?,
        };
        solve_timer.stop();
        self.metrics.recalibrations.inc();
        let guarantee = ImprovementGuarantee::evaluate(model, self.config.regularization);
        Ok(RecalibratedMean {
            enhanced_means,
            weights,
            guarantee,
        })
    }

    /// Convenience wrapper: build the deviation model for a pipeline result and
    /// re-calibrate it in one call.
    ///
    /// `mechanism` must be the per-dimension mechanism the estimate was
    /// produced with (the pipeline exposes it), and `dataset_columns` the
    /// per-dimension value distributions — the average report count is taken
    /// from the estimate itself.
    ///
    /// # Errors
    /// Propagates framework and solver errors.
    pub fn recalibrate_estimate(
        &self,
        estimate: &MeanEstimate,
        mechanism: &dyn Mechanism,
        dataset: &hdldp_data::Dataset,
    ) -> crate::Result<RecalibratedMean> {
        let avg_reports = estimate.report_counts.iter().sum::<u64>() as f64
            / estimate.report_counts.len().max(1) as f64;
        let model = DeviationModel::for_dataset(mechanism, dataset, avg_reports.max(1.0))?;
        self.recalibrate(&estimate.estimated_means, &model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_data::{DiscreteValueDistribution, GaussianDataset};
    use hdldp_math::stats;
    use hdldp_mechanisms::{LaplaceMechanism, MechanismKind};
    use hdldp_protocol::{MeanEstimationPipeline, PipelineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy_model(dims: usize) -> DeviationModel {
        // Tiny per-dimension budget: deviations are huge, HDR4ME should help.
        let mech = LaplaceMechanism::new(0.002).unwrap();
        let values = DiscreteValueDistribution::case_study();
        DeviationModel::homogeneous(&mech, &values, 200.0, dims).unwrap()
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let model = noisy_model(4);
        assert!(Hdr4me::l1().recalibrate(&[0.0; 3], &model).is_err());
        assert!(Hdr4me::l1().recalibrate(&[0.0; 4], &model).is_ok());
    }

    #[test]
    fn l1_recalibration_soft_thresholds_the_estimate() {
        let model = noisy_model(3);
        let hdr = Hdr4me::l1();
        let estimate = [250.0, -0.5, -300.0];
        let result = hdr.recalibrate(&estimate, &model).unwrap();
        let lambda = result.weights[0];
        assert!(lambda > 1.0, "weights should be large in this regime");
        // Large coordinates are shrunk by lambda, small ones zeroed.
        assert!((result.enhanced_means[0] - (250.0 - lambda).max(0.0)).abs() < 1e-9);
        assert_eq!(result.enhanced_means[1], 0.0);
        assert!((result.enhanced_means[2] - (-300.0 + lambda).min(0.0)).abs() < 1e-9);
        assert_eq!(result.guarantee.regularization, Regularization::L1);
        assert!(result.guarantee.probability > 0.99);
    }

    #[test]
    fn l2_recalibration_shrinks_every_coordinate() {
        let model = noisy_model(3);
        let result = Hdr4me::l2()
            .recalibrate(&[10.0, -20.0, 0.0], &model)
            .unwrap();
        for (enhanced, original) in result.enhanced_means.iter().zip([10.0f64, -20.0, 0.0]) {
            assert!(enhanced.abs() <= original.abs());
            assert!(enhanced.signum() == original.signum() || *enhanced == 0.0);
        }
        assert_eq!(result.guarantee.regularization, Regularization::L2);
    }

    #[test]
    fn recalibration_improves_mse_in_the_high_noise_regime() {
        // Simulate the paper's core claim end-to-end: noisy naive aggregate of
        // a sparse-ish mean vector, re-calibrated with both regularizers.
        let dims = 400;
        let model = noisy_model(dims);
        let sigma = model.std_devs()[0];
        // True means: 10% at 0.9, the rest at 0 (the Gaussian dataset pattern).
        let truth: Vec<f64> = (0..dims)
            .map(|j| if j % 10 == 0 { 0.9 } else { 0.0 })
            .collect();
        // Naive estimate = truth + Gaussian noise of the predicted magnitude.
        let noise_dist = hdldp_math::Normal::new(0.0, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let estimate: Vec<f64> = truth
            .iter()
            .map(|t| t + noise_dist.sample(&mut rng))
            .collect();

        let naive_mse = stats::mse(&estimate, &truth).unwrap();
        for hdr in [Hdr4me::l1(), Hdr4me::l2()] {
            let result = hdr.recalibrate(&estimate, &model).unwrap();
            let enhanced_mse = stats::mse(&result.enhanced_means, &truth).unwrap();
            assert!(
                enhanced_mse < naive_mse,
                "{:?}: enhanced {enhanced_mse} vs naive {naive_mse}",
                hdr.config().regularization
            );
        }
    }

    #[test]
    fn recalibration_can_hurt_when_thresholds_are_not_met() {
        // Low noise, low dimensionality: the paper's warning case. The
        // guarantee probability should be near zero, flagging "do not apply".
        let mech = LaplaceMechanism::new(5.0).unwrap();
        let values = DiscreteValueDistribution::case_study();
        let model = DeviationModel::homogeneous(&mech, &values, 100_000.0, 2).unwrap();
        let result = Hdr4me::l1().recalibrate(&[0.5, -0.4], &model).unwrap();
        assert!(result.guarantee.probability < 0.01);
        assert!(!result.guarantee.is_recommended(0.5));
    }

    #[test]
    fn end_to_end_pipeline_recalibration() {
        // Full stack: dataset -> LDP pipeline -> HDR4ME via recalibrate_estimate.
        let mut rng = StdRng::seed_from_u64(1234);
        let dataset = GaussianDataset::new(3_000, 60).unwrap().generate(&mut rng);
        let config = PipelineConfig::new(0.5, 60, 42);
        let pipeline = MeanEstimationPipeline::new(MechanismKind::Laplace, config).unwrap();
        let estimate = pipeline.run(&dataset).unwrap();
        let naive_mse = estimate.utility().unwrap().mse;

        let result = Hdr4me::l1()
            .recalibrate_estimate(&estimate, pipeline.mechanism(), &dataset)
            .unwrap();
        let enhanced_mse = stats::mse(&result.enhanced_means, &estimate.true_means).unwrap();
        assert!(
            enhanced_mse < naive_mse,
            "enhanced {enhanced_mse} vs naive {naive_mse}"
        );
        assert_eq!(result.enhanced_means.len(), 60);
        assert_eq!(result.weights.len(), 60);
    }

    #[test]
    fn config_constructors() {
        assert_eq!(Hdr4me::l1().config().regularization, Regularization::L1);
        assert_eq!(Hdr4me::l2().config().regularization, Regularization::L2);
        let custom = Hdr4me::new(Hdr4meConfig {
            regularization: Regularization::L1,
            lambda: LambdaSelector::new(2.0, 0.1).unwrap(),
        });
        assert_eq!(custom.config().lambda.supremum_z, 2.0);
    }
}
