//! The regularizer choice of HDR4ME (Section V-A).
//!
//! * **L1** (`R(θ) = ‖θ‖₁`) both sparsifies the estimate (zeroing dimensions
//!   whose aggregate is indistinguishable from noise) and shrinks its scale.
//! * **L2** (`R(θ) = ‖θ‖₂²`) only shrinks the scale.
//!
//! Each choice comes with its own regularization-weight rule (Lemmas 4 and 5)
//! and its own improvement threshold (`|θ̂_j − θ̄_j| > 1` for L1, `> 2` for L2).

use serde::{Deserialize, Serialize};

/// Which regularizer HDR4ME adds to the aggregation loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regularization {
    /// L1 regularization (soft-thresholding solver, Equation 34).
    L1,
    /// L2 regularization (shrinkage solver, Equation 42).
    L2,
}

impl Regularization {
    /// Both regularizers, in a stable order.
    pub const ALL: [Regularization; 2] = [Regularization::L1, Regularization::L2];

    /// The per-dimension deviation threshold above which the paper proves the
    /// re-calibration improves accuracy (Lemma 4 / Lemma 5).
    pub fn improvement_threshold(&self) -> f64 {
        match self {
            Regularization::L1 => 1.0,
            Regularization::L2 => 2.0,
        }
    }

    /// Short lowercase name (used by the experiment harness and result files).
    pub fn name(&self) -> &'static str {
        match self {
            Regularization::L1 => "l1",
            Regularization::L2 => "l2",
        }
    }

    /// Parse a name produced by [`Regularization::name`] (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "l1" | "lasso" => Some(Regularization::L1),
            "l2" | "ridge" => Some(Regularization::L2),
            _ => None,
        }
    }

    /// Evaluate the regularizer value `R(λ ∘ θ)` (diagnostic; the solvers never
    /// need it, but tests and the PGD cross-check do).
    pub fn penalty(&self, weights: &[f64], theta: &[f64]) -> f64 {
        match self {
            Regularization::L1 => weights.iter().zip(theta).map(|(l, t)| (l * t).abs()).sum(),
            Regularization::L2 => weights
                .iter()
                .zip(theta)
                .map(|(l, t)| (l * t) * (l * t))
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_the_lemmas() {
        assert_eq!(Regularization::L1.improvement_threshold(), 1.0);
        assert_eq!(Regularization::L2.improvement_threshold(), 2.0);
    }

    #[test]
    fn names_round_trip() {
        for r in Regularization::ALL {
            assert_eq!(Regularization::parse(r.name()), Some(r));
        }
        assert_eq!(Regularization::parse("LASSO"), Some(Regularization::L1));
        assert_eq!(Regularization::parse("ridge"), Some(Regularization::L2));
        assert_eq!(Regularization::parse("l3"), None);
    }

    #[test]
    fn penalty_values() {
        let w = [1.0, 2.0];
        let t = [0.5, -0.25];
        assert!((Regularization::L1.penalty(&w, &t) - 1.0).abs() < 1e-12);
        assert!((Regularization::L2.penalty(&w, &t) - 0.5).abs() < 1e-12);
        // Zero vector has zero penalty.
        assert_eq!(Regularization::L1.penalty(&w, &[0.0, 0.0]), 0.0);
        assert_eq!(Regularization::L2.penalty(&w, &[0.0, 0.0]), 0.0);
    }
}
