//! The closed-form, one-off HDR4ME solvers.
//!
//! Because the aggregation loss `L(θ) = (1/2r) Σ_i ‖t*_i − θ‖²` has gradient
//! `θ − θ̂` (Equation 25), a single proximal step starting from the naive
//! aggregate lands on the exact minimiser of the regularized objective:
//!
//! * **L1 (Equation 34)** — per-dimension soft-thresholding of `θ̂_j` by `λ*_j`;
//! * **L2 (Equation 42)** — per-dimension shrinkage `θ̂_j / (2λ*_j + 1)`.
//!
//! Both are `O(d)` and require no iteration, which is the paper's selling point:
//! the collector pays essentially nothing to re-calibrate.

use crate::CoreError;

/// Soft-threshold a single value: the scalar solver of Equation 34.
pub fn soft_threshold(theta_hat: f64, lambda: f64) -> f64 {
    if theta_hat > lambda {
        theta_hat - lambda
    } else if theta_hat < -lambda {
        theta_hat + lambda
    } else {
        0.0
    }
}

/// Shrink a single value: the scalar solver of Equation 42.
pub fn l2_shrink(theta_hat: f64, lambda: f64) -> f64 {
    theta_hat / (2.0 * lambda + 1.0)
}

fn check_weights(estimate: &[f64], weights: &[f64]) -> crate::Result<()> {
    if estimate.len() != weights.len() {
        return Err(CoreError::LengthMismatch {
            expected: estimate.len(),
            actual: weights.len(),
        });
    }
    if weights.iter().any(|w| !(w.is_finite() && *w >= 0.0)) {
        return Err(CoreError::InvalidConfig {
            name: "weights",
            reason: "regularization weights must be finite and non-negative".into(),
        });
    }
    Ok(())
}

/// Vectorized L1 solver: element-wise soft-thresholding of the naive estimate.
///
/// # Errors
/// Returns [`CoreError::LengthMismatch`] when the slices differ in length and
/// [`CoreError::InvalidConfig`] when any weight is negative or non-finite.
pub fn solve_l1(estimate: &[f64], weights: &[f64]) -> crate::Result<Vec<f64>> {
    check_weights(estimate, weights)?;
    Ok(estimate
        .iter()
        .zip(weights)
        .map(|(&t, &l)| soft_threshold(t, l))
        .collect())
}

/// Vectorized L2 solver: element-wise shrinkage of the naive estimate.
///
/// # Errors
/// Same conditions as [`solve_l1`].
pub fn solve_l2(estimate: &[f64], weights: &[f64]) -> crate::Result<Vec<f64>> {
    check_weights(estimate, weights)?;
    Ok(estimate
        .iter()
        .zip(weights)
        .map(|(&t, &l)| l2_shrink(t, l))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(2.0, 0.5), 1.5);
        assert_eq!(soft_threshold(-2.0, 0.5), -1.5);
        assert_eq!(soft_threshold(0.3, 0.5), 0.0);
        assert_eq!(soft_threshold(-0.3, 0.5), 0.0);
        assert_eq!(soft_threshold(0.5, 0.5), 0.0);
        assert_eq!(soft_threshold(1.0, 0.0), 1.0);
    }

    #[test]
    fn l2_shrink_cases() {
        assert_eq!(l2_shrink(1.0, 0.0), 1.0);
        assert_eq!(l2_shrink(1.0, 0.5), 0.5);
        assert_eq!(l2_shrink(-3.0, 1.0), -1.0);
        // Huge weights drive the estimate to (nearly) zero — the behaviour the
        // paper observes for L2 at very high dimensionality.
        assert!(l2_shrink(1.0, 1e9).abs() < 1e-8);
    }

    #[test]
    fn vector_solvers_validate_inputs() {
        assert!(solve_l1(&[1.0, 2.0], &[0.1]).is_err());
        assert!(solve_l2(&[1.0], &[0.1, 0.2]).is_err());
        assert!(solve_l1(&[1.0], &[-0.1]).is_err());
        assert!(solve_l2(&[1.0], &[f64::NAN]).is_err());
    }

    #[test]
    fn vector_solvers_apply_elementwise() {
        let estimate = [3.0, -0.2, 0.0, -4.0];
        let weights = [1.0, 1.0, 1.0, 0.5];
        assert_eq!(
            solve_l1(&estimate, &weights).unwrap(),
            vec![2.0, 0.0, 0.0, -3.5]
        );
        let l2 = solve_l2(&estimate, &weights).unwrap();
        assert_eq!(l2, vec![1.0, -0.2 / 3.0, 0.0, -2.0]);
    }

    #[test]
    fn l1_solution_minimizes_the_objective() {
        // The closed form must beat small perturbations of itself on
        // 0.5 (x - theta_hat)^2 + lambda |x|.
        let objective = |x: f64, theta_hat: f64, lambda: f64| {
            0.5 * (x - theta_hat) * (x - theta_hat) + lambda * x.abs()
        };
        for &(theta_hat, lambda) in &[(2.0, 0.7), (-1.5, 0.3), (0.2, 0.5), (0.0, 1.0)] {
            let star = soft_threshold(theta_hat, lambda);
            let best = objective(star, theta_hat, lambda);
            for delta in [-0.1, -0.01, 0.01, 0.1] {
                assert!(
                    best <= objective(star + delta, theta_hat, lambda) + 1e-12,
                    "theta_hat = {theta_hat}, lambda = {lambda}, delta = {delta}"
                );
            }
        }
    }

    #[test]
    fn l2_solution_minimizes_the_objective() {
        // The paper's Equation 42 solver θ* = θ̂/(2λ+1) is the minimiser of
        // 0.5 (x − θ̂)² + λ x² (the L2 penalty with weight λ); verify it beats
        // small perturbations of itself.
        let objective = |x: f64, theta_hat: f64, lambda: f64| {
            0.5 * (x - theta_hat) * (x - theta_hat) + lambda * x * x
        };
        for &(theta_hat, lambda) in &[(2.0, 0.7), (-1.5, 0.3), (0.2, 0.5)] {
            let star = l2_shrink(theta_hat, lambda);
            let best = objective(star, theta_hat, lambda);
            for delta in [-0.1, -0.01, 0.01, 0.1] {
                assert!(
                    best <= objective(star + delta, theta_hat, lambda) + 1e-12,
                    "theta_hat = {theta_hat}, lambda = {lambda}"
                );
            }
        }
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn soft_threshold_shrinks_towards_zero(t in -10.0f64..10.0, l in 0.0f64..5.0) {
                let s = soft_threshold(t, l);
                prop_assert!(s.abs() <= t.abs() + 1e-12);
                // Sign is preserved (or the value becomes zero).
                prop_assert!(s == 0.0 || s.signum() == t.signum());
                // Shrinkage is exactly min(|t|, l).
                prop_assert!((t.abs() - s.abs() - l.min(t.abs())).abs() < 1e-12);
            }

            #[test]
            fn l2_shrink_preserves_sign_and_shrinks(t in -10.0f64..10.0, l in 0.0f64..100.0) {
                let s = l2_shrink(t, l);
                prop_assert!(s.abs() <= t.abs() + 1e-12);
                prop_assert!(s == 0.0 || s.signum() == t.signum());
            }

            #[test]
            fn vector_solvers_match_scalar(
                pair in (1usize..32).prop_flat_map(|len| (
                    proptest::collection::vec(-5.0f64..5.0, len),
                    proptest::collection::vec(0.0f64..3.0, len),
                )),
            ) {
                let (est, w) = pair;
                let l1 = solve_l1(&est, &w).unwrap();
                let l2 = solve_l2(&est, &w).unwrap();
                for i in 0..est.len() {
                    prop_assert_eq!(l1[i], soft_threshold(est[i], w[i]));
                    prop_assert_eq!(l2[i], l2_shrink(est[i], w[i]));
                }
            }
        }
    }
}
