//! Metric bundle instrumenting the HDR4ME re-calibrator.
//!
//! Mirrors the pattern of `hdldp_protocol::telemetry`: the re-calibrator
//! registers its handles once against an [`hdldp_telemetry::Registry`] and
//! records into shared atomic cells. A bundle registered against a disabled
//! registry carries only no-op handles, so an un-instrumented
//! [`crate::Hdr4me`] pays one branch per recording site.
//!
//! Metric names (documented in `docs/OBSERVABILITY.md`):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `recalibrations_total` | counter | completed re-calibrations |
//! | `recalibrate_weights_ns` | histogram | `λ*` weight-selection latency |
//! | `recalibrate_solve_ns` | histogram | closed-form solver latency |

use hdldp_telemetry::{Counter, LatencyHistogram, Registry};

/// Pre-registered handles for the [`crate::Hdr4me`] re-calibrator.
#[derive(Debug, Clone)]
pub struct RecalibrationMetrics {
    /// Completed re-calibrations (`recalibrations_total`).
    pub recalibrations: Counter,
    /// Latency of deriving the `λ*` weights (`recalibrate_weights_ns`).
    pub weights_ns: LatencyHistogram,
    /// Latency of the closed-form solve (`recalibrate_solve_ns`).
    pub solve_ns: LatencyHistogram,
}

impl RecalibrationMetrics {
    /// Register the re-calibrator's metrics in `registry`. Against a disabled
    /// registry every handle is a no-op.
    pub fn register(registry: &Registry) -> Self {
        Self {
            recalibrations: registry.counter("recalibrations_total"),
            weights_ns: registry.histogram("recalibrate_weights_ns"),
            solve_ns: registry.histogram("recalibrate_solve_ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registration_is_inert() {
        let m = RecalibrationMetrics::register(&Registry::disabled());
        assert!(!m.recalibrations.is_enabled());
        assert!(!m.weights_ns.is_enabled());
        assert!(!m.solve_ns.is_enabled());
    }

    #[test]
    fn enabled_registration_shares_the_registry_cells() {
        let registry = Registry::new();
        let a = RecalibrationMetrics::register(&registry);
        let b = RecalibrationMetrics::register(&registry);
        a.recalibrations.inc();
        b.recalibrations.inc();
        assert_eq!(registry.snapshot().counter("recalibrations_total"), Some(2));
    }
}
