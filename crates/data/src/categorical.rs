//! Categorical data and histogram (one-hot) encoding for frequency estimation.
//!
//! Section V-C of the paper extends HDR4ME to frequency estimation: a
//! categorical value in a dimension with `v_j` categories is encoded into a
//! `v_j`-entry vector with a single `1.0` at the category's position, each
//! entry is perturbed with budget `ε/(2m)` (histogram encoding à la Wang et
//! al.), and the per-entry means recovered by the collector are exactly the
//! category frequencies. This module provides the categorical dataset, the
//! encoding, and the ground-truth frequencies to compare against.

use crate::{DataError, Dataset};
use rand::Rng;

/// An `n × d` categorical dataset; column `j` takes values in
/// `0..categories[j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalDataset {
    users: usize,
    categories: Vec<usize>,
    /// Row-major category indices.
    values: Vec<usize>,
}

impl CategoricalDataset {
    /// Build from a row-major buffer of category indices.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] for empty shapes,
    /// [`DataError::LengthMismatch`] when the buffer size is wrong, and
    /// [`DataError::InvalidParameter`] when any value exceeds its column's
    /// category count or a column has fewer than two categories.
    pub fn from_rows(
        users: usize,
        categories: Vec<usize>,
        values: Vec<usize>,
    ) -> crate::Result<Self> {
        if users == 0 || categories.is_empty() {
            return Err(DataError::InvalidShape {
                reason: format!(
                    "require users > 0 and at least one dimension, got {users} x {}",
                    categories.len()
                ),
            });
        }
        if categories.iter().any(|&v| v < 2) {
            return Err(DataError::InvalidParameter {
                name: "categories",
                reason: "every dimension needs at least two categories".into(),
            });
        }
        let dims = categories.len();
        if values.len() != users * dims {
            return Err(DataError::LengthMismatch {
                expected: users * dims,
                actual: values.len(),
            });
        }
        for i in 0..users {
            for (j, &cats) in categories.iter().enumerate() {
                let v = values[i * dims + j];
                if v >= cats {
                    return Err(DataError::InvalidParameter {
                        name: "values",
                        reason: format!("value {v} in column {j} exceeds {cats} categories"),
                    });
                }
            }
        }
        Ok(Self {
            users,
            categories,
            values,
        })
    }

    /// Generate a random categorical dataset where column `j` follows a Zipf-like
    /// skewed distribution over its categories (frequency of category `c`
    /// proportional to `1/(c+1)`), which gives non-trivial frequency vectors.
    ///
    /// # Errors
    /// Same validation as [`CategoricalDataset::from_rows`].
    pub fn generate_zipf<R: Rng + ?Sized>(
        users: usize,
        categories: Vec<usize>,
        rng: &mut R,
    ) -> crate::Result<Self> {
        if users == 0 || categories.is_empty() {
            return Err(DataError::InvalidShape {
                reason: "require users > 0 and at least one dimension".into(),
            });
        }
        let dims = categories.len();
        let mut values = Vec::with_capacity(users * dims);
        // Pre-compute cumulative weights per column.
        let cumulative: Vec<Vec<f64>> = categories
            .iter()
            .map(|&cats| {
                let weights: Vec<f64> = (0..cats).map(|c| 1.0 / (c as f64 + 1.0)).collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                weights
                    .iter()
                    .map(|w| {
                        acc += w / total;
                        acc
                    })
                    .collect()
            })
            .collect();
        for _ in 0..users {
            for cum in &cumulative {
                let u: f64 = rng.gen_range(0.0..1.0);
                let c = cum
                    .iter()
                    .position(|&edge| u <= edge)
                    .unwrap_or(cum.len() - 1);
                values.push(c);
            }
        }
        Self::from_rows(users, categories, values)
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of categorical dimensions.
    pub fn dims(&self) -> usize {
        self.categories.len()
    }

    /// Number of categories in each dimension.
    pub fn categories(&self) -> &[usize] {
        &self.categories
    }

    /// The category of user `i` in dimension `j`.
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] for invalid indices.
    pub fn value(&self, i: usize, j: usize) -> crate::Result<usize> {
        if i >= self.users {
            return Err(DataError::IndexOutOfBounds {
                what: "row",
                index: i,
                len: self.users,
            });
        }
        if j >= self.dims() {
            return Err(DataError::IndexOutOfBounds {
                what: "column",
                index: j,
                len: self.dims(),
            });
        }
        // lint:allow(no-panic-in-lib) i and j are bounds-checked above, so the flat index is < users * dims == values.len()
        Ok(self.values[i * self.dims() + j])
    }

    /// The true frequency vector of dimension `j` (fractions summing to 1).
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] when `j` is invalid.
    pub fn true_frequencies(&self, j: usize) -> crate::Result<Vec<f64>> {
        if j >= self.dims() {
            return Err(DataError::IndexOutOfBounds {
                what: "column",
                index: j,
                len: self.dims(),
            });
        }
        // lint:allow(no-panic-in-lib) j was bounds-checked against dims() == categories.len() above
        let mut counts = vec![0usize; self.categories[j]];
        for row in self.values.chunks(self.dims()) {
            // Stored values are < categories[j] by construction, so the
            // tally slot always exists; get_mut keeps that an invariant
            // rather than a panic site.
            if let Some(&c) = row.get(j) {
                if let Some(slot) = counts.get_mut(c) {
                    *slot += 1;
                }
            }
        }
        Ok(counts
            .iter()
            .map(|&c| c as f64 / self.users as f64)
            .collect())
    }

    /// Histogram-encode dimension `j` into a numeric [`Dataset`] with
    /// `categories[j]` columns of `{0.0, 1.0}` entries (one row per user).
    ///
    /// The column means of the encoded dataset are exactly the true
    /// frequencies, which is what reduces frequency estimation to the paper's
    /// mean-estimation problem.
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] when `j` is invalid.
    pub fn encode_dimension(&self, j: usize) -> crate::Result<Dataset> {
        if j >= self.dims() {
            return Err(DataError::IndexOutOfBounds {
                what: "column",
                index: j,
                len: self.dims(),
            });
        }
        // lint:allow(no-panic-in-lib) j was bounds-checked against dims() == categories.len() above
        let cats = self.categories[j];
        let mut values = vec![0.0; self.users * cats];
        for (row, src) in values.chunks_mut(cats).zip(self.values.chunks(self.dims())) {
            if let Some(&c) = src.get(j) {
                if let Some(slot) = row.get_mut(c) {
                    *slot = 1.0;
                }
            }
        }
        Dataset::from_rows(self.users, cats, values)
    }

    /// Histogram-encode *all* dimensions into one wide numeric dataset with
    /// `Σ_j categories[j]` columns, along with the per-dimension column offsets.
    pub fn encode_all(&self) -> (Dataset, Vec<usize>) {
        let total: usize = self.categories.iter().sum();
        let mut offsets = Vec::with_capacity(self.dims());
        let mut acc = 0usize;
        for &c in &self.categories {
            offsets.push(acc);
            acc += c;
        }
        let mut values = vec![0.0; self.users * total];
        for (row, user_vals) in values
            .chunks_mut(total)
            .zip(self.values.chunks(self.dims()))
        {
            for (&off, &c) in offsets.iter().zip(user_vals) {
                // off + c < off + categories[j] <= total for every stored
                // value, so the one-hot slot always exists.
                if let Some(slot) = row.get_mut(off + c) {
                    *slot = 1.0;
                }
            }
        }
        (
            // lint:allow(no-panic-in-lib) users * total == values.len() by the allocation one loop up, which is exactly the shape from_rows validates
            Dataset::from_rows(self.users, total, values).expect("shape is valid"),
            offsets,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> CategoricalDataset {
        // 4 users, dims with 2 and 3 categories.
        CategoricalDataset::from_rows(4, vec![2, 3], vec![0, 2, 1, 0, 0, 1, 1, 2]).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(CategoricalDataset::from_rows(0, vec![2], vec![]).is_err());
        assert!(CategoricalDataset::from_rows(1, vec![], vec![]).is_err());
        assert!(CategoricalDataset::from_rows(1, vec![1], vec![0]).is_err());
        assert!(CategoricalDataset::from_rows(1, vec![2], vec![5]).is_err());
        assert!(CategoricalDataset::from_rows(2, vec![2], vec![0]).is_err());
        assert!(CategoricalDataset::from_rows(2, vec![2], vec![0, 1]).is_ok());
    }

    #[test]
    fn true_frequencies_sum_to_one() {
        let d = small();
        let f0 = d.true_frequencies(0).unwrap();
        assert_eq!(f0, vec![0.5, 0.5]);
        let f1 = d.true_frequencies(1).unwrap();
        assert_eq!(f1, vec![0.25, 0.25, 0.5]);
        assert!(d.true_frequencies(2).is_err());
    }

    #[test]
    fn encode_dimension_means_equal_frequencies() {
        let d = small();
        let encoded = d.encode_dimension(1).unwrap();
        assert_eq!(encoded.users(), 4);
        assert_eq!(encoded.dims(), 3);
        assert_eq!(encoded.true_means(), d.true_frequencies(1).unwrap());
        // Each row is a valid one-hot vector.
        for i in 0..encoded.users() {
            let row = encoded.row(i).unwrap();
            assert_eq!(row.iter().sum::<f64>(), 1.0);
            assert!(row.iter().all(|&x| x == 0.0 || x == 1.0));
        }
    }

    #[test]
    fn encode_all_concatenates_dimensions() {
        let d = small();
        let (encoded, offsets) = d.encode_all();
        assert_eq!(encoded.dims(), 5);
        assert_eq!(offsets, vec![0, 2]);
        let means = encoded.true_means();
        assert_eq!(&means[0..2], d.true_frequencies(0).unwrap().as_slice());
        assert_eq!(&means[2..5], d.true_frequencies(1).unwrap().as_slice());
    }

    #[test]
    fn zipf_generation_is_skewed_and_valid() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = CategoricalDataset::generate_zipf(20_000, vec![5, 3], &mut rng).unwrap();
        assert_eq!(d.users(), 20_000);
        let f = d.true_frequencies(0).unwrap();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Zipf skew: first category clearly more frequent than the last.
        assert!(f[0] > f[4] * 2.0, "frequencies = {f:?}");
        assert!(CategoricalDataset::generate_zipf(0, vec![2], &mut rng).is_err());
    }

    #[test]
    fn value_accessor_bounds_check() {
        let d = small();
        assert_eq!(d.value(0, 1).unwrap(), 2);
        assert!(d.value(4, 0).is_err());
        assert!(d.value(0, 2).is_err());
    }
}
