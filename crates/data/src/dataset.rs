//! The row-major numeric [`Dataset`] used throughout the workspace.
//!
//! A dataset holds `n` user tuples of `d` numeric dimensions each
//! (Section III of the paper). The collection protocol samples rows from it,
//! the analytical framework reads its per-column value distributions, and the
//! experiment harness compares estimated means against [`Dataset::true_means`].

use crate::discretize::DiscreteValueDistribution;
use crate::DataError;
use hdldp_math::stats;
use rayon::prelude::*;
use std::sync::{Arc, Mutex, PoisonError};

/// Column-block width for the profile kernel. Eight `f64` lanes keep the
/// accumulators in registers (one AVX-512 vector / two AVX2 vectors) while the
/// row-major sweep stays contiguous.
const PROFILE_BLOCK: usize = 8;

/// Element-count threshold below which the profile kernel stays serial: the
/// thread-spawn cost of the rayon shim only amortises on multi-megabyte
/// datasets.
const PARALLEL_PROFILE_ELEMENTS: usize = 1 << 21;

/// An `n × d` numeric dataset stored row-major.
pub struct Dataset {
    users: usize,
    dims: usize,
    /// Row-major values, `users * dims` long.
    values: Vec<f64>,
    /// Lazily computed column profiles (see [`Dataset::column_profiles`]).
    /// Values are immutable after construction, so the memo can never go
    /// stale; clones start with an empty memo.
    profile_memo: Mutex<Option<Arc<ColumnProfiles>>>,
}

impl Clone for Dataset {
    fn clone(&self) -> Self {
        Self {
            users: self.users,
            dims: self.dims,
            values: self.values.clone(),
            profile_memo: Mutex::new(None),
        }
    }
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.users == other.users && self.dims == other.dims && self.values == other.values
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("users", &self.users)
            .field("dims", &self.dims)
            .field("values", &self.values)
            .finish()
    }
}

impl Dataset {
    /// Build a dataset from a row-major buffer.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] for zero rows/columns and
    /// [`DataError::LengthMismatch`] when the buffer does not hold exactly
    /// `users * dims` values.
    pub fn from_rows(users: usize, dims: usize, values: Vec<f64>) -> crate::Result<Self> {
        if users == 0 || dims == 0 {
            return Err(DataError::InvalidShape {
                reason: format!("require users > 0 and dims > 0, got {users} x {dims}"),
            });
        }
        if values.len() != users * dims {
            return Err(DataError::LengthMismatch {
                expected: users * dims,
                actual: values.len(),
            });
        }
        Ok(Self {
            users,
            dims,
            values,
            profile_memo: Mutex::new(None),
        })
    }

    /// Number of users (rows) `n`.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of dimensions (columns) `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The `i`-th user's tuple as a slice of length `d`.
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] when `i >= users`.
    pub fn row(&self, i: usize) -> crate::Result<&[f64]> {
        if i >= self.users {
            return Err(DataError::IndexOutOfBounds {
                what: "row",
                index: i,
                len: self.users,
            });
        }
        Ok(&self.values[i * self.dims..(i + 1) * self.dims])
    }

    /// A single value `t_{ij}`.
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] when either index is invalid.
    pub fn value(&self, i: usize, j: usize) -> crate::Result<f64> {
        if j >= self.dims {
            return Err(DataError::IndexOutOfBounds {
                what: "column",
                index: j,
                len: self.dims,
            });
        }
        Ok(self.row(i)?[j])
    }

    /// Copy of column `j`.
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] when `j >= dims`.
    pub fn column(&self, j: usize) -> crate::Result<Vec<f64>> {
        if j >= self.dims {
            return Err(DataError::IndexOutOfBounds {
                what: "column",
                index: j,
                len: self.dims,
            });
        }
        Ok((0..self.users)
            .map(|i| self.values[i * self.dims + j])
            .collect())
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The true per-dimension means `θ̄` (ground truth for utility metrics).
    pub fn true_means(&self) -> Vec<f64> {
        stats::column_means(&self.values, self.users, self.dims)
            // lint:allow(no-panic-in-lib) values.len() == users * dims is enforced by from_rows, which is exactly what column_means validates
            .expect("shape validated at construction")
    }

    /// Smallest and largest value in each column.
    pub fn column_ranges(&self) -> Vec<(f64, f64)> {
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); self.dims];
        for i in 0..self.users {
            let row = &self.values[i * self.dims..(i + 1) * self.dims];
            for (r, &x) in ranges.iter_mut().zip(row) {
                r.0 = r.0.min(x);
                r.1 = r.1.max(x);
            }
        }
        ranges
    }

    /// `true` when every value lies in `[lo, hi]`.
    pub fn all_within(&self, lo: f64, hi: f64) -> bool {
        self.values.iter().all(|&x| x >= lo && x <= hi)
    }

    /// Build a new dataset keeping only the listed columns (in the given
    /// order, duplicates allowed). Used by the Figure 5 experiment, which
    /// samples/extends the COV-19 columns to reach dimensionalities the raw
    /// dataset does not have.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] when `columns` is empty and
    /// [`DataError::IndexOutOfBounds`] when any index is invalid.
    pub fn select_columns(&self, columns: &[usize]) -> crate::Result<Self> {
        if columns.is_empty() {
            return Err(DataError::InvalidShape {
                reason: "cannot select zero columns".into(),
            });
        }
        for &c in columns {
            if c >= self.dims {
                return Err(DataError::IndexOutOfBounds {
                    what: "column",
                    index: c,
                    len: self.dims,
                });
            }
        }
        let mut values = Vec::with_capacity(self.users * columns.len());
        for row in self.values.chunks(self.dims) {
            // Every entry of `columns` was validated against dims above, so
            // the per-row lookups cannot fail.
            values.extend(columns.iter().filter_map(|&c| row.get(c).copied()));
        }
        Self::from_rows(self.users, columns.len(), values)
    }

    /// Build a new dataset keeping only the first `rows` users.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] when `rows` is zero or exceeds the
    /// number of users.
    pub fn take_users(&self, rows: usize) -> crate::Result<Self> {
        if rows == 0 || rows > self.users {
            return Err(DataError::InvalidShape {
                reason: format!("cannot take {rows} users from a dataset of {}", self.users),
            });
        }
        let taken = self.values.iter().take(rows * self.dims).copied().collect();
        Self::from_rows(rows, self.dims, taken)
    }

    /// Compute per-column bucketing profiles (min, max, per-bucket counts) for
    /// every column in one blocked sweep over the row-major buffer.
    ///
    /// This replaces `dims` strided [`Dataset::column`] gathers with a cache-
    /// friendly pass: columns are processed `PROFILE_BLOCK` at a time with
    /// fixed-size lane accumulators, so each row slice is read contiguously
    /// and the min/max/count updates vectorise. On large datasets the blocks
    /// are distributed across threads via the rayon shim; block results are
    /// stitched back in column order, so the output is identical either way.
    ///
    /// The bucketing matches [`DiscreteValueDistribution::from_column_bucketed`]
    /// bit for bit (same inverse-width index expression, same count → value
    /// construction via [`DiscreteValueDistribution::from_bucket_counts`]).
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] when `buckets == 0`.
    pub fn profile_columns(&self, buckets: usize) -> crate::Result<ColumnProfiles> {
        if buckets == 0 {
            return Err(DataError::InvalidParameter {
                name: "buckets",
                reason: "must be positive".into(),
            });
        }
        let dims = self.dims;
        let mut mins = vec![f64::INFINITY; dims];
        let mut maxs = vec![f64::NEG_INFINITY; dims];
        let mut counts = vec![0u32; dims * buckets];
        let block_count = dims.div_ceil(PROFILE_BLOCK);

        let parallel = self.values.len() >= PARALLEL_PROFILE_ELEMENTS
            && rayon::current_num_threads() > 1
            && block_count > 1;
        let blocks: Vec<ProfileBlock> = if parallel {
            (0..block_count)
                .into_par_iter()
                .map(|b| self.profile_block(b * PROFILE_BLOCK, buckets))
                .collect()
        } else {
            (0..block_count)
                .map(|b| self.profile_block(b * PROFILE_BLOCK, buckets))
                .collect()
        };
        // Stitch block results back in column order. chunks_mut hands each
        // block a destination of exactly `width` lanes (the final chunk is the
        // ragged one), so the copies below are length-matched by construction.
        for ((block, mins_chunk), (maxs_chunk, counts_chunk)) in
            blocks.iter().zip(mins.chunks_mut(PROFILE_BLOCK)).zip(
                maxs.chunks_mut(PROFILE_BLOCK)
                    .zip(counts.chunks_mut(PROFILE_BLOCK * buckets)),
            )
        {
            let w = block.width;
            debug_assert_eq!(w, mins_chunk.len());
            debug_assert_eq!(w * buckets, counts_chunk.len());
            if let Some(src) = block.mins.get(..w) {
                mins_chunk.copy_from_slice(src);
            }
            if let Some(src) = block.maxs.get(..w) {
                maxs_chunk.copy_from_slice(src);
            }
            counts_chunk.copy_from_slice(&block.counts);
        }

        Ok(ColumnProfiles {
            users: self.users,
            dims,
            buckets,
            mins,
            maxs,
            counts,
        })
    }

    /// Profile one block of up to `PROFILE_BLOCK` columns starting at `base`.
    fn profile_block(&self, base: usize, buckets: usize) -> ProfileBlock {
        let dims = self.dims;
        debug_assert!(base < dims, "block base {base} out of {dims} columns");
        debug_assert!(buckets > 0, "bucket count must be positive");
        debug_assert_eq!(self.values.len(), self.users * dims);
        let w = PROFILE_BLOCK.min(dims - base);
        let mut lmin = [f64::INFINITY; PROFILE_BLOCK];
        let mut lmax = [f64::NEG_INFINITY; PROFILE_BLOCK];
        // Pass 1: per-lane min/max over contiguous row slices. Each chunk is a
        // full row of length dims, and base + w <= dims, so the sub-slice is
        // always in range.
        for row in self.values.chunks(dims) {
            let r = &row[base..base + w];
            for (k, &x) in r.iter().enumerate() {
                lmin[k] = lmin[k].min(x);
                lmax[k] = lmax[k].max(x);
            }
        }
        // Pass 2: bucket counts with the hoisted inverse width. The index
        // expression matches `from_column_bucketed` exactly; a degenerate
        // (constant) column gets inv = 0 and its counts are ignored later.
        let mut inv = [0.0f64; PROFILE_BLOCK];
        for k in 0..w {
            inv[k] = if lmax[k] > lmin[k] {
                buckets as f64 / (lmax[k] - lmin[k])
            } else {
                0.0
            };
        }
        let mut counts = vec![0u32; w * buckets];
        for row in self.values.chunks(dims) {
            let r = &row[base..base + w];
            for (k, &x) in r.iter().enumerate() {
                let idx = (((x - lmin[k]) * inv[k]) as usize).min(buckets - 1);
                debug_assert!(idx < buckets);
                // lint:allow(no-panic-in-lib) k < w and idx < buckets (clamped by the min above), so k * buckets + idx < w * buckets == counts.len(); the hot kernel keeps direct indexing
                counts[k * buckets + idx] += 1;
            }
        }
        ProfileBlock {
            width: w,
            mins: lmin,
            maxs: lmax,
            counts,
        }
    }

    /// Memoised [`Dataset::profile_columns`].
    ///
    /// The figure binaries and the framework build the *same* per-column
    /// distributions once per mechanism × ε configuration over an unchanged
    /// dataset; this caches the profile behind an `Arc` so only the first call
    /// pays for the sweep. The memo holds one entry keyed on `buckets`
    /// (callers use a single bucket count per dataset in practice); a call
    /// with a different `buckets` recomputes and replaces it.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] when `buckets == 0`.
    pub fn column_profiles(&self, buckets: usize) -> crate::Result<Arc<ColumnProfiles>> {
        let mut memo = self
            .profile_memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = memo.as_ref() {
            if existing.buckets == buckets {
                return Ok(Arc::clone(existing));
            }
        }
        let profiles = Arc::new(self.profile_columns(buckets)?);
        *memo = Some(Arc::clone(&profiles));
        Ok(profiles)
    }
}

/// One block's worth of profile accumulators (internal to the kernel).
struct ProfileBlock {
    width: usize,
    mins: [f64; PROFILE_BLOCK],
    maxs: [f64; PROFILE_BLOCK],
    counts: Vec<u32>,
}

/// Per-column bucketing statistics for a dataset, computed in one blocked
/// sweep by [`Dataset::profile_columns`].
///
/// Holds, for each of the `dims` columns: the observed `[min, max]` range and
/// the per-bucket occupancy counts (`buckets` equal-width bins over that
/// range). [`ColumnProfiles::distribution`] materializes the same
/// [`DiscreteValueDistribution`] that bucketing the gathered column would
/// produce, without re-reading the dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfiles {
    users: usize,
    dims: usize,
    buckets: usize,
    mins: Vec<f64>,
    maxs: Vec<f64>,
    counts: Vec<u32>,
}

impl ColumnProfiles {
    /// Number of users the profile was computed over.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of profiled columns.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of equal-width buckets per column.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Observed `(min, max)` of column `j`.
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] when `j >= dims`.
    pub fn range(&self, j: usize) -> crate::Result<(f64, f64)> {
        match (self.mins.get(j), self.maxs.get(j)) {
            (Some(&lo), Some(&hi)) => Ok((lo, hi)),
            _ => Err(DataError::IndexOutOfBounds {
                what: "column",
                index: j,
                len: self.dims,
            }),
        }
    }

    /// The bucketed value distribution of column `j`, identical to
    /// `DiscreteValueDistribution::from_column_bucketed(&dataset.column(j), buckets)`.
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] when `j >= dims` and propagates
    /// distribution validation errors.
    pub fn distribution(&self, j: usize) -> crate::Result<DiscreteValueDistribution> {
        let (lo, hi) = self.range(j)?;
        let counts = self
            .counts
            .get(j * self.buckets..(j + 1) * self.buckets)
            .ok_or(DataError::IndexOutOfBounds {
                what: "column",
                index: j,
                len: self.dims,
            })?;
        DiscreteValueDistribution::from_bucket_counts(lo, hi, counts, self.users)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        // 3 users x 2 dims.
        Dataset::from_rows(3, 2, vec![0.0, 1.0, 0.5, -1.0, -0.5, 0.0]).unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        assert!(Dataset::from_rows(0, 2, vec![]).is_err());
        assert!(Dataset::from_rows(2, 0, vec![]).is_err());
        assert!(Dataset::from_rows(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Dataset::from_rows(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn accessors_return_expected_values() {
        let d = small();
        assert_eq!(d.users(), 3);
        assert_eq!(d.dims(), 2);
        assert_eq!(d.row(1).unwrap(), &[0.5, -1.0]);
        assert_eq!(d.value(2, 1).unwrap(), 0.0);
        assert_eq!(d.column(0).unwrap(), vec![0.0, 0.5, -0.5]);
        assert!(d.row(3).is_err());
        assert!(d.value(0, 2).is_err());
        assert!(d.column(5).is_err());
    }

    #[test]
    fn true_means_are_column_averages() {
        let d = small();
        let means = d.true_means();
        assert!((means[0] - 0.0).abs() < 1e-12);
        assert!((means[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn column_ranges_and_bounds() {
        let d = small();
        let ranges = d.column_ranges();
        assert_eq!(ranges[0], (-0.5, 0.5));
        assert_eq!(ranges[1], (-1.0, 1.0));
        assert!(d.all_within(-1.0, 1.0));
        assert!(!d.all_within(0.0, 1.0));
    }

    #[test]
    fn select_columns_reorders_and_duplicates() {
        let d = small();
        let sel = d.select_columns(&[1, 1, 0]).unwrap();
        assert_eq!(sel.dims(), 3);
        assert_eq!(sel.row(0).unwrap(), &[1.0, 1.0, 0.0]);
        assert!(d.select_columns(&[]).is_err());
        assert!(d.select_columns(&[2]).is_err());
    }

    #[test]
    fn profiles_match_per_column_bucketing_exactly() {
        // Deterministic pseudo-random data, including a constant column and a
        // column whose range is degenerate apart from sign (-0.0 vs 0.0).
        let users = 97;
        let dims = 13;
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut values: Vec<f64> = (0..users * dims)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        for i in 0..users {
            values[i * dims + 4] = 0.25; // constant column
        }
        let d = Dataset::from_rows(users, dims, values).unwrap();
        for buckets in [1usize, 7, 64] {
            let profiles = d.profile_columns(buckets).unwrap();
            assert_eq!(profiles.dims(), dims);
            assert_eq!(profiles.buckets(), buckets);
            assert_eq!(profiles.users(), users);
            for j in 0..dims {
                let column = d.column(j).unwrap();
                let reference =
                    DiscreteValueDistribution::from_column_bucketed(&column, buckets).unwrap();
                let fast = profiles.distribution(j).unwrap();
                assert_eq!(fast, reference, "buckets {buckets}, column {j}");
                let lo = column.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = column.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(profiles.range(j).unwrap(), (lo, hi));
            }
            assert!(profiles.distribution(dims).is_err());
            assert!(profiles.range(dims).is_err());
        }
        assert!(d.profile_columns(0).is_err());
    }

    #[test]
    fn column_profiles_memoises_per_bucket_count() {
        let d = small();
        let first = d.column_profiles(8).unwrap();
        let second = d.column_profiles(8).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        // A different bucket count replaces the memo entry.
        let other = d.column_profiles(4).unwrap();
        assert_eq!(other.buckets(), 4);
        assert!(!Arc::ptr_eq(&first, &d.column_profiles(4).unwrap()));
        // Clones do not share the memo but compute equal profiles.
        let clone = d.clone();
        let cloned_profiles = clone.column_profiles(8).unwrap();
        assert!(!Arc::ptr_eq(&first, &cloned_profiles));
        assert_eq!(*first, *cloned_profiles);
        assert!(d.column_profiles(0).is_err());
    }

    #[test]
    fn equality_ignores_the_profile_memo() {
        let a = small();
        let b = small();
        a.column_profiles(8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn take_users_truncates() {
        let d = small();
        let t = d.take_users(2).unwrap();
        assert_eq!(t.users(), 2);
        assert_eq!(t.row(1).unwrap(), &[0.5, -1.0]);
        assert!(d.take_users(0).is_err());
        assert!(d.take_users(4).is_err());
    }
}
