//! The row-major numeric [`Dataset`] used throughout the workspace.
//!
//! A dataset holds `n` user tuples of `d` numeric dimensions each
//! (Section III of the paper). The collection protocol samples rows from it,
//! the analytical framework reads its per-column value distributions, and the
//! experiment harness compares estimated means against [`Dataset::true_means`].

use crate::DataError;
use hdldp_math::stats;

/// An `n × d` numeric dataset stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    users: usize,
    dims: usize,
    /// Row-major values, `users * dims` long.
    values: Vec<f64>,
}

impl Dataset {
    /// Build a dataset from a row-major buffer.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] for zero rows/columns and
    /// [`DataError::LengthMismatch`] when the buffer does not hold exactly
    /// `users * dims` values.
    pub fn from_rows(users: usize, dims: usize, values: Vec<f64>) -> crate::Result<Self> {
        if users == 0 || dims == 0 {
            return Err(DataError::InvalidShape {
                reason: format!("require users > 0 and dims > 0, got {users} x {dims}"),
            });
        }
        if values.len() != users * dims {
            return Err(DataError::LengthMismatch {
                expected: users * dims,
                actual: values.len(),
            });
        }
        Ok(Self {
            users,
            dims,
            values,
        })
    }

    /// Number of users (rows) `n`.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of dimensions (columns) `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The `i`-th user's tuple as a slice of length `d`.
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] when `i >= users`.
    pub fn row(&self, i: usize) -> crate::Result<&[f64]> {
        if i >= self.users {
            return Err(DataError::IndexOutOfBounds {
                what: "row",
                index: i,
                len: self.users,
            });
        }
        Ok(&self.values[i * self.dims..(i + 1) * self.dims])
    }

    /// A single value `t_{ij}`.
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] when either index is invalid.
    pub fn value(&self, i: usize, j: usize) -> crate::Result<f64> {
        if j >= self.dims {
            return Err(DataError::IndexOutOfBounds {
                what: "column",
                index: j,
                len: self.dims,
            });
        }
        Ok(self.row(i)?[j])
    }

    /// Copy of column `j`.
    ///
    /// # Errors
    /// Returns [`DataError::IndexOutOfBounds`] when `j >= dims`.
    pub fn column(&self, j: usize) -> crate::Result<Vec<f64>> {
        if j >= self.dims {
            return Err(DataError::IndexOutOfBounds {
                what: "column",
                index: j,
                len: self.dims,
            });
        }
        Ok((0..self.users)
            .map(|i| self.values[i * self.dims + j])
            .collect())
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The true per-dimension means `θ̄` (ground truth for utility metrics).
    pub fn true_means(&self) -> Vec<f64> {
        stats::column_means(&self.values, self.users, self.dims)
            .expect("shape validated at construction")
    }

    /// Smallest and largest value in each column.
    pub fn column_ranges(&self) -> Vec<(f64, f64)> {
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); self.dims];
        for i in 0..self.users {
            let row = &self.values[i * self.dims..(i + 1) * self.dims];
            for (r, &x) in ranges.iter_mut().zip(row) {
                r.0 = r.0.min(x);
                r.1 = r.1.max(x);
            }
        }
        ranges
    }

    /// `true` when every value lies in `[lo, hi]`.
    pub fn all_within(&self, lo: f64, hi: f64) -> bool {
        self.values.iter().all(|&x| x >= lo && x <= hi)
    }

    /// Build a new dataset keeping only the listed columns (in the given
    /// order, duplicates allowed). Used by the Figure 5 experiment, which
    /// samples/extends the COV-19 columns to reach dimensionalities the raw
    /// dataset does not have.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] when `columns` is empty and
    /// [`DataError::IndexOutOfBounds`] when any index is invalid.
    pub fn select_columns(&self, columns: &[usize]) -> crate::Result<Self> {
        if columns.is_empty() {
            return Err(DataError::InvalidShape {
                reason: "cannot select zero columns".into(),
            });
        }
        for &c in columns {
            if c >= self.dims {
                return Err(DataError::IndexOutOfBounds {
                    what: "column",
                    index: c,
                    len: self.dims,
                });
            }
        }
        let mut values = Vec::with_capacity(self.users * columns.len());
        for i in 0..self.users {
            let row = &self.values[i * self.dims..(i + 1) * self.dims];
            for &c in columns {
                values.push(row[c]);
            }
        }
        Self::from_rows(self.users, columns.len(), values)
    }

    /// Build a new dataset keeping only the first `rows` users.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] when `rows` is zero or exceeds the
    /// number of users.
    pub fn take_users(&self, rows: usize) -> crate::Result<Self> {
        if rows == 0 || rows > self.users {
            return Err(DataError::InvalidShape {
                reason: format!("cannot take {rows} users from a dataset of {}", self.users),
            });
        }
        Self::from_rows(rows, self.dims, self.values[..rows * self.dims].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        // 3 users x 2 dims.
        Dataset::from_rows(3, 2, vec![0.0, 1.0, 0.5, -1.0, -0.5, 0.0]).unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        assert!(Dataset::from_rows(0, 2, vec![]).is_err());
        assert!(Dataset::from_rows(2, 0, vec![]).is_err());
        assert!(Dataset::from_rows(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Dataset::from_rows(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn accessors_return_expected_values() {
        let d = small();
        assert_eq!(d.users(), 3);
        assert_eq!(d.dims(), 2);
        assert_eq!(d.row(1).unwrap(), &[0.5, -1.0]);
        assert_eq!(d.value(2, 1).unwrap(), 0.0);
        assert_eq!(d.column(0).unwrap(), vec![0.0, 0.5, -0.5]);
        assert!(d.row(3).is_err());
        assert!(d.value(0, 2).is_err());
        assert!(d.column(5).is_err());
    }

    #[test]
    fn true_means_are_column_averages() {
        let d = small();
        let means = d.true_means();
        assert!((means[0] - 0.0).abs() < 1e-12);
        assert!((means[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn column_ranges_and_bounds() {
        let d = small();
        let ranges = d.column_ranges();
        assert_eq!(ranges[0], (-0.5, 0.5));
        assert_eq!(ranges[1], (-1.0, 1.0));
        assert!(d.all_within(-1.0, 1.0));
        assert!(!d.all_within(0.0, 1.0));
    }

    #[test]
    fn select_columns_reorders_and_duplicates() {
        let d = small();
        let sel = d.select_columns(&[1, 1, 0]).unwrap();
        assert_eq!(sel.dims(), 3);
        assert_eq!(sel.row(0).unwrap(), &[1.0, 1.0, 0.0]);
        assert!(d.select_columns(&[]).is_err());
        assert!(d.select_columns(&[2]).is_err());
    }

    #[test]
    fn take_users_truncates() {
        let d = small();
        let t = d.take_users(2).unwrap();
        assert_eq!(t.users(), 2);
        assert_eq!(t.row(1).unwrap(), &[0.5, -1.0]);
        assert!(d.take_users(0).is_err());
        assert!(d.take_users(4).is_err());
    }
}
