//! Discrete value distributions per dimension.
//!
//! The analytical framework's Lemma 3 needs, for every *bounded* mechanism,
//! the set of distinct original values `{v_z}` and their probabilities
//! `{p_z}` in each dimension: the variance and bias of the deviation are the
//! `p_z`-weighted expectations of the mechanism's per-value moments. The case
//! study of Section IV-C uses exactly such a discretized distribution
//! (ten values `0.1 … 1.0`, each with probability 10%).
//!
//! [`DiscreteValueDistribution`] represents one dimension's distribution, built
//! either explicitly, from a data column (exact distinct values), or by
//! bucketing a continuous column into a fixed number of representative values
//! ("discretize with sampling", as the paper puts it).

use crate::DataError;

/// A discrete distribution over the distinct original values of one dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteValueDistribution {
    values: Vec<f64>,
    probabilities: Vec<f64>,
}

impl DiscreteValueDistribution {
    /// Build from explicit values and probabilities.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] when the slices are empty or of
    /// different lengths, and [`DataError::InvalidParameter`] when any
    /// probability is negative/NaN or the probabilities do not sum to 1
    /// (within `1e-9`).
    pub fn new(values: Vec<f64>, probabilities: Vec<f64>) -> crate::Result<Self> {
        if values.is_empty() || values.len() != probabilities.len() {
            return Err(DataError::InvalidShape {
                reason: format!(
                    "need equal, non-zero numbers of values and probabilities, got {} and {}",
                    values.len(),
                    probabilities.len()
                ),
            });
        }
        if probabilities.iter().any(|p| !(p.is_finite() && *p >= 0.0)) {
            return Err(DataError::InvalidParameter {
                name: "probabilities",
                reason: "probabilities must be finite and non-negative".into(),
            });
        }
        let total: f64 = probabilities.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(DataError::InvalidParameter {
                name: "probabilities",
                reason: format!("probabilities must sum to 1, got {total}"),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(DataError::InvalidParameter {
                name: "values",
                reason: "values must be finite".into(),
            });
        }
        Ok(Self {
            values,
            probabilities,
        })
    }

    /// Uniform distribution over the given values.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] when `values` is empty.
    pub fn uniform_over(values: Vec<f64>) -> crate::Result<Self> {
        if values.is_empty() {
            return Err(DataError::InvalidShape {
                reason: "cannot build a distribution over zero values".into(),
            });
        }
        let p = 1.0 / values.len() as f64;
        let probabilities = vec![p; values.len()];
        Self::new(values, probabilities)
    }

    /// The distribution used by the paper's Section IV-C case study:
    /// values `0.1, 0.2, …, 1.0`, each with probability 10%.
    pub fn case_study() -> Self {
        let values: Vec<f64> = (1..=10).map(|k| k as f64 / 10.0).collect();
        // lint:allow(no-panic-in-lib) uniform_over only rejects empty inputs and this literal has ten values
        Self::uniform_over(values).expect("static construction is valid")
    }

    /// Build the exact empirical distribution of a data column.
    ///
    /// Values are matched exactly after rounding to 12 decimal digits (to fold
    /// floating-point noise); use [`DiscreteValueDistribution::from_column_bucketed`]
    /// for continuous data.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] when the column is empty.
    pub fn from_column_exact(column: &[f64]) -> crate::Result<Self> {
        if column.is_empty() {
            return Err(DataError::InvalidShape {
                reason: "empty column".into(),
            });
        }
        let mut counts: std::collections::BTreeMap<i64, (f64, usize)> =
            std::collections::BTreeMap::new();
        for &x in column {
            // Key on a fixed-point representation to merge float noise.
            let key = (x * 1e12).round() as i64;
            let entry = counts.entry(key).or_insert((x, 0));
            entry.1 += 1;
        }
        let n = column.len() as f64;
        let (values, probabilities): (Vec<f64>, Vec<f64>) =
            counts.values().map(|&(v, c)| (v, c as f64 / n)).unzip();
        // Renormalize to absorb the tiny rounding drift of the division.
        let total: f64 = probabilities.iter().sum();
        let probabilities = probabilities.iter().map(|p| p / total).collect();
        Self::new(values, probabilities)
    }

    /// Bucket a continuous column into `buckets` equal-width bins over its
    /// observed range, using each bin's midpoint as the representative value.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] for an empty column and
    /// [`DataError::InvalidParameter`] when `buckets == 0`.
    pub fn from_column_bucketed(column: &[f64], buckets: usize) -> crate::Result<Self> {
        if column.is_empty() {
            return Err(DataError::InvalidShape {
                reason: "empty column".into(),
            });
        }
        if buckets == 0 {
            return Err(DataError::InvalidParameter {
                name: "buckets",
                reason: "must be positive".into(),
            });
        }
        let lo = column.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = column.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if hi <= lo {
            // A constant column collapses to a single value.
            return Self::new(vec![lo], vec![1.0]);
        }
        // Multiply by the inverse bucket width rather than dividing: one fma
        // per element instead of a division, and the exact same expression the
        // blocked columnar kernel uses, so both paths bucket identically.
        let inv = buckets as f64 / (hi - lo);
        let mut counts = vec![0u32; buckets];
        for &x in column {
            let idx = (((x - lo) * inv) as usize).min(buckets - 1);
            if let Some(slot) = counts.get_mut(idx) {
                *slot += 1;
            }
        }
        Self::from_bucket_counts(lo, hi, &counts, column.len())
    }

    /// Build the bucketed distribution from precomputed per-bucket counts over
    /// the observed range `[lo, hi]`.
    ///
    /// This is the shared back half of [`DiscreteValueDistribution::from_column_bucketed`];
    /// the dataset's blocked column-profile kernel produces the counts in a
    /// single contiguous sweep and then materializes distributions through this
    /// constructor, so the two paths are bit-identical by construction.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] when `counts` is empty or `n == 0`,
    /// and propagates [`DiscreteValueDistribution::new`] validation.
    pub fn from_bucket_counts(lo: f64, hi: f64, counts: &[u32], n: usize) -> crate::Result<Self> {
        if counts.is_empty() || n == 0 {
            return Err(DataError::InvalidShape {
                reason: "need at least one bucket and one observation".into(),
            });
        }
        if hi <= lo {
            // A constant column collapses to a single value.
            return Self::new(vec![lo], vec![1.0]);
        }
        let buckets = counts.len();
        let width = (hi - lo) / buckets as f64;
        let n = n as f64;
        let mut values = Vec::new();
        let mut probabilities = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                values.push(lo + (i as f64 + 0.5) * width);
                probabilities.push(c as f64 / n);
            }
        }
        let total: f64 = probabilities.iter().sum();
        let probabilities = probabilities.iter().map(|p| p / total).collect();
        Self::new(values, probabilities)
    }

    /// The distinct values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Their probabilities (same order as [`DiscreteValueDistribution::values`]).
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Number of distinct values `v_j`.
    pub fn support_size(&self) -> usize {
        self.values.len()
    }

    /// The distribution mean `Σ p_z v_z`.
    pub fn mean(&self) -> f64 {
        self.values
            .iter()
            .zip(&self.probabilities)
            .map(|(v, p)| v * p)
            .sum()
    }

    /// Expectation of an arbitrary per-value function, `Σ p_z f(v_z)`.
    ///
    /// This is the workhorse of Lemma 3: the framework calls it with the
    /// mechanism's `bias` and `variance` closures.
    pub fn expectation<F: Fn(f64) -> f64>(&self, f: F) -> f64 {
        self.values
            .iter()
            .zip(&self.probabilities)
            .map(|(&v, &p)| p * f(v))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_inputs() {
        assert!(DiscreteValueDistribution::new(vec![], vec![]).is_err());
        assert!(DiscreteValueDistribution::new(vec![1.0], vec![0.5, 0.5]).is_err());
        assert!(DiscreteValueDistribution::new(vec![1.0, 2.0], vec![0.5, 0.6]).is_err());
        assert!(DiscreteValueDistribution::new(vec![1.0, 2.0], vec![-0.5, 1.5]).is_err());
        assert!(DiscreteValueDistribution::new(vec![f64::NAN], vec![1.0]).is_err());
        assert!(DiscreteValueDistribution::new(vec![1.0, 2.0], vec![0.3, 0.7]).is_ok());
    }

    #[test]
    fn case_study_distribution_matches_paper() {
        let d = DiscreteValueDistribution::case_study();
        assert_eq!(d.support_size(), 10);
        assert!((d.mean() - 0.55).abs() < 1e-12);
        assert!(d.probabilities().iter().all(|&p| (p - 0.1).abs() < 1e-12));
        assert!((d.values()[0] - 0.1).abs() < 1e-12);
        assert!((d.values()[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_column_distribution_counts_duplicates() {
        let col = [0.5, 0.5, -0.5, 1.0];
        let d = DiscreteValueDistribution::from_column_exact(&col).unwrap();
        assert_eq!(d.support_size(), 3);
        // Probabilities: -0.5 -> 0.25, 0.5 -> 0.5, 1.0 -> 0.25 (sorted by value).
        assert_eq!(d.values(), &[-0.5, 0.5, 1.0]);
        assert_eq!(d.probabilities(), &[0.25, 0.5, 0.25]);
        assert!((d.mean() - 0.375).abs() < 1e-12);
        assert!(DiscreteValueDistribution::from_column_exact(&[]).is_err());
    }

    #[test]
    fn bucketed_distribution_approximates_mean() {
        let col: Vec<f64> = (0..1000).map(|i| -1.0 + 2.0 * i as f64 / 999.0).collect();
        let d = DiscreteValueDistribution::from_column_bucketed(&col, 20).unwrap();
        assert!(d.support_size() <= 20);
        assert!(d.mean().abs() < 0.01);
        assert!(DiscreteValueDistribution::from_column_bucketed(&col, 0).is_err());
    }

    #[test]
    fn bucketed_constant_column_is_single_value() {
        let d = DiscreteValueDistribution::from_column_bucketed(&[0.3; 50], 10).unwrap();
        assert_eq!(d.support_size(), 1);
        assert_eq!(d.values()[0], 0.3);
        assert_eq!(d.probabilities()[0], 1.0);
    }

    #[test]
    fn from_bucket_counts_matches_from_column_bucketed() {
        let col: Vec<f64> = (0..500).map(|i| (i as f64 * 0.7).sin()).collect();
        let buckets = 16;
        let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let inv = buckets as f64 / (hi - lo);
        let mut counts = vec![0u32; buckets];
        for &x in &col {
            counts[(((x - lo) * inv) as usize).min(buckets - 1)] += 1;
        }
        let from_counts =
            DiscreteValueDistribution::from_bucket_counts(lo, hi, &counts, col.len()).unwrap();
        let from_column = DiscreteValueDistribution::from_column_bucketed(&col, buckets).unwrap();
        assert_eq!(from_counts, from_column);
        assert!(DiscreteValueDistribution::from_bucket_counts(0.0, 1.0, &[], 5).is_err());
        assert!(DiscreteValueDistribution::from_bucket_counts(0.0, 1.0, &[5], 0).is_err());
    }

    #[test]
    fn from_bucket_counts_constant_column_is_single_value() {
        let d = DiscreteValueDistribution::from_bucket_counts(0.3, 0.3, &[50, 0], 50).unwrap();
        assert_eq!(d.support_size(), 1);
        assert_eq!(d.values()[0], 0.3);
    }

    #[test]
    fn expectation_weights_by_probability() {
        let d = DiscreteValueDistribution::new(vec![0.0, 1.0], vec![0.25, 0.75]).unwrap();
        assert!((d.expectation(|v| v * v) - 0.75).abs() < 1e-12);
        assert!((d.expectation(|_| 1.0) - 1.0).abs() < 1e-12);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn exact_distribution_is_normalized(
                col in proptest::collection::vec(-1.0f64..1.0, 1..200),
            ) {
                let d = DiscreteValueDistribution::from_column_exact(&col).unwrap();
                let total: f64 = d.probabilities().iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                // Mean of the distribution equals the column mean.
                let col_mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
                prop_assert!((d.mean() - col_mean).abs() < 1e-9);
            }

            #[test]
            fn bucketed_mean_close_to_column_mean(
                col in proptest::collection::vec(-1.0f64..1.0, 10..300),
                buckets in 5usize..100,
            ) {
                let d = DiscreteValueDistribution::from_column_bucketed(&col, buckets).unwrap();
                let col_mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
                // Bucketing error is at most half a bucket width (range <= 2).
                let max_err = 1.0 / buckets as f64 + 1e-9;
                prop_assert!((d.mean() - col_mean).abs() <= max_err);
            }
        }
    }
}
