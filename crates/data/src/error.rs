//! Error type for dataset construction and manipulation.

use std::fmt;

/// Errors raised by dataset builders and encoders.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A shape parameter (rows/columns/categories) was zero or inconsistent.
    InvalidShape {
        /// Description of the inconsistency.
        reason: String,
    },
    /// The provided raw buffer does not match the declared shape.
    LengthMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A parameter is outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// An index (row, column or category) is out of bounds.
    IndexOutOfBounds {
        /// What was being indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The number of valid entries.
        len: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidShape { reason } => write!(f, "invalid dataset shape: {reason}"),
            DataError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match expected {expected}"
                )
            }
            DataError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DataError::IndexOutOfBounds { what, index, len } => {
                write!(f, "{what} index {index} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::InvalidShape {
            reason: "zero rows".into(),
        };
        assert!(e.to_string().contains("zero rows"));
        let e = DataError::LengthMismatch {
            expected: 10,
            actual: 5,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('5'));
        let e = DataError::IndexOutOfBounds {
            what: "column",
            index: 7,
            len: 3,
        };
        assert!(e.to_string().contains("column"));
    }
}
