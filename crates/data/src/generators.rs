//! Synthetic dataset generators matching Section VI of the paper.
//!
//! | Generator | Paper dataset | Parameters from the paper |
//! |---|---|---|
//! | [`GaussianDataset`] | "Gaussian" | tunable `n`, `d`; σ = 1/16; 10% of dimensions have mean 0.9, the rest mean 0 |
//! | [`PoissonDataset`] | "Poisson" | 150,000 × 300; per-dimension rate drawn uniformly from `[1, 99]` |
//! | [`UniformDataset`] | "Uniform" | tunable `n`, `d`; i.i.d. uniform |
//! | [`CorrelatedDataset`] | "COV-19" (synthetic stand-in) | 150,000 × 750; low-rank latent-factor model so that "each dimension has high correlations with others" |
//!
//! Every generator produces a [`Dataset`] whose values already lie in
//! `[-1, 1]`; the Poisson and correlated generators normalize internally.

use crate::normalize::normalize_symmetric;
use crate::{DataError, Dataset};
use hdldp_math::Normal;
use rand::Rng;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

/// Identifier for the datasets of the paper's evaluation, used by the
/// experiment harness to select workloads from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// The tunable Gaussian dataset.
    Gaussian,
    /// The Poisson dataset.
    Poisson,
    /// The tunable Uniform dataset.
    Uniform,
    /// The synthetic correlated stand-in for COV-19.
    Covid,
}

impl DatasetKind {
    /// All dataset kinds in a stable order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Gaussian,
        DatasetKind::Poisson,
        DatasetKind::Uniform,
        DatasetKind::Covid,
    ];

    /// Short lowercase name (stable; used for CLI flags and result files).
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Gaussian => "gaussian",
            DatasetKind::Poisson => "poisson",
            DatasetKind::Uniform => "uniform",
            DatasetKind::Covid => "covid",
        }
    }

    /// Parse a dataset name (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "gaussian" | "gauss" => Some(DatasetKind::Gaussian),
            "poisson" => Some(DatasetKind::Poisson),
            "uniform" => Some(DatasetKind::Uniform),
            "covid" | "cov19" | "cov-19" | "correlated" => Some(DatasetKind::Covid),
            _ => None,
        }
    }
}

fn check_shape(users: usize, dims: usize) -> crate::Result<()> {
    if users == 0 || dims == 0 {
        return Err(DataError::InvalidShape {
            reason: format!("require users > 0 and dims > 0, got {users} x {dims}"),
        });
    }
    Ok(())
}

/// The paper's Gaussian dataset: σ = 1/16, 10% of dimensions with mean 0.9 and
/// the rest with mean 0.
#[derive(Debug, Clone)]
pub struct GaussianDataset {
    users: usize,
    dims: usize,
    std_dev: f64,
    high_mean: f64,
    high_fraction: f64,
}

impl GaussianDataset {
    /// Create a generator with the paper's default parameters.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] for a zero-sized shape.
    pub fn new(users: usize, dims: usize) -> crate::Result<Self> {
        check_shape(users, dims)?;
        Ok(Self {
            users,
            dims,
            std_dev: 1.0 / 16.0,
            high_mean: 0.9,
            high_fraction: 0.1,
        })
    }

    /// Override the standard deviation (paper default 1/16).
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] when `std_dev` is not positive.
    pub fn with_std_dev(mut self, std_dev: f64) -> crate::Result<Self> {
        if !(std_dev.is_finite() && std_dev > 0.0) {
            return Err(DataError::InvalidParameter {
                name: "std_dev",
                reason: format!("must be positive, got {std_dev}"),
            });
        }
        self.std_dev = std_dev;
        Ok(self)
    }

    /// The per-dimension means this generator uses (first 10% of the
    /// dimensions get the high mean).
    pub fn dimension_means(&self) -> Vec<f64> {
        let high = (self.dims as f64 * self.high_fraction).round() as usize;
        (0..self.dims)
            .map(|j| if j < high { self.high_mean } else { 0.0 })
            .collect()
    }

    /// Generate the dataset; values are clamped into `[-1, 1]`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let means = self.dimension_means();
        // lint:allow(no-panic-in-lib) std_dev was validated positive and finite by with_std_dev/new
        let noise = Normal::new(0.0, self.std_dev).expect("validated std dev");
        let mut values = Vec::with_capacity(self.users * self.dims);
        for _ in 0..self.users {
            for &mu in &means {
                values.push((mu + noise.sample(rng)).clamp(-1.0, 1.0));
            }
        }
        // lint:allow(no-panic-in-lib) the loops above push exactly users * dims values
        Dataset::from_rows(self.users, self.dims, values).expect("shape is valid")
    }
}

/// The paper's Poisson dataset: each dimension follows a Poisson distribution
/// with a random rate in `[1, 99]`, normalized into `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct PoissonDataset {
    users: usize,
    dims: usize,
    rate_range: (f64, f64),
}

impl PoissonDataset {
    /// Create a generator with the paper's default rate range `[1, 99]`.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] for a zero-sized shape.
    pub fn new(users: usize, dims: usize) -> crate::Result<Self> {
        check_shape(users, dims)?;
        Ok(Self {
            users,
            dims,
            rate_range: (1.0, 99.0),
        })
    }

    /// Generate the dataset (normalized column-wise into `[-1, 1]`).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let rates: Vec<f64> = (0..self.dims)
            .map(|_| rng.gen_range(self.rate_range.0..=self.rate_range.1))
            .collect();
        let samplers: Vec<Poisson<f64>> = rates
            .iter()
            // lint:allow(no-panic-in-lib) rates are drawn from rate_range = [1, 99], which Poisson::new accepts
            .map(|&r| Poisson::new(r).expect("rates are positive"))
            .collect();
        let mut values = Vec::with_capacity(self.users * self.dims);
        for _ in 0..self.users {
            for sampler in &samplers {
                values.push(sampler.sample(rng));
            }
        }
        // lint:allow(no-panic-in-lib) the loops above push exactly users * dims values
        let raw = Dataset::from_rows(self.users, self.dims, values).expect("shape is valid");
        // lint:allow(no-panic-in-lib) normalize_symmetric only rejects invalid target intervals and [-1, 1] is fixed here
        let (normalized, _) = normalize_symmetric(&raw).expect("valid target interval");
        normalized
    }
}

/// The paper's Uniform dataset: i.i.d. uniform values in `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct UniformDataset {
    users: usize,
    dims: usize,
}

impl UniformDataset {
    /// Create a generator.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] for a zero-sized shape.
    pub fn new(users: usize, dims: usize) -> crate::Result<Self> {
        check_shape(users, dims)?;
        Ok(Self { users, dims })
    }

    /// Generate the dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let values: Vec<f64> = (0..self.users * self.dims)
            .map(|_| rng.gen_range(-1.0..=1.0))
            .collect();
        // lint:allow(no-panic-in-lib) the iterator above yields exactly users * dims values
        Dataset::from_rows(self.users, self.dims, values).expect("shape is valid")
    }

    /// Generate a *discretized* uniform dataset whose values are drawn from
    /// the paper's case-study support `{0.1, 0.2, …, 1.0}` with equal
    /// probability (used by Figure 3).
    pub fn generate_case_study<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let support: Vec<f64> = (1..=10).map(|k| k as f64 / 10.0).collect();
        let values: Vec<f64> = (0..self.users * self.dims)
            // gen_range(0..len) is always a valid index; the fallback keeps
            // the closure total without a panic path.
            .map(|_| {
                support
                    .get(rng.gen_range(0..support.len()))
                    .copied()
                    .unwrap_or(1.0)
            })
            .collect();
        // lint:allow(no-panic-in-lib) the iterator above yields exactly users * dims values
        Dataset::from_rows(self.users, self.dims, values).expect("shape is valid")
    }
}

/// Synthetic correlated dataset standing in for the paper's COV-19 table.
///
/// `x_i = W z_i + σ_noise · ε_i`, where `z_i ∈ R^k` are latent factors,
/// `W ∈ R^{d × k}` is a random loading matrix, and the result is rescaled
/// column-wise into `[-1, 1]`. With `k ≪ d` every pair of dimensions shares
/// latent factors, reproducing the "each dimension has high correlations with
/// others" property the paper states for COV-19.
#[derive(Debug, Clone)]
pub struct CorrelatedDataset {
    users: usize,
    dims: usize,
    latent_dims: usize,
    noise_std: f64,
}

impl CorrelatedDataset {
    /// Create a generator with `latent_dims = 8` and noise σ = 0.05.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] for a zero-sized shape.
    pub fn new(users: usize, dims: usize) -> crate::Result<Self> {
        check_shape(users, dims)?;
        Ok(Self {
            users,
            dims,
            latent_dims: 8,
            noise_std: 0.05,
        })
    }

    /// Override the number of latent factors.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] when `latent_dims == 0`.
    pub fn with_latent_dims(mut self, latent_dims: usize) -> crate::Result<Self> {
        if latent_dims == 0 {
            return Err(DataError::InvalidParameter {
                name: "latent_dims",
                reason: "must be positive".into(),
            });
        }
        self.latent_dims = latent_dims;
        Ok(self)
    }

    /// Generate the dataset (rescaled column-wise into `[-1, 1]`).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let std_normal = Normal::STANDARD;
        // Loading matrix W: d x k, entries ~ N(0, 1), plus a per-column offset so
        // column means differ (like real survey/count data).
        let loadings: Vec<f64> = (0..self.dims * self.latent_dims)
            .map(|_| std_normal.sample(rng))
            .collect();
        let offsets: Vec<f64> = (0..self.dims).map(|_| rng.gen_range(-0.5..0.5)).collect();
        // lint:allow(no-panic-in-lib) noise_std is the fixed literal 0.05, which Normal::new accepts
        let noise = Normal::new(0.0, self.noise_std).expect("positive noise std");

        let mut values = Vec::with_capacity(self.users * self.dims);
        for _ in 0..self.users {
            let z: Vec<f64> = (0..self.latent_dims)
                .map(|_| std_normal.sample(rng))
                .collect();
            for (row, &off) in loadings.chunks(self.latent_dims).zip(&offsets) {
                let mut x = off;
                for (w, zi) in row.iter().zip(&z) {
                    x += w * zi;
                }
                values.push(x + noise.sample(rng));
            }
        }
        // lint:allow(no-panic-in-lib) the loops above push exactly users * dims values
        let raw = Dataset::from_rows(self.users, self.dims, values).expect("shape is valid");
        // lint:allow(no-panic-in-lib) normalize_symmetric only rejects invalid target intervals and [-1, 1] is fixed here
        let (normalized, _) = normalize_symmetric(&raw).expect("valid target interval");
        normalized
    }
}

/// Generate a dataset of the given kind and shape with the paper's default
/// parameters for that kind.
///
/// # Errors
/// Returns [`DataError::InvalidShape`] for a zero-sized shape.
pub fn generate<R: Rng + ?Sized>(
    kind: DatasetKind,
    users: usize,
    dims: usize,
    rng: &mut R,
) -> crate::Result<Dataset> {
    Ok(match kind {
        DatasetKind::Gaussian => GaussianDataset::new(users, dims)?.generate(rng),
        DatasetKind::Poisson => PoissonDataset::new(users, dims)?.generate(rng),
        DatasetKind::Uniform => UniformDataset::new(users, dims)?.generate(rng),
        DatasetKind::Covid => CorrelatedDataset::new(users, dims)?.generate(rng),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in DatasetKind::ALL {
            assert_eq!(DatasetKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(DatasetKind::parse("COV-19"), Some(DatasetKind::Covid));
        assert_eq!(DatasetKind::parse("nope"), None);
    }

    #[test]
    fn generators_validate_shape() {
        assert!(GaussianDataset::new(0, 10).is_err());
        assert!(PoissonDataset::new(10, 0).is_err());
        assert!(UniformDataset::new(0, 0).is_err());
        assert!(CorrelatedDataset::new(0, 5).is_err());
        assert!(GaussianDataset::new(10, 10)
            .unwrap()
            .with_std_dev(0.0)
            .is_err());
        assert!(CorrelatedDataset::new(10, 10)
            .unwrap()
            .with_latent_dims(0)
            .is_err());
    }

    #[test]
    fn gaussian_dataset_matches_paper_structure() {
        let gen = GaussianDataset::new(4000, 50).unwrap();
        let means = gen.dimension_means();
        assert_eq!(means.iter().filter(|&&m| m == 0.9).count(), 5);
        let data = gen.generate(&mut rng());
        assert_eq!(data.users(), 4000);
        assert_eq!(data.dims(), 50);
        assert!(data.all_within(-1.0, 1.0));
        let true_means = data.true_means();
        // High-mean dimensions cluster near 0.9, the rest near 0.
        for (j, &mean) in true_means.iter().enumerate() {
            let target = if j < 5 { 0.9 } else { 0.0 };
            assert!((mean - target).abs() < 0.02, "dim {j}: {mean}");
        }
    }

    #[test]
    fn poisson_dataset_is_normalized() {
        let data = PoissonDataset::new(2000, 10).unwrap().generate(&mut rng());
        assert!(data.all_within(-1.0, 1.0));
        // Each column should actually reach both ends after min-max scaling.
        for (lo, hi) in data.column_ranges() {
            assert_eq!(lo, -1.0);
            assert_eq!(hi, 1.0);
        }
    }

    #[test]
    fn uniform_dataset_covers_the_interval() {
        let data = UniformDataset::new(5000, 4).unwrap().generate(&mut rng());
        assert!(data.all_within(-1.0, 1.0));
        let means = data.true_means();
        for m in means {
            assert!(m.abs() < 0.05, "mean = {m}");
        }
    }

    #[test]
    fn case_study_uniform_uses_discrete_support() {
        let data = UniformDataset::new(1000, 3)
            .unwrap()
            .generate_case_study(&mut rng());
        for &v in data.as_slice() {
            let scaled = v * 10.0;
            assert!((scaled - scaled.round()).abs() < 1e-9);
            assert!((0.1..=1.0).contains(&v));
        }
    }

    #[test]
    fn correlated_dataset_has_high_cross_dimension_correlation() {
        let data = CorrelatedDataset::new(3000, 12)
            .unwrap()
            .with_latent_dims(2)
            .unwrap()
            .generate(&mut rng());
        assert!(data.all_within(-1.0, 1.0));
        // Average |pairwise correlation| over a handful of column pairs should
        // be clearly higher than for independent data.
        let corr = |a: &[f64], b: &[f64]| {
            let n = a.len() as f64;
            let ma = a.iter().sum::<f64>() / n;
            let mb = b.iter().sum::<f64>() / n;
            let cov: f64 = a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - ma) * (y - mb))
                .sum::<f64>()
                / n;
            let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n;
            let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>() / n;
            cov / (va.sqrt() * vb.sqrt())
        };
        let mut total = 0.0;
        let mut count = 0;
        for j in 0..6 {
            for k in (j + 1)..6 {
                let a = data.column(j).unwrap();
                let b = data.column(k).unwrap();
                total += corr(&a, &b).abs();
                count += 1;
            }
        }
        let avg = total / count as f64;
        assert!(avg > 0.3, "average |correlation| = {avg}");
    }

    #[test]
    fn generate_helper_produces_requested_shapes() {
        for kind in DatasetKind::ALL {
            let data = generate(kind, 200, 8, &mut rng()).unwrap();
            assert_eq!(data.users(), 200);
            assert_eq!(data.dims(), 8);
            assert!(data.all_within(-1.0, 1.0), "{kind:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let gen = GaussianDataset::new(100, 5).unwrap();
        let a = gen.generate(&mut StdRng::seed_from_u64(7));
        let b = gen.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = gen.generate(&mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }
}
