//! # hdldp-data
//!
//! Dataset substrate for the `hdldp` workspace: the synthetic datasets used in
//! the paper's evaluation (Section VI), a synthetic correlated stand-in for
//! the proprietary COV-19 table, plus the encodings needed by the analytical
//! framework (discretized value distributions, Section IV-C) and by the
//! frequency-estimation extension (histogram/one-hot encoding, Section V-C).
//!
//! All numeric datasets are exposed as a row-major [`Dataset`] whose columns
//! are normalized into `[-1, 1]`, matching the problem definition of
//! Section III-B.
//!
//! Generators:
//!
//! * [`generators::GaussianDataset`] — tunable `n × d`; 10% of dimensions have
//!   mean 0.9, the rest mean 0, all with standard deviation 1/16.
//! * [`generators::PoissonDataset`] — each dimension Poisson with a random
//!   rate in `[1, 99]`, normalized.
//! * [`generators::UniformDataset`] — i.i.d. uniform values.
//! * [`generators::CorrelatedDataset`] — low-rank latent-factor model standing
//!   in for the COV-19 dataset (see DESIGN.md for the substitution note).
//! * [`categorical::CategoricalDataset`] — categorical columns with one-hot
//!   (histogram) encoding for frequency estimation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod categorical;
pub mod dataset;
pub mod discretize;
pub mod error;
pub mod generators;
pub mod normalize;

pub use categorical::CategoricalDataset;
pub use dataset::{ColumnProfiles, Dataset};
pub use discretize::DiscreteValueDistribution;
pub use error::DataError;
pub use generators::{
    CorrelatedDataset, DatasetKind, GaussianDataset, PoissonDataset, UniformDataset,
};

/// Convenience result alias for dataset operations.
pub type Result<T> = std::result::Result<T, DataError>;
