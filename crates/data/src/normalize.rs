//! Column-wise normalization into `[-1, 1]` (or any target interval).
//!
//! The paper assumes every dimension is normalized into `[-1, 1]`
//! (Section III-B) and the experiments state "each dimension is normalized
//! into [-1, 1]". This module performs the min–max map and remembers the
//! original ranges so results can be reported in the original units if needed.

use crate::{DataError, Dataset};

/// A per-column affine map recording how a dataset was normalized.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    /// Original `(min, max)` per column.
    ranges: Vec<(f64, f64)>,
    /// Target interval.
    target: (f64, f64),
}

impl Normalizer {
    /// Fit a min–max normalizer mapping each column of `data` onto
    /// `[target.0, target.1]`.
    ///
    /// Constant columns (max == min) are mapped to the midpoint of the target
    /// interval.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] when the target interval is
    /// degenerate or not finite.
    pub fn fit(data: &Dataset, target: (f64, f64)) -> crate::Result<Self> {
        if !(target.0.is_finite() && target.1.is_finite() && target.0 < target.1) {
            return Err(DataError::InvalidParameter {
                name: "target",
                reason: format!("require finite lo < hi, got {target:?}"),
            });
        }
        Ok(Self {
            ranges: data.column_ranges(),
            target,
        })
    }

    /// Fit onto the canonical `[-1, 1]` interval.
    ///
    /// # Errors
    /// Never fails for this target; the `Result` mirrors [`Normalizer::fit`].
    pub fn fit_symmetric(data: &Dataset) -> crate::Result<Self> {
        Self::fit(data, (-1.0, 1.0))
    }

    /// The original per-column ranges.
    pub fn ranges(&self) -> &[(f64, f64)] {
        &self.ranges
    }

    /// Apply the normalization, producing a new dataset.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidShape`] when `data` has a different number
    /// of columns than the fitted ranges.
    pub fn transform(&self, data: &Dataset) -> crate::Result<Dataset> {
        if data.dims() != self.ranges.len() {
            return Err(DataError::InvalidShape {
                reason: format!(
                    "normalizer fitted on {} columns, dataset has {}",
                    self.ranges.len(),
                    data.dims()
                ),
            });
        }
        let (lo, hi) = self.target;
        let mid = 0.5 * (lo + hi);
        let mut values = Vec::with_capacity(data.users() * data.dims());
        for row in data.as_slice().chunks(data.dims()) {
            for (&x, &(cmin, cmax)) in row.iter().zip(&self.ranges) {
                let y = if cmax > cmin {
                    lo + (x - cmin) / (cmax - cmin) * (hi - lo)
                } else {
                    mid
                };
                values.push(y.clamp(lo, hi));
            }
        }
        Dataset::from_rows(data.users(), data.dims(), values)
    }

    /// Map a vector of per-column values (e.g. an estimated mean) back to the
    /// original units.
    ///
    /// # Errors
    /// Returns [`DataError::LengthMismatch`] when the vector length does not
    /// match the number of fitted columns.
    pub fn inverse_transform_vector(&self, values: &[f64]) -> crate::Result<Vec<f64>> {
        if values.len() != self.ranges.len() {
            return Err(DataError::LengthMismatch {
                expected: self.ranges.len(),
                actual: values.len(),
            });
        }
        let (lo, hi) = self.target;
        Ok(values
            .iter()
            .zip(&self.ranges)
            .map(|(&y, &(cmin, cmax))| {
                if cmax > cmin {
                    cmin + (y - lo) / (hi - lo) * (cmax - cmin)
                } else {
                    cmin
                }
            })
            .collect())
    }
}

/// Convenience: fit and apply a `[-1, 1]` normalization in one call.
///
/// # Errors
/// Propagates [`Normalizer::fit`]/[`Normalizer::transform`] errors.
pub fn normalize_symmetric(data: &Dataset) -> crate::Result<(Dataset, Normalizer)> {
    let norm = Normalizer::fit_symmetric(data)?;
    let transformed = norm.transform(data)?;
    Ok((transformed, norm))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> Dataset {
        Dataset::from_rows(3, 2, vec![0.0, 10.0, 5.0, 20.0, 10.0, 30.0]).unwrap()
    }

    #[test]
    fn fit_validates_target() {
        let d = raw();
        assert!(Normalizer::fit(&d, (1.0, 1.0)).is_err());
        assert!(Normalizer::fit(&d, (1.0, 0.0)).is_err());
        assert!(Normalizer::fit(&d, (f64::NAN, 1.0)).is_err());
        assert!(Normalizer::fit(&d, (0.0, 1.0)).is_ok());
    }

    #[test]
    fn transform_maps_onto_target_interval() {
        let d = raw();
        let (norm, fitted) = {
            let f = Normalizer::fit_symmetric(&d).unwrap();
            let t = f.transform(&d).unwrap();
            (t, f)
        };
        assert!(norm.all_within(-1.0, 1.0));
        // Column 0 spans 0..10 -> -1, 0, 1.
        assert_eq!(norm.column(0).unwrap(), vec![-1.0, 0.0, 1.0]);
        assert_eq!(fitted.ranges()[0], (0.0, 10.0));
    }

    #[test]
    fn constant_column_maps_to_midpoint() {
        let d = Dataset::from_rows(2, 2, vec![3.0, 1.0, 3.0, 2.0]).unwrap();
        let (t, _) = normalize_symmetric(&d).unwrap();
        assert_eq!(t.column(0).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn inverse_transform_round_trips_means() {
        let d = raw();
        let (t, norm) = normalize_symmetric(&d).unwrap();
        let normalized_means = t.true_means();
        let back = norm.inverse_transform_vector(&normalized_means).unwrap();
        let original_means = d.true_means();
        for (a, b) in back.iter().zip(&original_means) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert!(norm.inverse_transform_vector(&[0.0]).is_err());
    }

    #[test]
    fn transform_rejects_mismatched_dataset() {
        let d = raw();
        let norm = Normalizer::fit_symmetric(&d).unwrap();
        let other = Dataset::from_rows(2, 3, vec![0.0; 6]).unwrap();
        assert!(norm.transform(&other).is_err());
    }

    #[test]
    fn out_of_range_values_are_clamped_on_transform() {
        let d = raw();
        let norm = Normalizer::fit(&d, (0.0, 1.0)).unwrap();
        // New data exceeding the fitted range gets clamped.
        let fresh = Dataset::from_rows(1, 2, vec![100.0, -100.0]).unwrap();
        let t = norm.transform(&fresh).unwrap();
        assert_eq!(t.row(0).unwrap(), &[1.0, 0.0]);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn normalized_data_is_always_in_range(
                values in proptest::collection::vec(-1e3f64..1e3, 4..80),
            ) {
                let dims = 2;
                let users = values.len() / dims;
                let d = Dataset::from_rows(users, dims, values[..users * dims].to_vec()).unwrap();
                let (t, _) = normalize_symmetric(&d).unwrap();
                prop_assert!(t.all_within(-1.0, 1.0));
            }
        }
    }
}
