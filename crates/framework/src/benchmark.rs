//! Benchmarking LDP mechanisms without experiments (Section IV-C).
//!
//! The collector specifies the deviation supremum `ξ` she is willing to
//! tolerate in a dimension; the framework computes, for every candidate
//! mechanism, the probability that the deviation stays within `ξ`. The
//! mechanism with the highest probability wins *for that tolerance* — the
//! paper's key observation is that the winner changes with `ξ` (Piecewise wins
//! tight tolerances because it is unbiased; Square Wave wins loose tolerances
//! because its variance is far smaller).

use crate::{DeviationApproximation, FrameworkError};
use hdldp_data::DiscreteValueDistribution;
use hdldp_mechanisms::Mechanism;
use serde::Serialize;

/// One row of a benchmark: a mechanism's probabilities at each supremum.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchmarkRow {
    /// Mechanism name.
    pub mechanism: String,
    /// Deviation mean `δ_j` predicted by the framework.
    pub delta: f64,
    /// Deviation variance `σ_j²` predicted by the framework.
    pub variance: f64,
    /// `(ξ, probability the deviation stays within ξ)` pairs.
    pub probabilities: Vec<(f64, f64)>,
}

/// A one-dimension benchmark of several mechanisms at several suprema.
#[derive(Debug, Clone, Default)]
pub struct MechanismBenchmark {
    rows: Vec<BenchmarkRow>,
    suprema: Vec<f64>,
}

impl MechanismBenchmark {
    /// Create a benchmark over the given suprema `ξ` values.
    ///
    /// # Errors
    /// Returns [`FrameworkError::InvalidParameter`] when `suprema` is empty or
    /// contains non-positive values.
    pub fn new(suprema: Vec<f64>) -> crate::Result<Self> {
        if suprema.is_empty() {
            return Err(FrameworkError::InvalidParameter {
                name: "suprema",
                reason: "need at least one supremum".into(),
            });
        }
        if suprema.iter().any(|&x| !(x.is_finite() && x > 0.0)) {
            return Err(FrameworkError::InvalidParameter {
                name: "suprema",
                reason: "every supremum must be positive and finite".into(),
            });
        }
        Ok(Self {
            rows: Vec::new(),
            suprema,
        })
    }

    /// The suprema this benchmark evaluates.
    pub fn suprema(&self) -> &[f64] {
        &self.suprema
    }

    /// Add a mechanism to the benchmark, with the value distribution and
    /// expected report count of the dimension under study.
    ///
    /// # Errors
    /// Propagates [`DeviationApproximation::for_dimension`] errors.
    pub fn add_mechanism(
        &mut self,
        mechanism: &dyn Mechanism,
        values: &DiscreteValueDistribution,
        reports: f64,
    ) -> crate::Result<&mut Self> {
        let deviation = DeviationApproximation::for_dimension(mechanism, values, reports)?;
        let probabilities = self
            .suprema
            .iter()
            .map(|&xi| (xi, deviation.prob_within(xi)))
            .collect();
        self.rows.push(BenchmarkRow {
            mechanism: mechanism.name().to_string(),
            delta: deviation.delta(),
            variance: deviation.variance(),
            probabilities,
        });
        Ok(self)
    }

    /// The benchmark rows added so far.
    pub fn rows(&self) -> &[BenchmarkRow] {
        &self.rows
    }

    /// The winning mechanism (highest probability) at supremum index `idx`,
    /// or `None` when no mechanism has been added / the index is invalid.
    pub fn winner_at(&self, idx: usize) -> Option<&BenchmarkRow> {
        if idx >= self.suprema.len() {
            return None;
        }
        // Probabilities are finite by construction; total_cmp orders them
        // identically to partial_cmp and cannot panic.
        self.rows
            .iter()
            .max_by(|a, b| a.probabilities[idx].1.total_cmp(&b.probabilities[idx].1))
    }

    /// Render the benchmark as an aligned text table (the shape of Table II).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<14}", "xi"));
        for xi in &self.suprema {
            out.push_str(&format!("{xi:>12.4}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<14}", row.mechanism));
            for &(_, p) in &row.probabilities {
                out.push_str(&format!("{p:>12.3e}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_mechanisms::{LaplaceMechanism, PiecewiseMechanism, SquareWaveMechanism};

    #[test]
    fn construction_validates_suprema() {
        assert!(MechanismBenchmark::new(vec![]).is_err());
        assert!(MechanismBenchmark::new(vec![0.0]).is_err());
        assert!(MechanismBenchmark::new(vec![-0.1]).is_err());
        assert!(MechanismBenchmark::new(vec![0.01, 0.1]).is_ok());
    }

    #[test]
    fn table2_shape_piecewise_vs_square_wave() {
        // The paper's Table II setting: ε/m = 0.001, r = 10,000, case-study values.
        let values = DiscreteValueDistribution::case_study();
        let mut bench = MechanismBenchmark::new(vec![0.001, 0.01, 0.05, 0.1]).unwrap();
        let pm = PiecewiseMechanism::new(0.001).unwrap();
        let sw = SquareWaveMechanism::new(0.001).unwrap();
        bench.add_mechanism(&pm, &values, 10_000.0).unwrap();
        bench.add_mechanism(&sw, &values, 10_000.0).unwrap();

        let rows = bench.rows();
        assert_eq!(rows.len(), 2);
        let pm_row = &rows[0];
        let sw_row = &rows[1];

        // Piecewise wins the tight tolerances (unbiased), Square Wave wins the
        // loose ones (tiny variance) — the crossover the paper highlights.
        assert!(
            pm_row.probabilities[0].1 > sw_row.probabilities[0].1,
            "xi = 0.001"
        );
        assert!(
            pm_row.probabilities[1].1 > sw_row.probabilities[1].1,
            "xi = 0.01"
        );
        assert!(
            sw_row.probabilities[2].1 > pm_row.probabilities[2].1,
            "xi = 0.05"
        );
        assert!(
            sw_row.probabilities[3].1 > pm_row.probabilities[3].1,
            "xi = 0.1"
        );
        assert_eq!(bench.winner_at(0).unwrap().mechanism, "piecewise");
        assert_eq!(bench.winner_at(3).unwrap().mechanism, "square_wave");
        assert!(bench.winner_at(4).is_none());

        // Order-of-magnitude agreement with Table II for Piecewise
        // (3.46e-5, 3.46e-4, 0.002, 0.004).
        assert!((pm_row.probabilities[0].1 - 3.46e-5).abs() < 1e-6);
        assert!((pm_row.probabilities[1].1 - 3.46e-4).abs() < 1e-5);
        // 0.00346 here; the paper rounds the xi = 0.1 entry up to 0.004.
        assert!((pm_row.probabilities[3].1 - 0.0035).abs() < 2e-4);
        // Square Wave saturates at 1.0 for xi = 0.1.
        assert!((sw_row.probabilities[3].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn probabilities_are_monotone_in_the_supremum() {
        let values = DiscreteValueDistribution::case_study();
        let mut bench = MechanismBenchmark::new(vec![0.01, 0.05, 0.2, 1.0, 5.0]).unwrap();
        let lap = LaplaceMechanism::new(0.01).unwrap();
        bench.add_mechanism(&lap, &values, 1000.0).unwrap();
        let row = &bench.rows()[0];
        let mut prev = 0.0;
        for &(_, p) in &row.probabilities {
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn table_rendering_contains_all_mechanisms() {
        let values = DiscreteValueDistribution::case_study();
        let mut bench = MechanismBenchmark::new(vec![0.05]).unwrap();
        bench
            .add_mechanism(&LaplaceMechanism::new(0.5).unwrap(), &values, 100.0)
            .unwrap();
        bench
            .add_mechanism(&PiecewiseMechanism::new(0.5).unwrap(), &values, 100.0)
            .unwrap();
        let table = bench.to_table();
        assert!(table.contains("laplace"));
        assert!(table.contains("piecewise"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn empty_benchmark_has_no_winner() {
        let bench = MechanismBenchmark::new(vec![0.1]).unwrap();
        assert!(bench.winner_at(0).is_none());
        assert_eq!(bench.rows().len(), 0);
        assert_eq!(bench.suprema(), &[0.1]);
    }
}
