//! The CLT approximation-error bound of Theorem 2 (Berry–Esseen).
//!
//! For one dimension with `r_j` reports, the true cdf of the deviation and the
//! Gaussian cdf from Lemma 2/3 differ by at most
//!
//! ```text
//! 0.33554 · (ρ + 0.415 s³) / (s³ √r_j)
//! ```
//!
//! where `s² = E[Var(t*)]` is the *per-sample* variance of the centred
//! perturbation and `ρ = E|t* − t − δ|³` its third absolute central moment.
//! This is the Korolev–Shevtsova form of the Berry–Esseen inequality the paper
//! cites; the bound decays like `1/√r_j`.
//!
//! **Notation note.** The paper writes the denominator as `r_j^{7/2} σ_j³` with
//! `σ_j` the CLT standard deviation — substituting `σ_j = s/√r_j` makes that
//! expression `r_j² s³`, which does *not* reproduce the §IV-D numeric example
//! (≈1.57% at `r_j = 1000`). The example itself evaluates
//! `0.33554 (ρ + 0.415 s³)/(s³ √r_j)`, i.e. the standard bound, which is what
//! we implement. The example also uses `ρ = 3λ³` for Laplace noise, which is
//! the one-sided integral; the true two-sided third absolute moment is `6λ³`.
//! [`laplace_approximation_error`] exposes both so the paper's number can be
//! reproduced exactly while the mathematically correct value remains available.

use crate::FrameworkError;
use hdldp_mechanisms::LaplaceMechanism;

/// The Korolev–Shevtsova constant used by the paper.
pub const BERRY_ESSEEN_CONSTANT: f64 = 0.33554;

/// Upper bound on `sup_x |F̄_j(x) − F̂_j(x)|` for one dimension.
///
/// * `rho` — third absolute central moment of one perturbed report,
///   `E|t* − t − δ|³`.
/// * `per_sample_std` — standard deviation `s` of one perturbed report.
/// * `reports` — number of reports `r_j`.
///
/// # Errors
/// Returns [`FrameworkError::InvalidParameter`] when any argument is not a
/// positive finite number.
pub fn berry_esseen_bound(rho: f64, per_sample_std: f64, reports: f64) -> crate::Result<f64> {
    for (name, value) in [
        ("rho", rho),
        ("per_sample_std", per_sample_std),
        ("reports", reports),
    ] {
        if !(value.is_finite() && value > 0.0) {
            return Err(FrameworkError::InvalidParameter {
                name,
                reason: format!("must be positive and finite, got {value}"),
            });
        }
    }
    let s3 = per_sample_std.powi(3);
    Ok(BERRY_ESSEEN_CONSTANT * (rho + 0.415 * s3) / (s3 * reports.sqrt()))
}

/// The §IV-D worked example: the approximation error of the Laplace mechanism
/// with per-dimension budget `epsilon` and `reports` received reports.
///
/// Returns `(paper_value, corrected_value)`:
///
/// * `paper_value` uses the paper's `ρ = 3λ³` and reproduces the ≈1.57% figure
///   for `ε`-per-dimension noise `Lap(2/ε)` and `r_j = 1000`;
/// * `corrected_value` uses the true third absolute moment `ρ = 6λ³`.
///
/// # Errors
/// Propagates [`berry_esseen_bound`] and mechanism-construction errors.
pub fn laplace_approximation_error(epsilon: f64, reports: f64) -> crate::Result<(f64, f64)> {
    let mech = LaplaceMechanism::new(epsilon)?;
    let noise = mech.noise_distribution();
    let s = noise.variance().sqrt();
    let paper = berry_esseen_bound(noise.paper_rho(), s, reports)?;
    let corrected = berry_esseen_bound(noise.third_absolute_moment(), s, reports)?;
    Ok((paper, corrected))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_arguments() {
        assert!(berry_esseen_bound(0.0, 1.0, 10.0).is_err());
        assert!(berry_esseen_bound(1.0, 0.0, 10.0).is_err());
        assert!(berry_esseen_bound(1.0, 1.0, 0.0).is_err());
        assert!(berry_esseen_bound(f64::NAN, 1.0, 10.0).is_err());
    }

    #[test]
    fn reproduces_the_paper_example() {
        // §IV-D: Laplace mechanism, r_j = 1000 reports ⇒ ≈ 1.57%.
        // The bound is scale-free in λ, so any ε gives the same number.
        let (paper, corrected) = laplace_approximation_error(1.0, 1000.0).unwrap();
        assert!(
            (paper - 0.0157).abs() < 0.0005,
            "paper-convention bound = {paper}"
        );
        // The corrected value (ρ = 6λ³) is larger but of the same order.
        assert!(corrected > paper);
        assert!(corrected < 0.04, "corrected bound = {corrected}");
    }

    #[test]
    fn bound_is_scale_invariant_for_laplace() {
        let a = laplace_approximation_error(0.1, 1000.0).unwrap();
        let b = laplace_approximation_error(5.0, 1000.0).unwrap();
        assert!((a.0 - b.0).abs() < 1e-12);
        assert!((a.1 - b.1).abs() < 1e-12);
    }

    #[test]
    fn bound_decays_like_inverse_square_root_of_reports() {
        let r1 = berry_esseen_bound(3.0, 1.0, 100.0).unwrap();
        let r2 = berry_esseen_bound(3.0, 1.0, 400.0).unwrap();
        let r3 = berry_esseen_bound(3.0, 1.0, 10_000.0).unwrap();
        assert!((r1 / r2 - 2.0).abs() < 1e-9);
        assert!((r1 / r3 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bound_grows_with_the_third_moment() {
        let small = berry_esseen_bound(1.0, 1.0, 100.0).unwrap();
        let large = berry_esseen_bound(10.0, 1.0, 100.0).unwrap();
        assert!(large > small);
    }

    #[test]
    fn gaussian_like_ratio_gives_small_bound_at_scale() {
        // With rho/s^3 ~ 1.6 (Gaussian-like) and a million reports the bound is tiny.
        let b = berry_esseen_bound(1.6, 1.0, 1_000_000.0).unwrap();
        assert!(b < 1e-3);
    }
}
