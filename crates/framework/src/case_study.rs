//! The complete Section IV-C case study, packaged so the experiment harness
//! (Table II, Figure 3) and the examples can reproduce it in one call.
//!
//! Setting: `d = 100` dimensions, `n = 10,000` users, `v = 10` distinct values
//! `{0.1, …, 1.0}` each with probability 10%, every user reports `m = 100`
//! dimensions, collective budget `ε = 0.1` ⇒ per-dimension budget `0.001` and
//! `r = nm/d = 10,000` reports per dimension.

use crate::{DeviationApproximation, MechanismBenchmark};
use hdldp_data::DiscreteValueDistribution;
use hdldp_mechanisms::{PiecewiseMechanism, SquareWaveMechanism};

/// The case-study configuration (all fields public so experiments can tweak
/// individual knobs while keeping the paper's defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudy {
    /// Collective privacy budget ε.
    pub total_epsilon: f64,
    /// Number of reported dimensions m.
    pub reported_dims: usize,
    /// Number of reports per dimension r = nm/d.
    pub reports_per_dimension: f64,
    /// The discrete value distribution shared by every dimension.
    pub values: DiscreteValueDistribution,
    /// The suprema ξ evaluated in Table II.
    pub suprema: Vec<f64>,
}

impl Default for CaseStudy {
    fn default() -> Self {
        Self {
            total_epsilon: 0.1,
            reported_dims: 100,
            reports_per_dimension: 10_000.0,
            values: DiscreteValueDistribution::case_study(),
            suprema: vec![0.001, 0.01, 0.05, 0.1],
        }
    }
}

impl CaseStudy {
    /// The per-dimension budget `ε/m`.
    pub fn per_dimension_epsilon(&self) -> f64 {
        self.total_epsilon / self.reported_dims as f64
    }

    /// The framework's deviation approximation for the Piecewise mechanism
    /// (the paper's Equations 14–16).
    ///
    /// # Errors
    /// Propagates mechanism-construction and approximation errors.
    pub fn piecewise_deviation(&self) -> crate::Result<DeviationApproximation> {
        let mech = PiecewiseMechanism::new(self.per_dimension_epsilon())?;
        DeviationApproximation::for_dimension(&mech, &self.values, self.reports_per_dimension)
    }

    /// The framework's deviation approximation for the Square Wave mechanism
    /// (the paper's Equations 17–20).
    ///
    /// # Errors
    /// Propagates mechanism-construction and approximation errors.
    pub fn square_wave_deviation(&self) -> crate::Result<DeviationApproximation> {
        let mech = SquareWaveMechanism::new(self.per_dimension_epsilon())?;
        DeviationApproximation::for_dimension(&mech, &self.values, self.reports_per_dimension)
    }

    /// Produce the Table II benchmark (Piecewise vs Square Wave at every ξ).
    ///
    /// # Errors
    /// Propagates benchmark-construction errors.
    pub fn table2(&self) -> crate::Result<MechanismBenchmark> {
        let mut bench = MechanismBenchmark::new(self.suprema.clone())?;
        let pm = PiecewiseMechanism::new(self.per_dimension_epsilon())?;
        let sw = SquareWaveMechanism::new(self.per_dimension_epsilon())?;
        bench.add_mechanism(&pm, &self.values, self.reports_per_dimension)?;
        bench.add_mechanism(&sw, &self.values, self.reports_per_dimension)?;
        Ok(bench)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cs = CaseStudy::default();
        assert_eq!(cs.total_epsilon, 0.1);
        assert_eq!(cs.reported_dims, 100);
        assert!((cs.per_dimension_epsilon() - 0.001).abs() < 1e-15);
        assert_eq!(cs.reports_per_dimension, 10_000.0);
        assert_eq!(cs.values.support_size(), 10);
        assert_eq!(cs.suprema, vec![0.001, 0.01, 0.05, 0.1]);
    }

    #[test]
    fn piecewise_deviation_reproduces_equation_15() {
        let cs = CaseStudy::default();
        let dev = cs.piecewise_deviation().unwrap();
        assert_eq!(dev.delta(), 0.0);
        assert!((dev.variance() - 533.2).abs() < 1.0, "{}", dev.variance());
        // Equation 16's normalisation constant 1/57.9 = pdf(delta) * ... checks
        // via pdf at the mean: 1/(sqrt(2 pi) sigma) = 1/57.900.
        let peak = dev.pdf(dev.delta());
        assert!((1.0 / peak - 57.9).abs() < 0.1, "1/peak = {}", 1.0 / peak);
    }

    #[test]
    fn square_wave_deviation_reproduces_equation_19() {
        let cs = CaseStudy::default();
        let dev = cs.square_wave_deviation().unwrap();
        assert!((dev.delta() - -0.049).abs() < 0.002);
        assert!((dev.variance() - 3.365e-5).abs() < 0.15e-5);
    }

    #[test]
    fn table2_has_two_rows_and_four_columns() {
        let cs = CaseStudy::default();
        let bench = cs.table2().unwrap();
        assert_eq!(bench.rows().len(), 2);
        assert_eq!(bench.rows()[0].probabilities.len(), 4);
        assert_eq!(bench.rows()[0].mechanism, "piecewise");
        assert_eq!(bench.rows()[1].mechanism, "square_wave");
    }

    #[test]
    fn tweaked_case_study_still_works() {
        let cs = CaseStudy {
            total_epsilon: 1.0,
            reported_dims: 10,
            reports_per_dimension: 1000.0,
            ..CaseStudy::default()
        };
        assert!((cs.per_dimension_epsilon() - 0.1).abs() < 1e-12);
        let dev = cs.piecewise_deviation().unwrap();
        // Bigger per-dimension budget than the default -> much smaller variance.
        assert!(dev.variance() < 10.0);
    }
}
