//! The per-dimension Gaussian approximation of the deviation `θ̂_j − θ̄_j`
//! (Lemmas 2 and 3 of the paper).
//!
//! Given a mechanism `M` with per-dimension budget `ε/m`, the empirical
//! distribution of the original values in dimension `j`, and the expected
//! number of reports `r_j`, the deviation of the naive aggregate from the true
//! mean is asymptotically normal:
//!
//! * unbounded `M` (Lemma 2): `N(E[N], Var[N]/r_j)` — the noise moments are
//!   value-independent, so the value distribution is irrelevant;
//! * bounded `M` (Lemma 3): `N(E_p[δ(v)], E_p[Var(M(v))]/r_j)` — the outer
//!   expectations are over the distinct original values `v` with empirical
//!   probabilities `p`.
//!
//! Both cases are handled uniformly by taking the value-distribution
//! expectation of the mechanism's closed-form `bias`/`variance`; for unbounded
//! mechanisms those closures are constant so the expectation is a no-op.

use crate::FrameworkError;
use hdldp_data::DiscreteValueDistribution;
use hdldp_math::Normal;
use hdldp_mechanisms::Mechanism;

/// The Gaussian approximation of one dimension's deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationApproximation {
    /// Mean of the deviation, `δ_j = E[δ_ij]`.
    delta: f64,
    /// Per-sample variance `E[Var(t*_ij)]` (before dividing by `r_j`).
    per_sample_variance: f64,
    /// Expected number of reports `r_j`.
    reports: f64,
}

impl DeviationApproximation {
    /// Build the approximation for one dimension.
    ///
    /// `values` is the empirical distribution of the original values in this
    /// dimension; for unbounded mechanisms it only needs to be *a* valid
    /// distribution (its content does not affect the result).
    ///
    /// # Errors
    /// Returns [`FrameworkError::InvalidParameter`] when `reports` is not a
    /// positive finite number or the resulting per-sample variance is not
    /// positive.
    pub fn for_dimension(
        mechanism: &dyn Mechanism,
        values: &DiscreteValueDistribution,
        reports: f64,
    ) -> crate::Result<Self> {
        if !(reports.is_finite() && reports > 0.0) {
            return Err(FrameworkError::InvalidParameter {
                name: "reports",
                reason: format!("must be positive and finite, got {reports}"),
            });
        }
        // One fused pass over the support instead of two `expectation`
        // closures: same accumulation order, but a single dynamic dispatch per
        // dimension (the concrete bias/variance bodies inline into the loop).
        let (delta, per_sample_variance) =
            mechanism.expected_moments(values.values(), values.probabilities());
        if !(per_sample_variance.is_finite() && per_sample_variance > 0.0) {
            return Err(FrameworkError::InvalidParameter {
                name: "variance",
                reason: format!(
                    "mechanism `{}` produced a non-positive per-sample variance {per_sample_variance}",
                    mechanism.name()
                ),
            });
        }
        Ok(Self {
            delta,
            per_sample_variance,
            reports,
        })
    }

    /// Build the approximation directly from already-known moments (used by
    /// tests and by callers that pre-computed the moments).
    ///
    /// # Errors
    /// Returns [`FrameworkError::InvalidParameter`] for non-positive variance
    /// or report count.
    pub fn from_moments(delta: f64, per_sample_variance: f64, reports: f64) -> crate::Result<Self> {
        if !(per_sample_variance.is_finite() && per_sample_variance > 0.0) {
            return Err(FrameworkError::InvalidParameter {
                name: "per_sample_variance",
                reason: format!("must be positive, got {per_sample_variance}"),
            });
        }
        if !(reports.is_finite() && reports > 0.0) {
            return Err(FrameworkError::InvalidParameter {
                name: "reports",
                reason: format!("must be positive, got {reports}"),
            });
        }
        if !delta.is_finite() {
            return Err(FrameworkError::InvalidParameter {
                name: "delta",
                reason: format!("must be finite, got {delta}"),
            });
        }
        Ok(Self {
            delta,
            per_sample_variance,
            reports,
        })
    }

    /// The deviation mean `δ_j` (zero for unbiased mechanisms).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The deviation variance `σ_j² = E[Var(t*)]/r_j`.
    pub fn variance(&self) -> f64 {
        self.per_sample_variance / self.reports
    }

    /// The deviation standard deviation `σ_j`.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The per-sample variance `E[Var(t*)]` before dividing by `r_j`.
    pub fn per_sample_variance(&self) -> f64 {
        self.per_sample_variance
    }

    /// The expected report count `r_j` used for this approximation.
    pub fn reports(&self) -> f64 {
        self.reports
    }

    /// The approximating normal distribution `N(δ_j, σ_j²)`.
    pub fn normal(&self) -> Normal {
        Normal::from_mean_variance(self.delta, self.variance())
            // lint:allow(no-panic-in-lib) delta/variance are validated finite and positive by the constructor, so this expect is unreachable
            .expect("variance validated at construction")
    }

    /// Density of the deviation at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.normal().pdf(x)
    }

    /// Probability that the deviation stays within the symmetric supremum
    /// `|θ̂_j − θ̄_j| ≤ ξ`.
    pub fn prob_within(&self, xi: f64) -> f64 {
        if xi <= 0.0 {
            return 0.0;
        }
        self.normal().prob_in_interval(-xi, xi)
    }

    /// Probability that the deviation exceeds the symmetric supremum.
    pub fn prob_exceeds(&self, xi: f64) -> f64 {
        1.0 - self.prob_within(xi)
    }

    /// A practical "supremum" of the deviation: `|δ_j| + z·σ_j`.
    ///
    /// The theoretical supremum of a Gaussian is unbounded; the paper lets the
    /// collector pick the supremum she is willing to tolerate. HDR4ME uses a
    /// high quantile of the approximation as that supremum (`z = 3` by
    /// default, covering 99.7% of the mass), which this method provides.
    pub fn supremum(&self, z: f64) -> f64 {
        self.delta.abs() + z * self.std_dev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_mechanisms::{LaplaceMechanism, PiecewiseMechanism, SquareWaveMechanism};

    fn case_study_values() -> DiscreteValueDistribution {
        DiscreteValueDistribution::case_study()
    }

    #[test]
    fn validates_inputs() {
        let mech = LaplaceMechanism::new(1.0).unwrap();
        let vals = case_study_values();
        assert!(DeviationApproximation::for_dimension(&mech, &vals, 0.0).is_err());
        assert!(DeviationApproximation::for_dimension(&mech, &vals, -5.0).is_err());
        assert!(DeviationApproximation::for_dimension(&mech, &vals, 100.0).is_ok());
        assert!(DeviationApproximation::from_moments(0.0, 0.0, 10.0).is_err());
        assert!(DeviationApproximation::from_moments(0.0, 1.0, 0.0).is_err());
        assert!(DeviationApproximation::from_moments(f64::NAN, 1.0, 10.0).is_err());
    }

    #[test]
    fn unbounded_mechanism_is_value_independent() {
        // Lemma 2: for Laplace the approximation must not depend on the data.
        let mech = LaplaceMechanism::new(0.5).unwrap();
        let a = DeviationApproximation::for_dimension(&mech, &case_study_values(), 1000.0).unwrap();
        let other_values = DiscreteValueDistribution::new(vec![-1.0, 1.0], vec![0.5, 0.5]).unwrap();
        let b = DeviationApproximation::for_dimension(&mech, &other_values, 1000.0).unwrap();
        assert_eq!(a.delta(), 0.0);
        assert_eq!(a.delta(), b.delta());
        assert!((a.variance() - b.variance()).abs() < 1e-15);
        // Var = 2 (2/0.5)^2 / 1000 = 32 / 1000.
        assert!((a.variance() - 0.032).abs() < 1e-12);
    }

    #[test]
    fn piecewise_case_study_matches_paper_sigma() {
        // Section IV-C: ε/m = 0.001, r = 10,000 ⇒ σ² ≈ 533.2, δ = 0.
        let mech = PiecewiseMechanism::new(0.001).unwrap();
        let dev =
            DeviationApproximation::for_dimension(&mech, &case_study_values(), 10_000.0).unwrap();
        assert_eq!(dev.delta(), 0.0);
        assert!(
            (dev.variance() - 533.2).abs() < 1.0,
            "sigma^2 = {}",
            dev.variance()
        );
    }

    #[test]
    fn square_wave_case_study_matches_paper_bias_and_sigma() {
        // Section IV-C: δ ≈ −0.049 and σ² ≈ 3.365e-5 (r = 10,000).
        let mech = SquareWaveMechanism::new(0.001).unwrap();
        let dev =
            DeviationApproximation::for_dimension(&mech, &case_study_values(), 10_000.0).unwrap();
        assert!(
            (dev.delta() - -0.049).abs() < 0.002,
            "delta = {}",
            dev.delta()
        );
        assert!(
            (dev.variance() - 3.365e-5).abs() < 0.15e-5,
            "sigma^2 = {:e}",
            dev.variance()
        );
    }

    #[test]
    fn more_reports_shrink_the_deviation() {
        let mech = PiecewiseMechanism::new(0.5).unwrap();
        let small =
            DeviationApproximation::for_dimension(&mech, &case_study_values(), 100.0).unwrap();
        let large =
            DeviationApproximation::for_dimension(&mech, &case_study_values(), 10_000.0).unwrap();
        assert!(large.variance() < small.variance());
        assert_eq!(small.per_sample_variance(), large.per_sample_variance());
        assert!((small.variance() / large.variance() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn prob_within_behaves_like_a_cdf() {
        let dev = DeviationApproximation::from_moments(0.0, 1.0, 100.0).unwrap();
        assert_eq!(dev.prob_within(0.0), 0.0);
        assert_eq!(dev.prob_within(-1.0), 0.0);
        assert!(dev.prob_within(0.05) < dev.prob_within(0.2));
        assert!((dev.prob_within(100.0) - 1.0).abs() < 1e-9);
        assert!((dev.prob_within(0.1) + dev.prob_exceeds(0.1) - 1.0).abs() < 1e-12);
        // Symmetric zero-mean Gaussian: within one sigma ≈ 68.3%.
        assert!((dev.prob_within(dev.std_dev()) - 0.6827).abs() < 1e-3);
    }

    #[test]
    fn supremum_combines_bias_and_spread() {
        let dev = DeviationApproximation::from_moments(-0.5, 4.0, 100.0).unwrap();
        // sigma = sqrt(4/100) = 0.2; supremum(3) = 0.5 + 0.6.
        assert!((dev.supremum(3.0) - 1.1).abs() < 1e-12);
        assert!((dev.supremum(0.0) - 0.5).abs() < 1e-12);
        // pdf is centred at delta.
        assert!(dev.pdf(-0.5) > dev.pdf(0.0));
    }

    #[test]
    fn normal_accessor_is_consistent() {
        let dev = DeviationApproximation::from_moments(0.25, 9.0, 900.0).unwrap();
        let n = dev.normal();
        assert!((n.mean() - 0.25).abs() < 1e-12);
        assert!((n.std_dev() - 0.1).abs() < 1e-12);
        assert!((dev.std_dev() - 0.1).abs() < 1e-12);
        assert_eq!(dev.reports(), 900.0);
    }
}
