//! Empirical validation of the framework's Gaussian predictions.
//!
//! Figures 2 and 3 of the paper overlay simulated deviation histograms on the
//! CLT densities. This module quantifies that visual agreement so that tests
//! and the experiment harness can assert it automatically:
//!
//! * z-scores of the empirical mean and standard deviation against the
//!   prediction, and
//! * the total-variation distance between the empirical histogram and the
//!   predicted density (0 = identical, 1 = disjoint).

use crate::{DeviationApproximation, FrameworkError};
use hdldp_math::Histogram;

/// Summary of how well a set of simulated deviations matches the framework's
/// Gaussian approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalFit {
    /// Number of simulated deviations.
    pub samples: usize,
    /// Empirical mean of the deviations.
    pub empirical_mean: f64,
    /// Empirical standard deviation of the deviations.
    pub empirical_std: f64,
    /// `(empirical_mean − δ) / (σ/√samples)`: how many standard errors the
    /// empirical mean sits from the predicted one.
    pub mean_z_score: f64,
    /// Relative error of the empirical standard deviation vs the predicted σ.
    pub std_relative_error: f64,
    /// Total-variation distance between the binned empirical density and the
    /// predicted density (integrated over the same bins).
    pub total_variation: f64,
}

impl EmpiricalFit {
    /// Compare simulated deviations against a predicted approximation, using
    /// `bins` histogram bins over the empirical range.
    ///
    /// # Errors
    /// Returns [`FrameworkError::InvalidParameter`] when fewer than two
    /// deviations are provided or `bins == 0`.
    pub fn evaluate(
        predicted: &DeviationApproximation,
        deviations: &[f64],
        bins: usize,
    ) -> crate::Result<Self> {
        if deviations.len() < 2 {
            return Err(FrameworkError::InvalidParameter {
                name: "deviations",
                reason: "need at least two simulated deviations".into(),
            });
        }
        if bins == 0 {
            return Err(FrameworkError::InvalidParameter {
                name: "bins",
                reason: "need at least one histogram bin".into(),
            });
        }
        let n = deviations.len() as f64;
        let empirical_mean = deviations.iter().sum::<f64>() / n;
        let empirical_var = deviations
            .iter()
            .map(|x| (x - empirical_mean) * (x - empirical_mean))
            .sum::<f64>()
            / n;
        let empirical_std = empirical_var.sqrt();

        let sigma = predicted.std_dev();
        let mean_z_score = (empirical_mean - predicted.delta()) / (sigma / n.sqrt());
        let std_relative_error = (empirical_std - sigma) / sigma;

        // Total variation over the histogram support: 0.5 Σ |p_emp − p_pred|,
        // with p_pred the predicted Gaussian's probability of the same bin.
        let histogram = Histogram::from_samples(deviations, bins)?;
        let normal = predicted.normal();
        let width = histogram.bin_width();
        let in_range = (histogram.total() - histogram.underflow() - histogram.overflow()).max(1);
        let mut tv = 0.0;
        for (i, &count) in histogram.counts().iter().enumerate() {
            let center = histogram.bin_center(i);
            let p_emp = count as f64 / in_range as f64;
            let p_pred = normal.prob_in_interval(center - width / 2.0, center + width / 2.0);
            tv += (p_emp - p_pred).abs();
        }

        Ok(Self {
            samples: deviations.len(),
            empirical_mean,
            empirical_std,
            mean_z_score,
            std_relative_error,
            total_variation: 0.5 * tv,
        })
    }

    /// A loose acceptance test: the empirical mean is within `max_mean_z`
    /// standard errors, the standard deviation within `max_std_rel` relative
    /// error, and the total-variation distance below `max_tv`.
    pub fn is_consistent(&self, max_mean_z: f64, max_std_rel: f64, max_tv: f64) -> bool {
        self.mean_z_score.abs() <= max_mean_z
            && self.std_relative_error.abs() <= max_std_rel
            && self.total_variation <= max_tv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approximation(delta: f64, sigma: f64) -> DeviationApproximation {
        // per-sample variance = sigma^2 * reports.
        DeviationApproximation::from_moments(delta, sigma * sigma * 100.0, 100.0).unwrap()
    }

    #[test]
    fn validates_inputs() {
        let a = approximation(0.0, 1.0);
        assert!(EmpiricalFit::evaluate(&a, &[0.1], 10).is_err());
        assert!(EmpiricalFit::evaluate(&a, &[0.1, 0.2], 0).is_err());
        assert!(EmpiricalFit::evaluate(&a, &[0.1, 0.2], 5).is_ok());
    }

    #[test]
    fn samples_from_the_predicted_distribution_fit_well() {
        let a = approximation(-0.3, 0.2);
        let normal = a.normal();
        let mut rng = StdRng::seed_from_u64(8);
        let samples = normal.sample_n(&mut rng, 5_000);
        let fit = EmpiricalFit::evaluate(&a, &samples, 30).unwrap();
        assert!(fit.mean_z_score.abs() < 3.5, "{fit:?}");
        assert!(fit.std_relative_error.abs() < 0.05, "{fit:?}");
        assert!(fit.total_variation < 0.08, "{fit:?}");
        assert!(fit.is_consistent(4.0, 0.1, 0.1));
        assert_eq!(fit.samples, 5_000);
    }

    #[test]
    fn shifted_samples_are_rejected() {
        let a = approximation(0.0, 0.2);
        let mut rng = StdRng::seed_from_u64(9);
        // Samples from a distribution whose mean is 5 sigma away.
        let wrong = hdldp_math::Normal::new(1.0, 0.2).unwrap();
        let samples = wrong.sample_n(&mut rng, 2_000);
        let fit = EmpiricalFit::evaluate(&a, &samples, 30).unwrap();
        assert!(fit.mean_z_score.abs() > 10.0);
        assert!(!fit.is_consistent(4.0, 0.1, 0.2));
    }

    #[test]
    fn wrong_spread_is_detected_by_std_and_tv() {
        let a = approximation(0.0, 0.1);
        let mut rng = StdRng::seed_from_u64(10);
        let wide = hdldp_math::Normal::new(0.0, 0.3).unwrap();
        let samples = wide.sample_n(&mut rng, 2_000);
        let fit = EmpiricalFit::evaluate(&a, &samples, 30).unwrap();
        assert!(fit.std_relative_error > 1.0);
        assert!(fit.total_variation > 0.3);
    }
}
