//! Error type for the analytical framework.

use std::fmt;

/// Errors raised while building or evaluating the analytical framework.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameworkError {
    /// A parameter is outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// Vector lengths do not agree (e.g. suprema vs dimensions).
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// An error bubbled up from the numerical substrate.
    Math(hdldp_math::MathError),
    /// An error bubbled up from dataset handling.
    Data(hdldp_data::DataError),
    /// An error bubbled up from mechanism construction.
    Mechanism(hdldp_mechanisms::MechanismError),
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            FrameworkError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            FrameworkError::Math(e) => write!(f, "math error: {e}"),
            FrameworkError::Data(e) => write!(f, "data error: {e}"),
            FrameworkError::Mechanism(e) => write!(f, "mechanism error: {e}"),
        }
    }
}

impl std::error::Error for FrameworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameworkError::Math(e) => Some(e),
            FrameworkError::Data(e) => Some(e),
            FrameworkError::Mechanism(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdldp_math::MathError> for FrameworkError {
    fn from(e: hdldp_math::MathError) -> Self {
        FrameworkError::Math(e)
    }
}

impl From<hdldp_data::DataError> for FrameworkError {
    fn from(e: hdldp_data::DataError) -> Self {
        FrameworkError::Data(e)
    }
}

impl From<hdldp_mechanisms::MechanismError> for FrameworkError {
    fn from(e: hdldp_mechanisms::MechanismError) -> Self {
        FrameworkError::Mechanism(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = FrameworkError::InvalidParameter {
            name: "reports",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("reports"));
        let e: FrameworkError = hdldp_math::MathError::EmptyInput("x").into();
        assert!(std::error::Error::source(&e).is_some());
        let e: FrameworkError = hdldp_mechanisms::MechanismError::InvalidEpsilon(0.0).into();
        assert!(e.to_string().contains("mechanism"));
        let e: FrameworkError = hdldp_data::DataError::InvalidShape { reason: "y".into() }.into();
        assert!(e.to_string().contains("data"));
        let e = FrameworkError::LengthMismatch {
            expected: 3,
            actual: 4,
        };
        assert!(e.to_string().contains('3'));
    }
}
