//! # hdldp-framework
//!
//! The paper's first contribution: an analytical framework that predicts, for
//! *any* LDP mechanism and *any* dataset, how far the naively aggregated mean
//! `θ̂` will fall from the true mean `θ̄` — without running a single
//! experiment.
//!
//! The framework rests on the Lindeberg–Lévy central limit theorem:
//!
//! * **Lemma 2** — for an *unbounded* mechanism (value-independent noise), the
//!   per-dimension deviation `θ̂_j − θ̄_j` is asymptotically
//!   `N(E[N_ij], Var[N_ij]/r_j)`.
//! * **Lemma 3** — for a *bounded* mechanism (value-dependent moments), it is
//!   asymptotically `N(E[δ_ij], E[Var(t*_ij)]/r_j)` where the outer
//!   expectations are over the empirical distribution of the original values.
//! * **Theorem 1** — the `d`-dimensional deviation density factorises across
//!   dimensions, giving a closed-form multivariate normal density that can be
//!   integrated over any box `{|θ̂_j − θ̄_j| ≤ ξ_j}`.
//! * **Theorem 2** — a Berry–Esseen bound quantifies the CLT approximation
//!   error, decaying like `1/√r_j`.
//!
//! Modules:
//!
//! * [`deviation`] — the per-dimension Gaussian approximation (Lemmas 2/3).
//! * [`model`] — the multivariate deviation model (Theorem 1) and the box
//!   probabilities used to benchmark mechanisms and to derive the HDR4ME
//!   improvement guarantees (Theorems 3/4).
//! * [`benchmark`] — mechanism comparison at collector-chosen suprema
//!   (Section IV-C, Table II).
//! * [`berry_esseen`] — the approximation-error bound (Theorem 2) and the
//!   paper's §IV-D Laplace example.
//! * [`case_study`] — the complete Section IV-C case study configuration.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod benchmark;
pub mod berry_esseen;
pub mod case_study;
pub mod deviation;
pub mod empirical;
pub mod error;
pub mod model;

pub use benchmark::{BenchmarkRow, MechanismBenchmark};
pub use berry_esseen::{berry_esseen_bound, laplace_approximation_error};
pub use case_study::CaseStudy;
pub use deviation::DeviationApproximation;
pub use empirical::EmpiricalFit;
pub use error::FrameworkError;
pub use model::DeviationModel;

/// Convenience result alias for framework operations.
pub type Result<T> = std::result::Result<T, FrameworkError>;
