//! The multivariate deviation model of Theorem 1 and the probabilities that
//! drive both the mechanism benchmark and the HDR4ME guarantees.
//!
//! Because every dimension is perturbed independently, the density of the
//! `d`-dimensional deviation `θ̂ − θ̄` is the product of the per-dimension
//! Gaussian densities (Theorem 1). The quantity of interest is its integral
//! over a box `S = {|θ̂_j − θ̄_j| ≤ ξ_j ∀ j}`:
//!
//! * benchmarking (Section IV-C): the mechanism with the highest box
//!   probability at the collector's tolerated supremum wins;
//! * HDR4ME guarantees (Theorems 3 and 4): the re-calibrated mean improves on
//!   the naive one with probability at least `1 − ∫_box f`, with box half-width
//!   1 (L1) or 2 (L2).

use crate::{DeviationApproximation, FrameworkError};
use hdldp_data::{Dataset, DiscreteValueDistribution};
use hdldp_mechanisms::{Bound, Mechanism};

/// How finely to discretize continuous columns when building per-dimension
/// value distributions from a dataset (Lemma 3's "discretize with sampling").
const DEFAULT_VALUE_BUCKETS: usize = 64;

/// The multivariate Gaussian deviation model for a `d`-dimensional mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationModel {
    dimensions: Vec<DeviationApproximation>,
}

impl DeviationModel {
    /// Build a model from per-dimension approximations.
    ///
    /// # Errors
    /// Returns [`FrameworkError::InvalidParameter`] when no dimensions are given.
    pub fn new(dimensions: Vec<DeviationApproximation>) -> crate::Result<Self> {
        if dimensions.is_empty() {
            return Err(FrameworkError::InvalidParameter {
                name: "dimensions",
                reason: "the model needs at least one dimension".into(),
            });
        }
        Ok(Self { dimensions })
    }

    /// Build the model for a mechanism applied to every column of a dataset,
    /// with `reports` expected reports per dimension (`nm/d` in the paper).
    ///
    /// For bounded mechanisms each column's empirical value distribution is
    /// extracted (bucketed into at most 64 representative values); for
    /// unbounded mechanisms the value distribution is irrelevant and a trivial
    /// one is used.
    ///
    /// # Errors
    /// Propagates dataset-column and approximation errors.
    pub fn for_dataset(
        mechanism: &dyn Mechanism,
        dataset: &Dataset,
        reports: f64,
    ) -> crate::Result<Self> {
        let mut dims = Vec::with_capacity(dataset.dims());
        let trivial = DiscreteValueDistribution::new(vec![0.0], vec![1.0])?;
        for j in 0..dataset.dims() {
            let values = match mechanism.bound() {
                Bound::Unbounded => trivial.clone(),
                Bound::Bounded(_) => {
                    let column = dataset.column(j)?;
                    DiscreteValueDistribution::from_column_bucketed(&column, DEFAULT_VALUE_BUCKETS)?
                }
            };
            dims.push(DeviationApproximation::for_dimension(
                mechanism, &values, reports,
            )?);
        }
        Self::new(dims)
    }

    /// Build a model where every dimension shares the same value distribution
    /// (the setting of the Section IV-C case study).
    ///
    /// # Errors
    /// Propagates approximation errors.
    pub fn homogeneous(
        mechanism: &dyn Mechanism,
        values: &DiscreteValueDistribution,
        reports: f64,
        dims: usize,
    ) -> crate::Result<Self> {
        if dims == 0 {
            return Err(FrameworkError::InvalidParameter {
                name: "dims",
                reason: "need at least one dimension".into(),
            });
        }
        let one = DeviationApproximation::for_dimension(mechanism, values, reports)?;
        Self::new(vec![one; dims])
    }

    /// Number of dimensions `d`.
    pub fn dims(&self) -> usize {
        self.dimensions.len()
    }

    /// The per-dimension approximations.
    pub fn dimensions(&self) -> &[DeviationApproximation] {
        &self.dimensions
    }

    /// The deviation means `δ_j`.
    pub fn deltas(&self) -> Vec<f64> {
        self.dimensions.iter().map(|d| d.delta()).collect()
    }

    /// The deviation standard deviations `σ_j`.
    pub fn std_devs(&self) -> Vec<f64> {
        self.dimensions.iter().map(|d| d.std_dev()).collect()
    }

    /// Density of the deviation vector (Theorem 1, Equation 12).
    ///
    /// # Errors
    /// Returns [`FrameworkError::LengthMismatch`] when `deviation` has the
    /// wrong length.
    pub fn pdf(&self, deviation: &[f64]) -> crate::Result<f64> {
        Ok(self.log_pdf(deviation)?.exp())
    }

    /// Log-density of the deviation vector — preferred in high dimensions,
    /// where the plain density underflows.
    ///
    /// # Errors
    /// Returns [`FrameworkError::LengthMismatch`] when `deviation` has the
    /// wrong length.
    pub fn log_pdf(&self, deviation: &[f64]) -> crate::Result<f64> {
        if deviation.len() != self.dims() {
            return Err(FrameworkError::LengthMismatch {
                expected: self.dims(),
                actual: deviation.len(),
            });
        }
        let mut log_density = 0.0;
        for (dim, &x) in self.dimensions.iter().zip(deviation) {
            let sigma = dim.std_dev();
            let z = (x - dim.delta()) / sigma;
            log_density += -0.5 * z * z - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
        }
        Ok(log_density)
    }

    /// Probability that *every* dimension's deviation stays within its
    /// supremum: `∫_S f(θ̂ − θ̄)` with `S = {|θ̂_j − θ̄_j| ≤ ξ_j}`.
    ///
    /// # Errors
    /// Returns [`FrameworkError::LengthMismatch`] when `suprema` has the wrong
    /// length.
    pub fn box_probability(&self, suprema: &[f64]) -> crate::Result<f64> {
        if suprema.len() != self.dims() {
            return Err(FrameworkError::LengthMismatch {
                expected: self.dims(),
                actual: suprema.len(),
            });
        }
        Ok(self
            .dimensions
            .iter()
            .zip(suprema)
            .map(|(dim, &xi)| dim.prob_within(xi))
            .product())
    }

    /// [`DeviationModel::box_probability`] with the same supremum in every
    /// dimension.
    pub fn box_probability_uniform(&self, supremum: f64) -> f64 {
        self.dimensions
            .iter()
            .map(|dim| dim.prob_within(supremum))
            .product()
    }

    /// The probability lower bound of Theorem 3: HDR4ME with L1-regularization
    /// improves on the naive aggregation with probability at least
    /// `1 − ∫_{[-1,1]^d} f(θ̂ − θ̄)`.
    pub fn l1_improvement_probability(&self) -> f64 {
        1.0 - self.box_probability_uniform(1.0)
    }

    /// The probability lower bound of Theorem 4: HDR4ME with L2-regularization
    /// improves on the naive aggregation with probability at least
    /// `1 − ∫_{[-2,2]^d} f(θ̂ − θ̄)`.
    pub fn l2_improvement_probability(&self) -> f64 {
        1.0 - self.box_probability_uniform(2.0)
    }

    /// Per-dimension practical suprema `|δ_j| + z·σ_j`, the quantities HDR4ME
    /// uses as regularization weights (Lemmas 4 and 5).
    pub fn suprema(&self, z: f64) -> Vec<f64> {
        self.dimensions.iter().map(|d| d.supremum(z)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_data::UniformDataset;
    use hdldp_mechanisms::{build_mechanism, LaplaceMechanism, MechanismKind, PiecewiseMechanism};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn laplace_model(dims: usize, eps: f64, reports: f64) -> DeviationModel {
        let mech = LaplaceMechanism::new(eps).unwrap();
        let values = DiscreteValueDistribution::case_study();
        DeviationModel::homogeneous(&mech, &values, reports, dims).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(DeviationModel::new(vec![]).is_err());
        let mech = LaplaceMechanism::new(1.0).unwrap();
        let values = DiscreteValueDistribution::case_study();
        assert!(DeviationModel::homogeneous(&mech, &values, 100.0, 0).is_err());
        assert!(DeviationModel::homogeneous(&mech, &values, 100.0, 3).is_ok());
    }

    #[test]
    fn pdf_matches_product_of_univariate_densities() {
        let model = laplace_model(3, 1.0, 1000.0);
        let dev = [0.01, -0.02, 0.0];
        let product: f64 = model
            .dimensions()
            .iter()
            .zip(&dev)
            .map(|(d, &x)| d.pdf(x))
            .product();
        let joint = model.pdf(&dev).unwrap();
        assert!((joint - product).abs() / product < 1e-9);
        assert!(model.pdf(&[0.0; 2]).is_err());
    }

    #[test]
    fn log_pdf_survives_high_dimensionality() {
        // In 5,000 dimensions the plain density underflows; the log-density must stay finite.
        let model = laplace_model(5_000, 1.0, 1000.0);
        let dev = vec![0.0; 5_000];
        let log_p = model.log_pdf(&dev).unwrap();
        assert!(log_p.is_finite());
        // Each dimension contributes -ln(sigma) - 0.5 ln(2 pi); sigma ~ sqrt(8/1000).
        let sigma: f64 = (8.0f64 / 1000.0).sqrt();
        let expected = 5_000.0 * (-sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln());
        assert!((log_p - expected).abs() / expected.abs() < 1e-9);
    }

    #[test]
    fn box_probability_is_product_of_marginals() {
        let model = laplace_model(4, 1.0, 500.0);
        let xi = [0.1, 0.2, 0.05, 0.5];
        let direct: f64 = model
            .dimensions()
            .iter()
            .zip(&xi)
            .map(|(d, &x)| d.prob_within(x))
            .product();
        assert!((model.box_probability(&xi).unwrap() - direct).abs() < 1e-12);
        assert!(model.box_probability(&[0.1]).is_err());
    }

    #[test]
    fn box_probability_decays_with_dimensionality() {
        // The curse of dimensionality in one line: the probability that *all*
        // deviations stay small shrinks as d grows.
        let p10 = laplace_model(10, 0.5, 1000.0).box_probability_uniform(0.2);
        let p100 = laplace_model(100, 0.5, 1000.0).box_probability_uniform(0.2);
        let p1000 = laplace_model(1000, 0.5, 1000.0).box_probability_uniform(0.2);
        assert!(p10 > p100);
        assert!(p100 > p1000);
    }

    #[test]
    fn improvement_probabilities_increase_with_dimensionality_and_noise() {
        // With small per-dimension budget and many dimensions, the Theorem 3/4
        // probabilities approach 1 — HDR4ME is almost surely an improvement.
        let noisy = laplace_model(200, 0.01, 100.0);
        assert!(noisy.l1_improvement_probability() > 0.99);
        assert!(noisy.l2_improvement_probability() > 0.9);
        // With a generous budget and few dimensions they drop towards 0 — the
        // regime where the paper warns the re-calibration can be harmful.
        let clean = laplace_model(2, 10.0, 10_000.0);
        assert!(clean.l1_improvement_probability() < 0.01);
        assert!(clean.l2_improvement_probability() < 0.01);
        // L1's threshold (1) is easier to exceed than L2's (2).
        let mid = laplace_model(50, 0.2, 500.0);
        assert!(mid.l1_improvement_probability() >= mid.l2_improvement_probability());
    }

    #[test]
    fn for_dataset_uses_column_distributions_for_bounded_mechanisms() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = UniformDataset::new(2000, 5).unwrap().generate(&mut rng);
        let mech = PiecewiseMechanism::new(0.5).unwrap();
        let model = DeviationModel::for_dataset(&mech, &data, 400.0).unwrap();
        assert_eq!(model.dims(), 5);
        // Piecewise is unbiased: all deltas are zero.
        assert!(model.deltas().iter().all(|&d| d == 0.0));
        // Variances are positive and of the expected order (per-sample var / r).
        for sd in model.std_devs() {
            assert!(sd > 0.0 && sd.is_finite());
        }
    }

    #[test]
    fn for_dataset_works_with_every_built_in_mechanism() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = UniformDataset::new(500, 3).unwrap().generate(&mut rng);
        for kind in MechanismKind::ALL {
            let mech = build_mechanism(kind, 0.5).unwrap();
            let model = DeviationModel::for_dataset(mech.as_ref(), &data, 100.0).unwrap();
            assert_eq!(model.dims(), 3, "{kind:?}");
            assert!(model.box_probability_uniform(10.0) > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn suprema_scale_with_z() {
        let model = laplace_model(3, 1.0, 100.0);
        let s2 = model.suprema(2.0);
        let s3 = model.suprema(3.0);
        for (a, b) in s2.iter().zip(&s3) {
            assert!(b > a);
        }
        assert_eq!(s2.len(), 3);
    }
}
