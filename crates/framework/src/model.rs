//! The multivariate deviation model of Theorem 1 and the probabilities that
//! drive both the mechanism benchmark and the HDR4ME guarantees.
//!
//! Because every dimension is perturbed independently, the density of the
//! `d`-dimensional deviation `θ̂ − θ̄` is the product of the per-dimension
//! Gaussian densities (Theorem 1). The quantity of interest is its integral
//! over a box `S = {|θ̂_j − θ̄_j| ≤ ξ_j ∀ j}`:
//!
//! * benchmarking (Section IV-C): the mechanism with the highest box
//!   probability at the collector's tolerated supremum wins;
//! * HDR4ME guarantees (Theorems 3 and 4): the re-calibrated mean improves on
//!   the naive one with probability at least `1 − ∫_box f`, with box half-width
//!   1 (L1) or 2 (L2).

use crate::{DeviationApproximation, FrameworkError};
use hdldp_data::{ColumnProfiles, Dataset, DiscreteValueDistribution};
use hdldp_math::erf::erf;
use hdldp_math::ErfCache;
use hdldp_mechanisms::{Bound, Mechanism};
use rayon::prelude::*;

/// How finely to discretize continuous columns when building per-dimension
/// value distributions from a dataset (Lemma 3's "discretize with sampling").
const DEFAULT_VALUE_BUCKETS: usize = 64;

/// Minimum dimension count before the batched box-probability passes route
/// `erf` through a memo table: below this the table's initialisation costs
/// more than the handful of direct evaluations it would save.
const ERF_CACHE_MIN_DIMS: usize = 32;

/// Minimum dimension count before [`DeviationModel::for_dataset`] fans the
/// per-dimension moment computations out across the rayon shim's threads (and
/// only when more than one thread is actually available).
const PARALLEL_MIN_DIMS: usize = 256;

/// The multivariate Gaussian deviation model for a `d`-dimensional mechanism.
///
/// Alongside the per-dimension [`DeviationApproximation`]s the model keeps the
/// deviation means and standard deviations in flat structure-of-arrays
/// buffers, so the box-probability and density hot paths sweep two contiguous
/// `&[f64]` slices instead of chasing per-dimension method calls.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationModel {
    dimensions: Vec<DeviationApproximation>,
    /// `δ_j` per dimension (same values as `dimensions[j].delta()`).
    deltas: Vec<f64>,
    /// `σ_j` per dimension (same values as `dimensions[j].std_dev()`).
    sigmas: Vec<f64>,
}

impl DeviationModel {
    /// Build a model from per-dimension approximations.
    ///
    /// # Errors
    /// Returns [`FrameworkError::InvalidParameter`] when no dimensions are given.
    pub fn new(dimensions: Vec<DeviationApproximation>) -> crate::Result<Self> {
        if dimensions.is_empty() {
            return Err(FrameworkError::InvalidParameter {
                name: "dimensions",
                reason: "the model needs at least one dimension".into(),
            });
        }
        let deltas = dimensions.iter().map(|d| d.delta()).collect();
        let sigmas = dimensions.iter().map(|d| d.std_dev()).collect();
        Ok(Self {
            dimensions,
            deltas,
            sigmas,
        })
    }

    /// Build the model for a mechanism applied to every column of a dataset,
    /// with `reports` expected reports per dimension (`nm/d` in the paper).
    ///
    /// For bounded mechanisms each column's empirical value distribution is
    /// extracted (bucketed into at most 64 representative values); for
    /// unbounded mechanisms the value distribution is irrelevant and a trivial
    /// one is used.
    ///
    /// The column distributions come from the dataset's memoised blocked
    /// column profiles ([`Dataset::column_profiles`]): the first model built
    /// over a dataset pays one cache-friendly sweep, and every further
    /// mechanism × ε configuration over the same dataset reuses it. For
    /// unbounded mechanisms the (value-independent) approximation is computed
    /// once and replicated. Dimension counts of `PARALLEL_MIN_DIMS` and up
    /// are fanned out across threads when the machine has them. All of these
    /// paths produce results identical to
    /// [`DeviationModel::for_dataset_reference`].
    ///
    /// # Errors
    /// Propagates dataset-column and approximation errors.
    pub fn for_dataset(
        mechanism: &dyn Mechanism,
        dataset: &Dataset,
        reports: f64,
    ) -> crate::Result<Self> {
        match mechanism.bound() {
            Bound::Unbounded => {
                // Lemma 2: the approximation is value-independent, so compute
                // it once and replicate instead of re-deriving it per column.
                let trivial = DiscreteValueDistribution::new(vec![0.0], vec![1.0])?;
                let one = DeviationApproximation::for_dimension(mechanism, &trivial, reports)?;
                Self::new(vec![one; dataset.dims()])
            }
            Bound::Bounded(_) => {
                let profiles = dataset.column_profiles(DEFAULT_VALUE_BUCKETS)?;
                Self::new(Self::approximations_from_profiles(
                    mechanism, &profiles, reports,
                )?)
            }
        }
    }

    /// Per-dimension approximations from precomputed column profiles,
    /// optionally fanned out across threads.
    fn approximations_from_profiles(
        mechanism: &dyn Mechanism,
        profiles: &ColumnProfiles,
        reports: f64,
    ) -> crate::Result<Vec<DeviationApproximation>> {
        let dims = profiles.dims();
        let one_dim = |j: usize| -> crate::Result<DeviationApproximation> {
            let values = profiles.distribution(j)?;
            DeviationApproximation::for_dimension(mechanism, &values, reports)
        };
        if dims >= PARALLEL_MIN_DIMS && rayon::current_num_threads() > 1 {
            let chunk = dims.div_ceil(rayon::current_num_threads());
            let starts: Vec<usize> = (0..dims).step_by(chunk).collect();
            let chunks: Vec<crate::Result<Vec<DeviationApproximation>>> = starts
                .into_par_iter()
                .map(|start| (start..(start + chunk).min(dims)).map(one_dim).collect())
                .collect();
            let mut out = Vec::with_capacity(dims);
            for chunk in chunks {
                out.extend(chunk?);
            }
            Ok(out)
        } else {
            (0..dims).map(one_dim).collect()
        }
    }

    /// The pre-optimisation implementation of [`DeviationModel::for_dataset`]:
    /// a strided column gather and a fresh bucketing pass per dimension, with
    /// the Lemma 3 moments taken as two separate expectation closures.
    ///
    /// Kept as an independently-coded oracle: the equivalence tests assert the
    /// fast path agrees with this to within 1e-12 (in practice bit-for-bit),
    /// and the benchmark suite records the ratio between the two.
    ///
    /// # Errors
    /// Propagates dataset-column and approximation errors.
    pub fn for_dataset_reference(
        mechanism: &dyn Mechanism,
        dataset: &Dataset,
        reports: f64,
    ) -> crate::Result<Self> {
        let mut dims = Vec::with_capacity(dataset.dims());
        let trivial = DiscreteValueDistribution::new(vec![0.0], vec![1.0])?;
        for j in 0..dataset.dims() {
            let values = match mechanism.bound() {
                Bound::Unbounded => trivial.clone(),
                Bound::Bounded(_) => {
                    let column = dataset.column(j)?;
                    DiscreteValueDistribution::from_column_bucketed(&column, DEFAULT_VALUE_BUCKETS)?
                }
            };
            if !(reports.is_finite() && reports > 0.0) {
                return Err(FrameworkError::InvalidParameter {
                    name: "reports",
                    reason: format!("must be positive and finite, got {reports}"),
                });
            }
            let delta = values.expectation(|v| mechanism.bias(v));
            let per_sample_variance = values.expectation(|v| mechanism.variance(v));
            dims.push(DeviationApproximation::from_moments(
                delta,
                per_sample_variance,
                reports,
            )?);
        }
        Self::new(dims)
    }

    /// Build a model where every dimension shares the same value distribution
    /// (the setting of the Section IV-C case study).
    ///
    /// # Errors
    /// Propagates approximation errors.
    pub fn homogeneous(
        mechanism: &dyn Mechanism,
        values: &DiscreteValueDistribution,
        reports: f64,
        dims: usize,
    ) -> crate::Result<Self> {
        if dims == 0 {
            return Err(FrameworkError::InvalidParameter {
                name: "dims",
                reason: "need at least one dimension".into(),
            });
        }
        let one = DeviationApproximation::for_dimension(mechanism, values, reports)?;
        Self::new(vec![one; dims])
    }

    /// Number of dimensions `d`.
    pub fn dims(&self) -> usize {
        self.dimensions.len()
    }

    /// The per-dimension approximations.
    pub fn dimensions(&self) -> &[DeviationApproximation] {
        &self.dimensions
    }

    /// The deviation means `δ_j`.
    pub fn deltas(&self) -> Vec<f64> {
        self.deltas.clone()
    }

    /// The deviation standard deviations `σ_j`.
    pub fn std_devs(&self) -> Vec<f64> {
        self.sigmas.clone()
    }

    /// Density of the deviation vector (Theorem 1, Equation 12).
    ///
    /// # Errors
    /// Returns [`FrameworkError::LengthMismatch`] when `deviation` has the
    /// wrong length.
    pub fn pdf(&self, deviation: &[f64]) -> crate::Result<f64> {
        Ok(self.log_pdf(deviation)?.exp())
    }

    /// Log-density of the deviation vector — preferred in high dimensions,
    /// where the plain density underflows.
    ///
    /// # Errors
    /// Returns [`FrameworkError::LengthMismatch`] when `deviation` has the
    /// wrong length.
    pub fn log_pdf(&self, deviation: &[f64]) -> crate::Result<f64> {
        if deviation.len() != self.dims() {
            return Err(FrameworkError::LengthMismatch {
                expected: self.dims(),
                actual: deviation.len(),
            });
        }
        // Batched sweep over the flat (delta, sigma) buffers: the per-call
        // sqrt behind `std_dev()` is gone, the 2π constant is hoisted, and
        // `ln(σ)` is reused across runs of equal sigmas (homogeneous models
        // pay for one logarithm instead of d).
        let half_ln_two_pi = 0.5 * (2.0 * std::f64::consts::PI).ln();
        let mut log_density = 0.0;
        let mut prev: Option<(f64, f64)> = None;
        for ((&delta, &sigma), &x) in self.deltas.iter().zip(&self.sigmas).zip(deviation) {
            let ln_sigma = match prev {
                Some((s, ln_s)) if s == sigma => ln_s,
                _ => {
                    let ln_s = sigma.ln();
                    prev = Some((sigma, ln_s));
                    ln_s
                }
            };
            let z = (x - delta) / sigma;
            log_density += -0.5 * z * z - ln_sigma - half_ln_two_pi;
        }
        Ok(log_density)
    }

    /// Probability that *every* dimension's deviation stays within its
    /// supremum: `∫_S f(θ̂ − θ̄)` with `S = {|θ̂_j − θ̄_j| ≤ ξ_j}`.
    ///
    /// # Errors
    /// Returns [`FrameworkError::LengthMismatch`] when `suprema` has the wrong
    /// length.
    pub fn box_probability(&self, suprema: &[f64]) -> crate::Result<f64> {
        if suprema.len() != self.dims() {
            return Err(FrameworkError::LengthMismatch {
                expected: self.dims(),
                actual: suprema.len(),
            });
        }
        Ok(self.box_probability_batch(|j| suprema[j]))
    }

    /// [`DeviationModel::box_probability`] with the same supremum in every
    /// dimension.
    pub fn box_probability_uniform(&self, supremum: f64) -> f64 {
        self.box_probability_batch(|_| supremum)
    }

    /// Batched product of per-dimension `prob_within` factors.
    ///
    /// One sweep over the flat (delta, sigma) buffers with every invariant
    /// hoisted; runs of identical `(δ, σ, ξ)` triples (replicated and
    /// homogeneous models) reuse the previous factor outright, and on larger
    /// models the two `erf` evaluations per distinct triple go through a
    /// bit-keyed [`ErfCache`]. Every factor is exactly
    /// [`DeviationApproximation::prob_within`] — same expressions, same
    /// rounding — so the product matches the scalar path bit for bit.
    fn box_probability_batch(&self, supremum: impl Fn(usize) -> f64) -> f64 {
        let dims = self.deltas.len();
        let mut cache = if dims >= ERF_CACHE_MIN_DIMS {
            Some(ErfCache::new())
        } else {
            None
        };
        let mut product = 1.0;
        let mut prev: Option<(f64, f64, f64, f64)> = None;
        for j in 0..dims {
            let delta = self.deltas[j];
            let sigma = self.sigmas[j];
            let xi = supremum(j);
            let factor = match prev {
                Some((pd, ps, px, pf)) if pd == delta && ps == sigma && px == xi => pf,
                _ => {
                    let f = prob_within_factor(delta, sigma, xi, cache.as_mut());
                    prev = Some((delta, sigma, xi, f));
                    f
                }
            };
            product *= factor;
        }
        product
    }

    /// The probability lower bound of Theorem 3: HDR4ME with L1-regularization
    /// improves on the naive aggregation with probability at least
    /// `1 − ∫_{[-1,1]^d} f(θ̂ − θ̄)`.
    pub fn l1_improvement_probability(&self) -> f64 {
        1.0 - self.box_probability_uniform(1.0)
    }

    /// The probability lower bound of Theorem 4: HDR4ME with L2-regularization
    /// improves on the naive aggregation with probability at least
    /// `1 − ∫_{[-2,2]^d} f(θ̂ − θ̄)`.
    pub fn l2_improvement_probability(&self) -> f64 {
        1.0 - self.box_probability_uniform(2.0)
    }

    /// Per-dimension practical suprema `|δ_j| + z·σ_j`, the quantities HDR4ME
    /// uses as regularization weights (Lemmas 4 and 5).
    pub fn suprema(&self, z: f64) -> Vec<f64> {
        self.dimensions.iter().map(|d| d.supremum(z)).collect()
    }
}

/// `P[|N(δ, σ²)| ≤ ξ]`, written against raw (delta, sigma) so the batched
/// passes avoid rebuilding a `Normal` per factor.
///
/// Expression-for-expression the same computation as
/// [`DeviationApproximation::prob_within`] → `Normal::prob_in_interval(-ξ, ξ)`
/// → two `Normal::cdf` calls, so it rounds identically; the optional memo
/// table only short-circuits repeated `erf` arguments with their exact
/// previously computed results.
fn prob_within_factor(delta: f64, sigma: f64, xi: f64, cache: Option<&mut ErfCache>) -> f64 {
    if xi <= 0.0 {
        return 0.0;
    }
    let denom = sigma * std::f64::consts::SQRT_2;
    let z_hi = (xi - delta) / denom;
    let z_lo = (-xi - delta) / denom;
    let (erf_hi, erf_lo) = match cache {
        Some(table) => (table.erf(z_hi), table.erf(z_lo)),
        None => (erf(z_hi), erf(z_lo)),
    };
    (0.5 * (1.0 + erf_hi) - 0.5 * (1.0 + erf_lo)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_data::UniformDataset;
    use hdldp_mechanisms::{build_mechanism, LaplaceMechanism, MechanismKind, PiecewiseMechanism};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn laplace_model(dims: usize, eps: f64, reports: f64) -> DeviationModel {
        let mech = LaplaceMechanism::new(eps).unwrap();
        let values = DiscreteValueDistribution::case_study();
        DeviationModel::homogeneous(&mech, &values, reports, dims).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(DeviationModel::new(vec![]).is_err());
        let mech = LaplaceMechanism::new(1.0).unwrap();
        let values = DiscreteValueDistribution::case_study();
        assert!(DeviationModel::homogeneous(&mech, &values, 100.0, 0).is_err());
        assert!(DeviationModel::homogeneous(&mech, &values, 100.0, 3).is_ok());
    }

    #[test]
    fn pdf_matches_product_of_univariate_densities() {
        let model = laplace_model(3, 1.0, 1000.0);
        let dev = [0.01, -0.02, 0.0];
        let product: f64 = model
            .dimensions()
            .iter()
            .zip(&dev)
            .map(|(d, &x)| d.pdf(x))
            .product();
        let joint = model.pdf(&dev).unwrap();
        assert!((joint - product).abs() / product < 1e-9);
        assert!(model.pdf(&[0.0; 2]).is_err());
    }

    #[test]
    fn log_pdf_survives_high_dimensionality() {
        // In 5,000 dimensions the plain density underflows; the log-density must stay finite.
        let model = laplace_model(5_000, 1.0, 1000.0);
        let dev = vec![0.0; 5_000];
        let log_p = model.log_pdf(&dev).unwrap();
        assert!(log_p.is_finite());
        // Each dimension contributes -ln(sigma) - 0.5 ln(2 pi); sigma ~ sqrt(8/1000).
        let sigma: f64 = (8.0f64 / 1000.0).sqrt();
        let expected = 5_000.0 * (-sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln());
        assert!((log_p - expected).abs() / expected.abs() < 1e-9);
    }

    #[test]
    fn box_probability_is_product_of_marginals() {
        let model = laplace_model(4, 1.0, 500.0);
        let xi = [0.1, 0.2, 0.05, 0.5];
        let direct: f64 = model
            .dimensions()
            .iter()
            .zip(&xi)
            .map(|(d, &x)| d.prob_within(x))
            .product();
        assert!((model.box_probability(&xi).unwrap() - direct).abs() < 1e-12);
        assert!(model.box_probability(&[0.1]).is_err());
    }

    #[test]
    fn box_probability_decays_with_dimensionality() {
        // The curse of dimensionality in one line: the probability that *all*
        // deviations stay small shrinks as d grows.
        let p10 = laplace_model(10, 0.5, 1000.0).box_probability_uniform(0.2);
        let p100 = laplace_model(100, 0.5, 1000.0).box_probability_uniform(0.2);
        let p1000 = laplace_model(1000, 0.5, 1000.0).box_probability_uniform(0.2);
        assert!(p10 > p100);
        assert!(p100 > p1000);
    }

    #[test]
    fn improvement_probabilities_increase_with_dimensionality_and_noise() {
        // With small per-dimension budget and many dimensions, the Theorem 3/4
        // probabilities approach 1 — HDR4ME is almost surely an improvement.
        let noisy = laplace_model(200, 0.01, 100.0);
        assert!(noisy.l1_improvement_probability() > 0.99);
        assert!(noisy.l2_improvement_probability() > 0.9);
        // With a generous budget and few dimensions they drop towards 0 — the
        // regime where the paper warns the re-calibration can be harmful.
        let clean = laplace_model(2, 10.0, 10_000.0);
        assert!(clean.l1_improvement_probability() < 0.01);
        assert!(clean.l2_improvement_probability() < 0.01);
        // L1's threshold (1) is easier to exceed than L2's (2).
        let mid = laplace_model(50, 0.2, 500.0);
        assert!(mid.l1_improvement_probability() >= mid.l2_improvement_probability());
    }

    #[test]
    fn for_dataset_uses_column_distributions_for_bounded_mechanisms() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = UniformDataset::new(2000, 5).unwrap().generate(&mut rng);
        let mech = PiecewiseMechanism::new(0.5).unwrap();
        let model = DeviationModel::for_dataset(&mech, &data, 400.0).unwrap();
        assert_eq!(model.dims(), 5);
        // Piecewise is unbiased: all deltas are zero.
        assert!(model.deltas().iter().all(|&d| d == 0.0));
        // Variances are positive and of the expected order (per-sample var / r).
        for sd in model.std_devs() {
            assert!(sd > 0.0 && sd.is_finite());
        }
    }

    #[test]
    fn for_dataset_works_with_every_built_in_mechanism() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = UniformDataset::new(500, 3).unwrap().generate(&mut rng);
        for kind in MechanismKind::ALL {
            let mech = build_mechanism(kind, 0.5).unwrap();
            let model = DeviationModel::for_dataset(mech.as_ref(), &data, 100.0).unwrap();
            assert_eq!(model.dims(), 3, "{kind:?}");
            assert!(model.box_probability_uniform(10.0) > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn fast_for_dataset_matches_reference_for_all_mechanisms() {
        let mut rng = StdRng::seed_from_u64(41);
        let data = UniformDataset::new(400, 17).unwrap().generate(&mut rng);
        for kind in MechanismKind::ALL {
            let mech = build_mechanism(kind, 0.3).unwrap();
            let fast = DeviationModel::for_dataset(mech.as_ref(), &data, 250.0).unwrap();
            let reference =
                DeviationModel::for_dataset_reference(mech.as_ref(), &data, 250.0).unwrap();
            assert_eq!(fast, reference, "{kind:?}");
        }
    }

    #[test]
    fn reference_for_dataset_validates_reports() {
        let mut rng = StdRng::seed_from_u64(8);
        let data = UniformDataset::new(50, 2).unwrap().generate(&mut rng);
        let mech = PiecewiseMechanism::new(0.5).unwrap();
        assert!(DeviationModel::for_dataset_reference(&mech, &data, 0.0).is_err());
        assert!(DeviationModel::for_dataset(&mech, &data, 0.0).is_err());
    }

    #[test]
    fn batched_box_probability_matches_scalar_product_with_cache_engaged() {
        // 100 distinct dimensions: above ERF_CACHE_MIN_DIMS, so the memo table
        // and run-length reuse are both exercised; the result must still be
        // exactly the scalar per-dimension product.
        let dims: Vec<DeviationApproximation> = (0..100)
            .map(|j| {
                let delta = if j % 3 == 0 { 0.0 } else { 0.01 * j as f64 };
                DeviationApproximation::from_moments(delta, 1.0 + j as f64 * 0.05, 500.0).unwrap()
            })
            .collect();
        let model = DeviationModel::new(dims).unwrap();
        let suprema: Vec<f64> = (0..100).map(|j| 0.05 + 0.01 * (j % 7) as f64).collect();
        let scalar: f64 = model
            .dimensions()
            .iter()
            .zip(&suprema)
            .map(|(d, &xi)| d.prob_within(xi))
            .product();
        let batched = model.box_probability(&suprema).unwrap();
        assert_eq!(batched.to_bits(), scalar.to_bits());
        let scalar_uniform: f64 = model
            .dimensions()
            .iter()
            .map(|d| d.prob_within(0.12))
            .product();
        assert_eq!(
            model.box_probability_uniform(0.12).to_bits(),
            scalar_uniform.to_bits()
        );
    }

    #[test]
    fn batched_log_pdf_matches_per_dimension_sum() {
        let model = laplace_model(64, 0.7, 800.0);
        let dev: Vec<f64> = (0..64).map(|j| 0.001 * (j as f64 - 32.0)).collect();
        let expected: f64 = model
            .dimensions()
            .iter()
            .zip(&dev)
            .map(|(d, &x)| {
                let sigma = d.std_dev();
                let z = (x - d.delta()) / sigma;
                -0.5 * z * z - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
            })
            .sum();
        let got = model.log_pdf(&dev).unwrap();
        assert!((got - expected).abs() <= 1e-12 * expected.abs().max(1.0));
    }

    #[test]
    fn suprema_scale_with_z() {
        let model = laplace_model(3, 1.0, 100.0);
        let s2 = model.suprema(2.0);
        let s3 = model.suprema(3.0);
        for (a, b) in s2.iter().zip(&s3) {
            assert!(b > a);
        }
        assert_eq!(s2.len(), 3);
    }
}
