//! A small keyed memo cache for expensive special-function evaluations.
//!
//! The analytical hot paths evaluate `erf` once or twice per dimension, and in
//! the regimes the paper cares about (homogeneous case studies, replicated
//! per-dimension approximations, uniform suprema) the *same* argument recurs
//! thousands of times. [`ErfCache`] is a direct-mapped memo table keyed on the
//! exact bit pattern of the argument: a hit returns the previously computed
//! value (bit-for-bit identical to recomputing, since [`erf`] is
//! deterministic), a miss computes and replaces the slot.
//!
//! The table is fixed-size and allocation-free after construction, so callers
//! can keep one per batch pass without touching the allocator in the loop.

use crate::erf::erf;

/// Number of slots in the direct-mapped table. A power of two so the index
/// mask is a single AND; 256 slots (4 KiB) cover the repeated-argument
/// workloads the framework produces while staying cache-resident.
const SLOTS: usize = 256;

/// Sentinel key marking an empty slot. This is the bit pattern of one
/// particular NaN; NaN arguments are answered before the table is consulted,
/// so no valid entry can ever carry this key.
const EMPTY: u64 = f64::NAN.to_bits();

/// A direct-mapped memo table for [`erf`] keyed on the argument's bits.
#[derive(Debug, Clone)]
pub struct ErfCache {
    keys: [u64; SLOTS],
    values: [f64; SLOTS],
    hits: u64,
    misses: u64,
}

impl Default for ErfCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ErfCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self {
            keys: [EMPTY; SLOTS],
            values: [0.0; SLOTS],
            hits: 0,
            misses: 0,
        }
    }

    /// Mix the key bits into a table index (SplitMix64-style finalizer).
    #[inline]
    fn slot(bits: u64) -> usize {
        let mut h = bits;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h as usize) & (SLOTS - 1)
    }

    /// `erf(x)`, served from the memo table when `x` was seen before.
    ///
    /// The returned value is always exactly what [`erf`] would return: the
    /// cache is keyed on the full bit pattern, so there are no approximate
    /// matches, and a collision simply evicts the older entry.
    // hot-path: one memo probe per erf evaluation in the analytical loops
    #[inline]
    pub fn erf(&mut self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        let bits = x.to_bits();
        debug_assert_ne!(
            bits, EMPTY,
            "non-NaN argument cannot collide with the empty-slot sentinel"
        );
        let slot = Self::slot(bits);
        debug_assert!(slot < SLOTS, "slot mask must stay within the table");
        if self.keys[slot] == bits {
            self.hits += 1;
            return self.values[slot];
        }
        let value = erf(x);
        self.keys[slot] = bits;
        self.values[slot] = value;
        self.misses += 1;
        value
    }

    /// The standard normal CDF `Φ(z) = (1 + erf(z/√2))/2`, memoised through
    /// the same table. The caller passes the *already scaled* erf argument
    /// `z/√2` so that repeated (mean, sigma, bound) triples collapse onto the
    /// same key.
    #[inline]
    pub fn phi_from_scaled(&mut self, scaled: f64) -> f64 {
        0.5 * (1.0 + self.erf(scaled))
    }

    /// Number of lookups answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_values_match_direct_evaluation_exactly() {
        let mut cache = ErfCache::new();
        for &x in &[-3.0, -0.5, 0.0, 1e-12, 0.7, 2.5, 6.0] {
            assert_eq!(cache.erf(x).to_bits(), erf(x).to_bits(), "x = {x}");
            // Second lookup is a hit and still exact.
            assert_eq!(cache.erf(x).to_bits(), erf(x).to_bits(), "x = {x}");
        }
        assert_eq!(cache.hits(), 7);
        assert_eq!(cache.misses(), 7);
    }

    #[test]
    fn repeated_argument_hits_the_table() {
        let mut cache = ErfCache::new();
        for _ in 0..1000 {
            cache.erf(0.123_456);
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 999);
    }

    #[test]
    fn nan_bypasses_the_table() {
        let mut cache = ErfCache::new();
        assert!(cache.erf(f64::NAN).is_nan());
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn collisions_evict_but_stay_correct() {
        // Hammer far more distinct keys than slots: every answer must still be
        // exact even though entries keep getting evicted.
        let mut cache = ErfCache::new();
        for i in 0..4096 {
            let x = (i as f64) * 1e-3 - 2.0;
            assert_eq!(cache.erf(x).to_bits(), erf(x).to_bits());
        }
    }

    #[test]
    fn phi_matches_normal_cdf_formula() {
        let mut cache = ErfCache::new();
        let z = 1.3f64;
        let direct = 0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2));
        let cached = cache.phi_from_scaled(z / std::f64::consts::SQRT_2);
        assert_eq!(cached.to_bits(), direct.to_bits());
    }

    #[test]
    fn negative_zero_and_positive_zero_are_distinct_keys() {
        // -0.0 and 0.0 have different bit patterns, so they occupy different
        // slots; both must still return exactly what `erf` returns.
        let mut cache = ErfCache::new();
        assert_eq!(cache.erf(0.0).to_bits(), erf(0.0).to_bits());
        assert_eq!(cache.erf(-0.0).to_bits(), erf(-0.0).to_bits());
        assert_eq!(cache.erf(-0.0).to_bits(), erf(-0.0).to_bits());
    }
}
