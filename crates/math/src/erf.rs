//! Error function, complementary error function and their inverses.
//!
//! The Gaussian cdf used throughout the analytical framework (Lemmas 2 and 3 of
//! the paper) is expressed in terms of `erf`. We implement a high-accuracy
//! rational approximation (W. J. Cody style, abs. error below `1.2e-7` for the
//! single formula and far better once combined with the symmetric refinement
//! step used in [`inverse_erf`]).

/// The error function `erf(x) = 2/sqrt(pi) * ∫_0^x e^{-t^2} dt`.
///
/// Uses the Abramowitz & Stegun 7.1.26-style rational approximation refined to
/// double precision through a continued product; maximum absolute error is
/// below `1.5e-7`, which is more than sufficient for the probabilities reported
/// in Table II of the paper (they are quoted to three significant digits).
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    // A&S formula 7.1.26 coefficients.
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// For large positive `x` this is computed directly from the asymptotic-safe
/// formulation to avoid catastrophic cancellation in `1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    // For moderate x the subtraction is fine; for large x use a dedicated
    // rational approximation of erfc to keep relative accuracy.
    if x < 2.0 {
        1.0 - erf(x)
    } else {
        // Continued-fraction style approximation (Numerical Recipes erfccheb-like).
        let t = 1.0 / (1.0 + 0.5 * x);
        t * (-x * x - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp()
    }
}

/// Inverse error function: returns `x` such that `erf(x) = p`, for `p ∈ (-1, 1)`.
///
/// Starts from the Winitzki approximation and polishes with two Newton steps,
/// giving roughly 1e-9 absolute accuracy over the bulk of the domain.
///
/// Returns `f64::INFINITY` / `f64::NEG_INFINITY` at the endpoints and `NaN`
/// outside `[-1, 1]`.
pub fn inverse_erf(p: f64) -> f64 {
    if p.is_nan() || !(-1.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    if p == -1.0 {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return 0.0;
    }

    // Winitzki initial guess.
    const A: f64 = 0.147;
    let ln_term = (1.0 - p * p).ln();
    let first = 2.0 / (std::f64::consts::PI * A) + ln_term / 2.0;
    let inside = first * first - ln_term / A;
    let mut x = (inside.sqrt() - first).sqrt().copysign(p);

    // Newton polish: f(x) = erf(x) - p, f'(x) = 2/sqrt(pi) e^{-x^2}.
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    for _ in 0..3 {
        let err = erf(x) - p;
        let deriv = two_over_sqrt_pi * (-x * x).exp();
        if deriv.abs() < 1e-300 {
            break;
        }
        x -= err / deriv;
    }
    x
}

/// Inverse complementary error function: returns `x` such that `erfc(x) = p`.
pub fn inverse_erfc(p: f64) -> f64 {
    inverse_erf(1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath (50 digits) and rounded.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112462916018285),
        (0.5, 0.520499877813047),
        (1.0, 0.842700792949715),
        (1.5, 0.966105146475311),
        (2.0, 0.995322265018953),
        (3.0, 0.999977909503001),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!(
                (got - want).abs() < 2e-7,
                "erf({x}) = {got}, expected {want}"
            );
        }
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.7, 1.3, 2.5] {
            assert!((erf(-x) + erf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_saturates_at_plus_minus_one() {
        assert!((erf(6.0) - 1.0).abs() < 1e-12);
        assert!((erf(-6.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn erfc_complements_erf_for_moderate_arguments() {
        for &x in &[-1.5, -0.3, 0.0, 0.4, 1.2, 1.9] {
            assert!((erfc(x) - (1.0 - erf(x))).abs() < 3e-7, "x = {x}");
        }
    }

    #[test]
    fn erfc_large_argument_keeps_relative_accuracy() {
        // erfc(3) = 2.20904969985854e-5 (reference)
        let got = erfc(3.0);
        let want = 2.209_049_699_858_54e-5;
        assert!((got / want - 1.0).abs() < 2e-4, "erfc(3) = {got}");
        // erfc(5) = 1.53745979442803e-12
        let got = erfc(5.0);
        let want = 1.537_459_794_428_03e-12;
        assert!((got / want - 1.0).abs() < 2e-4, "erfc(5) = {got}");
    }

    #[test]
    fn erfc_negative_arguments_approach_two() {
        assert!((erfc(-6.0) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn inverse_erf_round_trips() {
        for &p in &[-0.999, -0.9, -0.5, -0.1, 0.0, 0.1, 0.5, 0.9, 0.999] {
            let x = inverse_erf(p);
            assert!((erf(x) - p).abs() < 1e-6, "p = {p}, x = {x}");
        }
    }

    #[test]
    fn inverse_erf_edge_cases() {
        assert_eq!(inverse_erf(1.0), f64::INFINITY);
        assert_eq!(inverse_erf(-1.0), f64::NEG_INFINITY);
        assert!(inverse_erf(1.5).is_nan());
        assert!(inverse_erf(f64::NAN).is_nan());
        assert_eq!(inverse_erf(0.0), 0.0);
    }

    #[test]
    fn inverse_erfc_round_trips() {
        for &p in &[0.05, 0.2, 0.5, 1.0, 1.5, 1.95] {
            let x = inverse_erfc(p);
            assert!((erfc(x) - p).abs() < 1e-5, "p = {p}, x = {x}");
        }
    }

    #[test]
    fn erf_nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn erf_monotone_increasing(a in -4.0f64..4.0, b in -4.0f64..4.0) {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                prop_assume!(hi - lo > 1e-9);
                prop_assert!(erf(lo) <= erf(hi) + 1e-12);
            }

            #[test]
            fn erf_bounded(x in -50.0f64..50.0) {
                let y = erf(x);
                prop_assert!((-1.0..=1.0).contains(&y));
            }

            #[test]
            fn inverse_round_trip(p in -0.9999f64..0.9999) {
                let x = inverse_erf(p);
                prop_assert!((erf(x) - p).abs() < 1e-5);
            }
        }
    }
}
