//! Error type shared by the numerical routines.

use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// A parameter was outside its mathematically valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A routine that operates on a collection received an empty one.
    EmptyInput(&'static str),
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine.
        routine: &'static str,
        /// Number of iterations attempted.
        iterations: usize,
    },
    /// Two collections that must have equal length did not.
    LengthMismatch {
        /// Length of the first collection.
        left: usize,
        /// Length of the second collection.
        right: usize,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MathError::EmptyInput(what) => write!(f, "empty input: {what}"),
            MathError::NoConvergence {
                routine,
                iterations,
            } => write!(
                f,
                "`{routine}` did not converge after {iterations} iterations"
            ),
            MathError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MathError::InvalidParameter {
            name: "sigma",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("sigma"));
        assert!(e.to_string().contains("positive"));

        let e = MathError::EmptyInput("samples");
        assert!(e.to_string().contains("samples"));

        let e = MathError::NoConvergence {
            routine: "inverse_erf",
            iterations: 100,
        };
        assert!(e.to_string().contains("inverse_erf"));
        assert!(e.to_string().contains("100"));

        let e = MathError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_cloneable_and_comparable() {
        let e = MathError::EmptyInput("x");
        assert_eq!(e.clone(), e);
    }
}
