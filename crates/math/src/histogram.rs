//! Fixed-bin histograms and empirical densities.
//!
//! Figures 2 and 3 of the paper overlay the *empirical* probability density of
//! the simulated deviation `θ̂_j − θ̄_j` (over many repeated trials) on the
//! Gaussian density predicted by the analytical framework. This module builds
//! that empirical density.

use crate::MathError;

/// A fixed-width histogram over `[lo, hi)` with equally sized bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Create a histogram spanning `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    /// Returns [`MathError::InvalidParameter`] when the range is degenerate or
    /// `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> crate::Result<Self> {
        if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            return Err(MathError::InvalidParameter {
                name: "range",
                reason: format!("require finite lo < hi, got [{lo}, {hi})"),
            });
        }
        if bins == 0 {
            return Err(MathError::InvalidParameter {
                name: "bins",
                reason: "must be positive".into(),
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            below: 0,
            above: 0,
        })
    }

    /// Build a histogram directly from samples, spanning their observed range
    /// (expanded by 1% on each side so the maximum lands in the last bin).
    ///
    /// # Errors
    /// Returns [`MathError::EmptyInput`] when `samples` is empty, and
    /// [`MathError::InvalidParameter`] when all samples are identical (the
    /// range would be degenerate) or `bins == 0`.
    pub fn from_samples(samples: &[f64], bins: usize) -> crate::Result<Self> {
        if samples.is_empty() {
            return Err(MathError::EmptyInput("Histogram::from_samples"));
        }
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let pad = (hi - lo).abs().max(1e-12) * 0.01;
        let mut h = Self::new(lo - pad, hi + pad, bins)?;
        h.extend_from_slice(samples);
        Ok(h)
    }

    /// Record one observation. Values outside `[lo, hi)` are counted in the
    /// overflow/underflow tallies and excluded from the density.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.below += 1;
            return;
        }
        if x >= self.hi {
            self.above += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Record every observation from a slice.
    pub fn extend_from_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Total number of observations pushed (including out-of-range ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Number of observations at or above the upper edge of the range.
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Empirical probability density: `(bin centre, density)` pairs such that
    /// `Σ density · bin_width ≈ fraction of in-range observations`.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let in_range = self.total - self.below - self.above;
        if in_range == 0 {
            return self
                .counts
                .iter()
                .enumerate()
                .map(|(i, _)| (self.bin_center(i), 0.0))
                .collect();
        }
        let norm = 1.0 / (in_range as f64 * self.bin_width());
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c as f64 * norm))
            .collect()
    }

    /// Empirical cumulative distribution evaluated at the bin edges
    /// (fraction of in-range observations at or below each upper edge).
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let in_range = (self.total - self.below - self.above).max(1);
        let mut acc = 0u64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                acc += c;
                (
                    self.lo + (i as f64 + 1.0) * self.bin_width(),
                    acc as f64 / in_range as f64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Histogram::new(1.0, 1.0, 10).is_err());
        assert!(Histogram::new(1.0, 0.0, 10).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
        assert!(Histogram::from_samples(&[], 10).is_err());
    }

    #[test]
    fn counts_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.extend_from_slice(&[0.1, 0.3, 0.6, 0.6, 0.9]);
        assert_eq!(h.counts(), &[1, 1, 2, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_values_are_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.extend_from_slice(&[-0.5, 0.25, 1.0, 2.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2); // 1.0 is the exclusive upper edge
        assert_eq!(h.counts(), &[1, 0]);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::new(-2.0, 2.0, 50).unwrap();
        let xs: Vec<f64> = (0..10_000)
            .map(|i| -1.9 + 3.8 * (i as f64) / 10_000.0)
            .collect();
        h.extend_from_slice(&xs);
        let total: f64 = h.density().iter().map(|(_, d)| d * h.bin_width()).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn density_of_uniform_data_is_flat() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        let xs: Vec<f64> = (0..100_000).map(|i| (i as f64 + 0.5) / 100_000.0).collect();
        h.extend_from_slice(&xs);
        for (_, d) in h.density() {
            assert!((d - 1.0).abs() < 0.01, "density = {d}");
        }
    }

    #[test]
    fn from_samples_covers_all_points() {
        let xs = [3.0, -1.0, 0.5, 2.0];
        let h = Histogram::from_samples(&xs, 8).unwrap();
        assert_eq!(h.total(), 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new(0.0, 1.0, 5).unwrap();
        h.extend_from_slice(&[0.05, 0.15, 0.35, 0.55, 0.75, 0.95]);
        let cdf = h.cdf();
        let mut prev = 0.0;
        for &(_, p) in &cdf {
            assert!(p >= prev);
            prev = p;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_density_is_zero() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert!(h.density().iter().all(|&(_, d)| d == 0.0));
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn total_count_preserved(
                xs in proptest::collection::vec(-5.0f64..5.0, 1..300),
                bins in 1usize..64,
            ) {
                let mut h = Histogram::new(-1.0, 1.0, bins).unwrap();
                h.extend_from_slice(&xs);
                let binned: u64 = h.counts().iter().sum();
                prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
            }

            #[test]
            fn density_normalised(
                xs in proptest::collection::vec(-0.99f64..0.99, 2..300),
                bins in 1usize..64,
            ) {
                let mut h = Histogram::new(-1.0, 1.0, bins).unwrap();
                h.extend_from_slice(&xs);
                let total: f64 = h.density().iter().map(|(_, d)| d * h.bin_width()).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }
}
