//! One-dimensional numerical integration.
//!
//! The analytical framework needs definite integrals in two places:
//!
//! * the closed-form bias/variance of *bounded* mechanisms are defined as
//!   integrals of the perturbation density over its support (Equations 14, 17
//!   and 18 of the paper) — those have analytic antiderivatives, but we also
//!   evaluate them numerically in tests as a cross-check;
//! * the Theorem 1 benchmark integrates the deviation density over a box
//!   `S = {|θ̂_j − θ̄_j| ≤ ξ_j}` (done per-dimension and multiplied because the
//!   density factorises).

use crate::MathError;

/// Composite Simpson's rule on `[a, b]` with `n` subintervals (`n` rounded up
/// to the next even number).
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] when the interval is degenerate or
/// `n == 0`.
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> crate::Result<f64> {
    if !(a.is_finite() && b.is_finite()) || a > b {
        return Err(MathError::InvalidParameter {
            name: "interval",
            reason: format!("require finite a <= b, got [{a}, {b}]"),
        });
    }
    if n == 0 {
        return Err(MathError::InvalidParameter {
            name: "n",
            reason: "number of subintervals must be positive".into(),
        });
    }
    if a == b {
        return Ok(0.0);
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        sum += if i % 2 == 0 { 2.0 * f(x) } else { 4.0 * f(x) };
    }
    Ok(sum * h / 3.0)
}

/// Adaptive Simpson integration with an absolute error target.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] for a degenerate interval or a
/// non-positive tolerance.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> crate::Result<f64> {
    if !(a.is_finite() && b.is_finite()) || a > b {
        return Err(MathError::InvalidParameter {
            name: "interval",
            reason: format!("require finite a <= b, got [{a}, {b}]"),
        });
    }
    if !(tol.is_finite() && tol > 0.0) {
        return Err(MathError::InvalidParameter {
            name: "tol",
            reason: format!("must be positive, got {tol}"),
        });
    }
    if a == b {
        return Ok(0.0);
    }

    fn simpson_segment<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64) -> (f64, f64, f64, f64) {
        let m = 0.5 * (a + b);
        let fa = f(a);
        let fm = f(m);
        let fb = f(b);
        ((b - a) / 6.0 * (fa + 4.0 * fm + fb), fa, fm, fb)
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse<F: Fn(f64) -> f64>(
        f: &F,
        a: f64,
        b: f64,
        whole: f64,
        fa: f64,
        fm: f64,
        fb: f64,
        tol: f64,
        depth: usize,
    ) -> f64 {
        let m = 0.5 * (a + b);
        let lm = 0.5 * (a + m);
        let rm = 0.5 * (m + b);
        let flm = f(lm);
        let frm = f(rm);
        let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
        let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            left + right + delta / 15.0
        } else {
            recurse(f, a, m, left, fa, flm, fm, 0.5 * tol, depth - 1)
                + recurse(f, m, b, right, fm, frm, fb, 0.5 * tol, depth - 1)
        }
    }

    let (whole, fa, fm, fb) = simpson_segment(&f, a, b);
    Ok(recurse(&f, a, b, whole, fa, fm, fb, tol, 50))
}

/// Nodes and weights of the 20-point Gauss–Legendre rule on `[-1, 1]`.
///
/// Twenty points integrate polynomials up to degree 39 exactly, which is far
/// more than needed for the smooth Gaussian / piecewise-constant densities we
/// evaluate; the rule is exposed for the framework's density moments.
const GL20_NODES: [f64; 10] = [
    0.076_526_521_133_497_33,
    0.227_785_851_141_645_08,
    0.373_706_088_715_419_56,
    0.510_867_001_950_827_1,
    0.636_053_680_726_515_1,
    0.746_331_906_460_150_8,
    0.839_116_971_822_218_8,
    0.912_234_428_251_326,
    0.963_971_927_277_913_8,
    0.993_128_599_185_094_9,
];
const GL20_WEIGHTS: [f64; 10] = [
    0.152_753_387_130_725_85,
    0.149_172_986_472_603_75,
    0.142_096_109_318_382_05,
    0.131_688_638_449_176_63,
    0.118_194_531_961_518_42,
    0.101_930_119_817_240_44,
    0.083_276_741_576_704_75,
    0.062_672_048_334_109_06,
    0.040_601_429_800_386_94,
    0.017_614_007_139_152_12,
];

/// 20-point Gauss–Legendre quadrature on `[a, b]`.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] for a degenerate interval.
pub fn gauss_legendre<F: Fn(f64) -> f64>(f: F, a: f64, b: f64) -> crate::Result<f64> {
    if !(a.is_finite() && b.is_finite()) || a > b {
        return Err(MathError::InvalidParameter {
            name: "interval",
            reason: format!("require finite a <= b, got [{a}, {b}]"),
        });
    }
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    let mut sum = 0.0;
    for i in 0..10 {
        let x = GL20_NODES[i] * half;
        sum += GL20_WEIGHTS[i] * (f(mid + x) + f(mid - x));
    }
    Ok(sum * half)
}

/// Composite Gauss–Legendre: split `[a, b]` into `segments` pieces and apply
/// the 20-point rule to each. Useful when the integrand has kinks (the
/// piecewise-constant mechanism densities).
///
/// # Errors
/// Propagates the parameter validation of [`gauss_legendre`], and rejects
/// `segments == 0`.
pub fn gauss_legendre_composite<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    segments: usize,
) -> crate::Result<f64> {
    if segments == 0 {
        return Err(MathError::InvalidParameter {
            name: "segments",
            reason: "must be positive".into(),
        });
    }
    let step = (b - a) / segments as f64;
    let mut total = 0.0;
    for i in 0..segments {
        let lo = a + i as f64 * step;
        let hi = lo + step;
        total += gauss_legendre(&f, lo, hi)?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_integrates_polynomials_exactly() {
        // Simpson is exact for cubics.
        let got = simpson(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 2).unwrap();
        let want = |x: f64| x.powi(4) / 4.0 - x * x + x;
        assert!((got - (want(3.0) - want(-1.0))).abs() < 1e-12);
    }

    #[test]
    fn simpson_handles_odd_subinterval_counts() {
        let got = simpson(|x| x.sin(), 0.0, std::f64::consts::PI, 101).unwrap();
        assert!((got - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simpson_rejects_bad_input() {
        assert!(simpson(|x| x, 1.0, 0.0, 10).is_err());
        assert!(simpson(|x| x, 0.0, 1.0, 0).is_err());
        assert!(simpson(|x| x, f64::NEG_INFINITY, 0.0, 10).is_err());
        assert_eq!(simpson(|x| x, 2.0, 2.0, 10).unwrap(), 0.0);
    }

    #[test]
    fn adaptive_simpson_meets_tolerance_on_oscillatory_integrand() {
        let got = adaptive_simpson(|x| (10.0 * x).sin(), 0.0, 1.0, 1e-10).unwrap();
        let want = (1.0 - (10.0f64).cos()) / 10.0;
        assert!((got - want).abs() < 1e-8, "got {got}, want {want}");
    }

    #[test]
    fn adaptive_simpson_rejects_bad_tolerance() {
        assert!(adaptive_simpson(|x| x, 0.0, 1.0, 0.0).is_err());
        assert!(adaptive_simpson(|x| x, 0.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn gauss_legendre_matches_simpson_on_gaussian_pdf() {
        let pdf = |x: f64| (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let a = gauss_legendre(pdf, -3.0, 3.0).unwrap();
        let b = simpson(pdf, -3.0, 3.0, 10_000).unwrap();
        assert!((a - b).abs() < 1e-9, "gl = {a}, simpson = {b}");
        // And both should be ~0.9973.
        assert!((a - 0.997_300_203_936_74).abs() < 1e-6);
    }

    #[test]
    fn composite_gauss_legendre_handles_kinked_integrands() {
        // |x| has a kink at 0; composite with an even number of segments puts a
        // boundary exactly on it.
        let got = gauss_legendre_composite(|x: f64| x.abs(), -1.0, 1.0, 2).unwrap();
        assert!((got - 1.0).abs() < 1e-12);
        assert!(gauss_legendre_composite(|x: f64| x, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn all_rules_agree_on_smooth_integrand() {
        let f = |x: f64| (x * x + 1.0).ln();
        let s = simpson(f, 0.0, 2.0, 4_000).unwrap();
        let a = adaptive_simpson(f, 0.0, 2.0, 1e-12).unwrap();
        let g = gauss_legendre_composite(f, 0.0, 2.0, 4).unwrap();
        assert!((s - a).abs() < 1e-9);
        assert!((s - g).abs() < 1e-9);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn linearity_of_simpson(a in -5.0f64..0.0, b in 0.0f64..5.0, c in -3.0f64..3.0) {
                prop_assume!(b > a);
                let f = |x: f64| x * x;
                let base = simpson(f, a, b, 512).unwrap();
                let scaled = simpson(|x| c * f(x), a, b, 512).unwrap();
                prop_assert!((scaled - c * base).abs() < 1e-9 * (1.0 + base.abs() * c.abs()));
            }

            #[test]
            fn interval_additivity(a in -4.0f64..-1.0, m in -1.0f64..1.0, b in 1.0f64..4.0) {
                let f = |x: f64| (x.sin() + 2.0).sqrt();
                let whole = adaptive_simpson(f, a, b, 1e-11).unwrap();
                let split = adaptive_simpson(f, a, m, 1e-11).unwrap()
                    + adaptive_simpson(f, m, b, 1e-11).unwrap();
                prop_assert!((whole - split).abs() < 1e-8);
            }
        }
    }
}
