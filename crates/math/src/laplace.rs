//! The Laplace (double-exponential) distribution.
//!
//! The Laplace mechanism — the canonical *unbounded* mechanism in the paper's
//! taxonomy — perturbs a value `t ∈ [-1, 1]` into `t + Lap(2m/ε)`. This module
//! provides the distribution itself: pdf, cdf, quantile, inverse-cdf sampling,
//! variance (`2λ²`) and the third absolute moment (`3λ³`) used by the
//! Berry–Esseen bound in Theorem 2 (Equation 21 of the paper).

use crate::MathError;
use rand::Rng;

/// A Laplace distribution centred at `location` with scale `scale` (often `λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    location: f64,
    scale: f64,
}

impl Laplace {
    /// Create a Laplace distribution.
    ///
    /// # Errors
    /// Returns [`MathError::InvalidParameter`] if `scale` is not strictly
    /// positive and finite, or `location` is not finite.
    pub fn new(location: f64, scale: f64) -> crate::Result<Self> {
        if !location.is_finite() {
            return Err(MathError::InvalidParameter {
                name: "location",
                reason: format!("must be finite, got {location}"),
            });
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(MathError::InvalidParameter {
                name: "scale",
                reason: format!("must be positive and finite, got {scale}"),
            });
        }
        Ok(Self { location, scale })
    }

    /// Zero-centred Laplace noise with the given scale, as added by the
    /// Laplace mechanism.
    pub fn centered(scale: f64) -> crate::Result<Self> {
        Self::new(0.0, scale)
    }

    /// The location (mean/median) parameter.
    pub fn location(&self) -> f64 {
        self.location
    }

    /// The scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance, `2λ²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// The third absolute central moment `E[|X - location|³] = 3! λ³ / 2 · 2 = 3λ³ · 2`?
    ///
    /// For the Laplace distribution the k-th absolute central moment is
    /// `k! · λ^k`, so the third absolute moment equals `6λ³`. The paper's
    /// Equation 21 works it out as `3λ/2 · E[x²] = 3λ³` *per side* and then the
    /// full two-sided integral evaluates to `6λ³ / 2 = 3λ³`... The value the
    /// paper uses downstream is `ρ = 3λ³`; we expose both and unit-test the
    /// Monte-Carlo value, which confirms `E[|X|³] = 6λ³` for the distribution
    /// itself. See [`Laplace::third_absolute_moment`] and
    /// [`Laplace::paper_rho`] for the two conventions.
    pub fn third_absolute_moment(&self) -> f64 {
        6.0 * self.scale.powi(3)
    }

    /// The `ρ` value used in the paper's Berry–Esseen example (Equation 21),
    /// namely `3λ³`.
    ///
    /// The paper evaluates `ρ = (1/λ)∫_0^∞ x³ e^{-x/λ} dx = 3λ·E[x²]/2 = 3λ³`,
    /// i.e. it keeps the one-sided normalisation. We keep this value as a
    /// separate accessor so the reproduced §IV-D numeric example matches the
    /// paper exactly, while [`Laplace::third_absolute_moment`] reports the
    /// standard two-sided moment.
    pub fn paper_rho(&self) -> f64 {
        3.0 * self.scale.powi(3)
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.location).abs() / self.scale;
        (-z).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.location) / self.scale;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    /// Quantile function (inverse cdf).
    ///
    /// # Errors
    /// Returns [`MathError::InvalidParameter`] when `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> crate::Result<f64> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(MathError::InvalidParameter {
                name: "p",
                reason: format!("must lie in [0, 1], got {p}"),
            });
        }
        if p == 0.0 {
            return Ok(f64::NEG_INFINITY);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        let x = if p < 0.5 {
            self.scale * (2.0 * p).ln()
        } else {
            -self.scale * (2.0 * (1.0 - p)).ln()
        };
        Ok(self.location + x)
    }

    /// Draw one sample via inverse-cdf sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u uniform in (-0.5, 0.5]; the classic closed form.
        let u: f64 = rng.gen_range(-0.5..0.5);
        self.location - self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln_1p_safe()
    }

    /// Draw `n` independent samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Tiny extension trait so the sampling expression stays readable while being
/// robust when `1 - 2|u|` underflows to exactly zero.
trait LnSafe {
    fn ln_1p_safe(self) -> f64;
}

impl LnSafe for f64 {
    fn ln_1p_safe(self) -> f64 {
        if self <= 0.0 {
            // ln(0) = -inf would produce an infinite sample; clamp to the
            // smallest positive normal instead. The probability of hitting
            // this branch is ~2^-53 per draw.
            (f64::MIN_POSITIVE).ln()
        } else {
            self.ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::RunningMoments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Laplace::new(0.0, 0.0).is_err());
        assert!(Laplace::new(0.0, -1.0).is_err());
        assert!(Laplace::new(f64::INFINITY, 1.0).is_err());
        assert!(Laplace::centered(f64::NAN).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let l = Laplace::new(0.3, 1.7).unwrap();
        let integral = crate::integrate::simpson(|x| l.pdf(x), -60.0, 60.0, 20_000).unwrap();
        assert!((integral - 1.0).abs() < 1e-8, "integral = {integral}");
    }

    #[test]
    fn pdf_peak_at_location() {
        let l = Laplace::new(-2.0, 0.5).unwrap();
        assert!((l.pdf(-2.0) - 1.0).abs() < 1e-12); // 1/(2*0.5)
        assert!(l.pdf(-2.0) > l.pdf(-1.0));
        assert!(l.pdf(-2.0) > l.pdf(-3.0));
    }

    #[test]
    fn cdf_reference_values() {
        let l = Laplace::new(0.0, 1.0).unwrap();
        assert!((l.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((l.cdf(1.0) - (1.0 - 0.5 * (-1.0f64).exp())).abs() < 1e-15);
        assert!((l.cdf(-1.0) - 0.5 * (-1.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let l = Laplace::new(1.0, 2.5).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            let x = l.quantile(p).unwrap();
            assert!((l.cdf(x) - p).abs() < 1e-12, "p = {p}");
        }
        assert_eq!(l.quantile(0.0).unwrap(), f64::NEG_INFINITY);
        assert_eq!(l.quantile(1.0).unwrap(), f64::INFINITY);
        assert!(l.quantile(1.0001).is_err());
    }

    #[test]
    fn variance_is_two_lambda_squared() {
        let l = Laplace::centered(3.0).unwrap();
        assert!((l.variance() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_theoretical_moments() {
        let l = Laplace::new(0.5, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1234);
        let mut acc = RunningMoments::new();
        let mut third = 0.0;
        let n = 400_000;
        for _ in 0..n {
            let x = l.sample(&mut rng);
            acc.push(x);
            third += (x - 0.5).abs().powi(3);
        }
        third /= n as f64;
        assert!((acc.mean() - 0.5).abs() < 0.02, "mean = {}", acc.mean());
        assert!(
            (acc.variance() - 8.0).abs() < 0.2,
            "variance = {}",
            acc.variance()
        );
        // E|X - mu|^3 = 6 λ^3 = 48.
        assert!(
            (third - l.third_absolute_moment()).abs() / l.third_absolute_moment() < 0.05,
            "third abs moment = {third}"
        );
    }

    #[test]
    fn paper_rho_is_half_the_true_third_moment() {
        let l = Laplace::centered(2.0).unwrap();
        assert!((l.paper_rho() * 2.0 - l.third_absolute_moment()).abs() < 1e-12);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn cdf_monotone_and_bounded(scale in 0.01f64..10.0, a in -30.0f64..30.0, b in -30.0f64..30.0) {
                let l = Laplace::centered(scale).unwrap();
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                prop_assert!(l.cdf(lo) <= l.cdf(hi) + 1e-15);
                prop_assert!((0.0..=1.0).contains(&l.cdf(a)));
            }

            #[test]
            fn samples_are_finite(scale in 0.01f64..100.0, seed in 0u64..1000) {
                let l = Laplace::centered(scale).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..100 {
                    prop_assert!(l.sample(&mut rng).is_finite());
                }
            }
        }
    }
}
