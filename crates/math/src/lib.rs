//! # hdldp-math
//!
//! Numerical substrate for the `hdldp` workspace — the Rust reproduction of
//! *Utility Analysis and Enhancement of LDP Mechanisms in High-Dimensional Space*
//! (ICDE 2022).
//!
//! Everything in this crate is self-contained (no numerical dependencies beyond
//! `rand` for sampling) and is used by the mechanism implementations, the
//! analytical framework, and the HDR4ME re-calibration protocol:
//!
//! * [`erf`] — error function, complementary error function and their inverses.
//! * [`cache`] — bit-keyed memoisation of `erf` for the framework's batched
//!   box-probability passes.
//! * [`normal`] — the Gaussian distribution (pdf, cdf, quantile, sampling).
//! * [`laplace`] — the Laplace distribution (pdf, cdf, quantile, sampling).
//! * [`integrate`] — one-dimensional numerical integration (Simpson, adaptive
//!   Simpson, Gauss–Legendre) used for mechanism moments and the Theorem 1
//!   box-probability computation.
//! * [`stats`] — descriptive statistics and the utility metrics of the paper
//!   (MSE, L2 deviation, maximum absolute error).
//! * [`moments`] — single-pass Welford accumulators for streaming mean/variance.
//! * [`histogram`] — fixed-bin empirical densities used to compare simulated
//!   deviations against the CLT predictions (Figures 2 and 3).
//! * [`vector`] — small dense-vector helpers (norms, Hadamard product).
//! * [`quantile`] — order statistics on slices.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod erf;
pub mod error;
pub mod histogram;
pub mod integrate;
pub mod laplace;
pub mod moments;
pub mod normal;
pub mod quantile;
pub mod stats;
pub mod vector;

pub use cache::ErfCache;
pub use error::MathError;
pub use histogram::Histogram;
pub use laplace::Laplace;
pub use moments::RunningMoments;
pub use normal::Normal;

/// Convenience result alias for fallible numerical routines.
pub type Result<T> = std::result::Result<T, MathError>;
