//! Streaming (single-pass) moment accumulation via Welford's algorithm.
//!
//! The aggregator in the collection protocol receives reports one at a time
//! per dimension; Welford accumulation lets it maintain numerically stable
//! running means and variances without storing every report, which matters at
//! paper scale (200,000 users × 5,000 dimensions in Figure 2).

/// Numerically stable running mean / variance / extrema accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningMoments {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every observation from a slice.
    pub fn extend_from_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by `n`); `0.0` when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (divide by `n − 1`); `0.0` when fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Whether any observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn matches_batch_statistics() {
        let xs = [2.0, -1.0, 0.5, 3.25, -0.75, 1.0];
        let mut acc = RunningMoments::new();
        acc.extend_from_slice(&xs);
        assert_eq!(acc.count(), xs.len() as u64);
        assert!((acc.mean() - stats::mean(&xs).unwrap()).abs() < 1e-12);
        assert!((acc.variance() - stats::population_variance(&xs).unwrap()).abs() < 1e-12);
        assert!((acc.sample_variance() - stats::sample_variance(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(acc.min(), -1.0);
        assert_eq!(acc.max(), 3.25);
    }

    #[test]
    fn empty_and_single_value_edge_cases() {
        let acc = RunningMoments::new();
        assert!(acc.is_empty());
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);

        let mut acc = RunningMoments::new();
        acc.push(7.0);
        assert_eq!(acc.mean(), 7.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
        assert_eq!(acc.min(), 7.0);
        assert_eq!(acc.max(), 7.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let mut whole = RunningMoments::new();
        whole.extend_from_slice(&xs);

        let mut left = RunningMoments::new();
        left.extend_from_slice(&xs[..37]);
        let mut right = RunningMoments::new();
        right.extend_from_slice(&xs[37..]);
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningMoments::new();
        a.extend_from_slice(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&RunningMoments::new());
        assert_eq!(a, before);

        let mut empty = RunningMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case: tiny variance on a huge offset.
        let offset = 1e9;
        let xs: Vec<f64> = (0..1000).map(|i| offset + (i % 2) as f64).collect();
        let mut acc = RunningMoments::new();
        acc.extend_from_slice(&xs);
        assert!((acc.variance() - 0.25).abs() < 1e-6, "{}", acc.variance());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn variance_nonnegative_and_mean_bounded(
                xs in proptest::collection::vec(-100.0f64..100.0, 1..200)
            ) {
                let mut acc = RunningMoments::new();
                acc.extend_from_slice(&xs);
                prop_assert!(acc.variance() >= 0.0);
                prop_assert!(acc.mean() >= acc.min() - 1e-9);
                prop_assert!(acc.mean() <= acc.max() + 1e-9);
            }

            #[test]
            fn merge_is_order_independent(
                xs in proptest::collection::vec(-10.0f64..10.0, 1..100),
                ys in proptest::collection::vec(-10.0f64..10.0, 1..100),
            ) {
                let mut a1 = RunningMoments::new();
                a1.extend_from_slice(&xs);
                let mut b1 = RunningMoments::new();
                b1.extend_from_slice(&ys);
                a1.merge(&b1);

                let mut b2 = RunningMoments::new();
                b2.extend_from_slice(&ys);
                let mut a2 = RunningMoments::new();
                a2.extend_from_slice(&xs);
                b2.merge(&a2);

                prop_assert!((a1.mean() - b2.mean()).abs() < 1e-9);
                prop_assert!((a1.variance() - b2.variance()).abs() < 1e-9);
                prop_assert_eq!(a1.count(), b2.count());
            }
        }
    }
}
