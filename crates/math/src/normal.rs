//! The Gaussian (normal) distribution.
//!
//! The analytical framework of the paper approximates the per-dimension
//! deviation `θ̂_j − θ̄_j` with `N(δ_j, σ_j²)` (Lemmas 2 and 3) and composes the
//! per-dimension densities into the multivariate density of Theorem 1. This
//! module provides the pdf, cdf, quantile function and Box–Muller-free sampling
//! (via inverse-cdf) needed by the framework, the benchmark and the dataset
//! generators.

use crate::erf::{erf, inverse_erf};
use crate::MathError;
use rand::Rng;

/// A univariate normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// The standard normal distribution `N(0, 1)`.
    pub const STANDARD: Normal = Normal {
        mean: 0.0,
        std_dev: 1.0,
    };

    /// Create a normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    /// Returns [`MathError::InvalidParameter`] if `std_dev` is not strictly
    /// positive and finite, or if `mean` is not finite.
    pub fn new(mean: f64, std_dev: f64) -> crate::Result<Self> {
        if !mean.is_finite() {
            return Err(MathError::InvalidParameter {
                name: "mean",
                reason: format!("must be finite, got {mean}"),
            });
        }
        if !(std_dev.is_finite() && std_dev > 0.0) {
            return Err(MathError::InvalidParameter {
                name: "std_dev",
                reason: format!("must be positive and finite, got {std_dev}"),
            });
        }
        Ok(Self { mean, std_dev })
    }

    /// Create a normal distribution from its mean and **variance**.
    ///
    /// This is the natural parameterisation coming out of Lemmas 2 and 3,
    /// where the variance of the deviation is `E[Var(t*)] / r`.
    pub fn from_mean_variance(mean: f64, variance: f64) -> crate::Result<Self> {
        if !(variance.is_finite() && variance > 0.0) {
            return Err(MathError::InvalidParameter {
                name: "variance",
                reason: format!("must be positive and finite, got {variance}"),
            });
        }
        Self::new(mean, variance.sqrt())
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// The variance of the distribution.
    pub fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }

    /// Probability density function evaluated at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `P[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Probability that the variable falls in the closed interval `[lo, hi]`.
    ///
    /// This is the one-dimensional building block of the Theorem 1 box
    /// probability `∫_S f(θ̂ − θ̄)`: because dimensions are independent, the
    /// box probability is the product of these interval probabilities.
    pub fn prob_in_interval(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo)).clamp(0.0, 1.0)
    }

    /// Quantile function (inverse cdf): returns `x` with `P[X <= x] = p`.
    ///
    /// Used to turn the framework's Gaussian deviation approximation into a
    /// practical "supremum" `sup|θ̂_j − θ̄_j|` for the HDR4ME regularization
    /// weights (the paper's collector-chosen tolerated supremum).
    ///
    /// # Errors
    /// Returns [`MathError::InvalidParameter`] when `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> crate::Result<f64> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(MathError::InvalidParameter {
                name: "p",
                reason: format!("must lie in [0, 1], got {p}"),
            });
        }
        Ok(self.mean + self.std_dev * std::f64::consts::SQRT_2 * inverse_erf(2.0 * p - 1.0))
    }

    /// Draw one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: robust, no rejection, and we do not need the second value.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }

    /// Draw `n` independent samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::RunningMoments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::from_mean_variance(0.0, 0.0).is_err());
        assert!(Normal::from_mean_variance(0.0, -4.0).is_err());
    }

    #[test]
    fn from_mean_variance_takes_square_root() {
        let n = Normal::from_mean_variance(1.0, 4.0).unwrap();
        assert!((n.std_dev() - 2.0).abs() < 1e-15);
        assert!((n.variance() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn standard_normal_pdf_reference_values() {
        let n = Normal::STANDARD;
        assert!((n.pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-12);
        assert!((n.pdf(1.0) - 0.241_970_724_519_143_37).abs() < 1e-12);
        assert!((n.pdf(-2.0) - 0.053_990_966_513_188_06).abs() < 1e-12);
    }

    #[test]
    fn standard_normal_cdf_reference_values() {
        let n = Normal::STANDARD;
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((n.cdf(1.0) - 0.841_344_746_068_543).abs() < 2e-7);
        assert!((n.cdf(-1.96) - 0.024_997_895_148_220_44).abs() < 2e-7);
        assert!((n.cdf(3.0) - 0.998_650_101_968_37).abs() < 2e-7);
    }

    #[test]
    fn cdf_respects_location_and_scale() {
        let n = Normal::new(5.0, 2.0).unwrap();
        // P[X <= 5] = 0.5, P[X <= 7] = Phi(1).
        assert!((n.cdf(5.0) - 0.5).abs() < 1e-9);
        assert!((n.cdf(7.0) - Normal::STANDARD.cdf(1.0)).abs() < 1e-12);
    }

    #[test]
    fn interval_probability_is_consistent_with_cdf() {
        let n = Normal::new(-0.5, 0.3).unwrap();
        let p = n.prob_in_interval(-1.0, 0.0);
        assert!((p - (n.cdf(0.0) - n.cdf(-1.0))).abs() < 1e-15);
        assert_eq!(n.prob_in_interval(1.0, 0.0), 0.0);
        // The whole real line has probability ~1.
        assert!((n.prob_in_interval(-1e3, 1e3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(2.0, 0.7).unwrap();
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = n.quantile(p).unwrap();
            assert!((n.cdf(x) - p).abs() < 1e-5, "p = {p}");
        }
        assert!(n.quantile(-0.1).is_err());
        assert!(n.quantile(1.1).is_err());
    }

    #[test]
    fn three_sigma_quantile_matches_textbook_value() {
        // Phi^{-1}(0.99865) ≈ 3.0 for the standard normal.
        let z = Normal::STANDARD.quantile(0.998_650_101_968_37).unwrap();
        assert!((z - 3.0).abs() < 1e-3, "z = {z}");
    }

    #[test]
    fn sampling_matches_moments() {
        let n = Normal::new(-1.5, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut acc = RunningMoments::new();
        for _ in 0..200_000 {
            acc.push(n.sample(&mut rng));
        }
        assert!((acc.mean() - -1.5).abs() < 0.01, "mean = {}", acc.mean());
        assert!(
            (acc.variance() - 0.25).abs() < 0.01,
            "variance = {}",
            acc.variance()
        );
    }

    #[test]
    fn sample_n_returns_requested_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs = Normal::STANDARD.sample_n(&mut rng, 100);
        assert_eq!(xs.len(), 100);
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn pdf_nonnegative_cdf_monotone(
                mean in -5.0f64..5.0,
                sd in 0.01f64..10.0,
                a in -20.0f64..20.0,
                b in -20.0f64..20.0,
            ) {
                let n = Normal::new(mean, sd).unwrap();
                prop_assert!(n.pdf(a) >= 0.0);
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-12);
                prop_assert!((0.0..=1.0).contains(&n.cdf(a)));
            }

            #[test]
            fn quantile_round_trip(mean in -3.0f64..3.0, sd in 0.1f64..3.0, p in 0.001f64..0.999) {
                let n = Normal::new(mean, sd).unwrap();
                let x = n.quantile(p).unwrap();
                prop_assert!((n.cdf(x) - p).abs() < 1e-4);
            }
        }
    }
}
