//! Order statistics on slices.
//!
//! Used by the dataset normaliser (robust min/max), by the experiment harness
//! (reporting median MSE across repetitions) and by tests.

use crate::MathError;

/// Return the `q`-quantile (`0 ≤ q ≤ 1`) of the data using linear
/// interpolation between order statistics (type-7, the default of R/NumPy).
///
/// # Errors
/// Returns [`MathError::EmptyInput`] on an empty slice and
/// [`MathError::InvalidParameter`] when `q` lies outside `[0, 1]` or the data
/// contains NaN.
pub fn quantile(xs: &[f64], q: f64) -> crate::Result<f64> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput("quantile"));
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(MathError::InvalidParameter {
            name: "q",
            reason: format!("must lie in [0, 1], got {q}"),
        });
    }
    if xs.iter().any(|x| x.is_nan()) {
        return Err(MathError::InvalidParameter {
            name: "xs",
            reason: "data contains NaN".into(),
        });
    }
    let mut sorted = xs.to_vec();
    // NaN was rejected above; total_cmp agrees with partial_cmp on the rest
    // and cannot panic.
    sorted.sort_by(f64::total_cmp);
    Ok(quantile_sorted_unchecked(&sorted, q))
}

/// Quantile of data that is already sorted ascending. No validation is done on
/// the ordering; prefer [`quantile`] unless you are in a hot loop with data you
/// have just sorted.
pub fn quantile_sorted_unchecked(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The median (0.5-quantile).
///
/// # Errors
/// Same conditions as [`quantile`].
pub fn median(xs: &[f64]) -> crate::Result<f64> {
    quantile(xs, 0.5)
}

/// Interquartile range `Q3 − Q1`.
///
/// # Errors
/// Same conditions as [`quantile`].
pub fn iqr(xs: &[f64]) -> crate::Result<f64> {
    Ok(quantile(xs, 0.75)? - quantile(xs, 0.25)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_lengths() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert_eq!(median(&[5.0]).unwrap(), 5.0);
    }

    #[test]
    fn quantile_endpoints_are_min_and_max() {
        let xs = [7.0, -1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), -1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 7.0);
    }

    #[test]
    fn quantile_interpolates_linearly() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        assert!((quantile(&xs, 0.25).unwrap() - 0.75).abs() < 1e-12);
        assert!((quantile(&xs, 1.0 / 3.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
        assert!(quantile(&[1.0, f64::NAN], 0.5).is_err());
        assert!(median(&[]).is_err());
        assert!(iqr(&[]).is_err());
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert!((iqr(&xs).unwrap() - 50.0).abs() < 1e-12);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn quantile_is_monotone_in_q(
                xs in proptest::collection::vec(-100.0f64..100.0, 1..100),
                q1 in 0.0f64..1.0,
                q2 in 0.0f64..1.0,
            ) {
                let (lo, hi) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
                prop_assert!(quantile(&xs, lo).unwrap() <= quantile(&xs, hi).unwrap() + 1e-12);
            }

            #[test]
            fn quantile_within_data_range(
                xs in proptest::collection::vec(-100.0f64..100.0, 1..100),
                q in 0.0f64..1.0,
            ) {
                let v = quantile(&xs, q).unwrap();
                let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
            }
        }
    }
}
