//! Descriptive statistics and the utility metrics used by the paper.
//!
//! The paper measures utility in two equivalent ways (Section III-B):
//!
//! * the Euclidean deviation `‖θ̂ − θ̄‖₂` (Equation 2), and
//! * the mean squared error `MSE(θ̂) = (1/d) Σ_j (θ̂_j − θ̄_j)²` (Equation 3),
//!
//! related by `MSE = ‖θ̂ − θ̄‖₂² / d`. Both are provided here, together with
//! plain sample statistics used everywhere else in the workspace.

use crate::MathError;

/// Arithmetic mean of a slice.
///
/// # Errors
/// Returns [`MathError::EmptyInput`] on an empty slice.
pub fn mean(xs: &[f64]) -> crate::Result<f64> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput("mean"));
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased (n−1) sample variance.
///
/// # Errors
/// Returns [`MathError::EmptyInput`] when fewer than two observations are given.
pub fn sample_variance(xs: &[f64]) -> crate::Result<f64> {
    if xs.len() < 2 {
        return Err(MathError::EmptyInput("sample_variance needs >= 2 values"));
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (xs.len() - 1) as f64)
}

/// Population (n) variance.
///
/// # Errors
/// Returns [`MathError::EmptyInput`] on an empty slice.
pub fn population_variance(xs: &[f64]) -> crate::Result<f64> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput("population_variance"));
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / xs.len() as f64)
}

/// Sample standard deviation (square root of the unbiased variance).
///
/// # Errors
/// Propagates [`sample_variance`] errors.
pub fn std_dev(xs: &[f64]) -> crate::Result<f64> {
    Ok(sample_variance(xs)?.sqrt())
}

/// Mean squared error between an estimate and the ground truth
/// (Equation 3 of the paper).
///
/// # Errors
/// Returns [`MathError::LengthMismatch`] when the slices differ in length and
/// [`MathError::EmptyInput`] when they are empty.
pub fn mse(estimate: &[f64], truth: &[f64]) -> crate::Result<f64> {
    if estimate.len() != truth.len() {
        return Err(MathError::LengthMismatch {
            left: estimate.len(),
            right: truth.len(),
        });
    }
    if estimate.is_empty() {
        return Err(MathError::EmptyInput("mse"));
    }
    let ss: f64 = estimate
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    Ok(ss / estimate.len() as f64)
}

/// Mean absolute error between an estimate and the ground truth.
///
/// # Errors
/// Same conditions as [`mse`].
pub fn mae(estimate: &[f64], truth: &[f64]) -> crate::Result<f64> {
    if estimate.len() != truth.len() {
        return Err(MathError::LengthMismatch {
            left: estimate.len(),
            right: truth.len(),
        });
    }
    if estimate.is_empty() {
        return Err(MathError::EmptyInput("mae"));
    }
    let ss: f64 = estimate.iter().zip(truth).map(|(a, b)| (a - b).abs()).sum();
    Ok(ss / estimate.len() as f64)
}

/// Euclidean deviation `‖estimate − truth‖₂` (Equation 2 of the paper).
///
/// # Errors
/// Same conditions as [`mse`].
pub fn l2_deviation(estimate: &[f64], truth: &[f64]) -> crate::Result<f64> {
    Ok((mse(estimate, truth)? * estimate.len() as f64).sqrt())
}

/// Maximum absolute per-dimension deviation `max_j |estimate_j − truth_j|`.
///
/// # Errors
/// Same conditions as [`mse`].
pub fn max_abs_deviation(estimate: &[f64], truth: &[f64]) -> crate::Result<f64> {
    if estimate.len() != truth.len() {
        return Err(MathError::LengthMismatch {
            left: estimate.len(),
            right: truth.len(),
        });
    }
    if estimate.is_empty() {
        return Err(MathError::EmptyInput("max_abs_deviation"));
    }
    Ok(estimate
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max))
}

/// Column-wise mean of row-major data (`rows × cols`), i.e. the true mean
/// vector `θ̄` of a dataset.
///
/// # Errors
/// Returns [`MathError::EmptyInput`] for zero rows/columns and
/// [`MathError::LengthMismatch`] when `data.len() != rows * cols`.
pub fn column_means(data: &[f64], rows: usize, cols: usize) -> crate::Result<Vec<f64>> {
    if rows == 0 || cols == 0 {
        return Err(MathError::EmptyInput("column_means"));
    }
    if data.len() != rows * cols {
        return Err(MathError::LengthMismatch {
            left: data.len(),
            right: rows * cols,
        });
    }
    let mut sums = vec![0.0; cols];
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        for (s, x) in sums.iter_mut().zip(row) {
            *s += x;
        }
    }
    for s in &mut sums {
        *s /= rows as f64;
    }
    Ok(sums)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs).unwrap(), 2.5);
        assert!((sample_variance(&xs).unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert!((population_variance(&xs).unwrap() - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(sample_variance(&[1.0]).is_err());
        assert!(population_variance(&[]).is_err());
        assert!(mse(&[], &[]).is_err());
        assert!(mae(&[], &[]).is_err());
        assert!(max_abs_deviation(&[], &[]).is_err());
    }

    #[test]
    fn mse_and_l2_deviation_relationship() {
        // MSE = ||a - b||^2 / d (Equations 2 and 3 of the paper).
        let a = [0.1, -0.2, 0.5, 0.0];
        let b = [0.0, 0.0, 0.0, 0.0];
        let mse_v = mse(&a, &b).unwrap();
        let l2 = l2_deviation(&a, &b).unwrap();
        assert!((mse_v - l2 * l2 / 4.0).abs() < 1e-12);
        assert!((mse_v - (0.01 + 0.04 + 0.25) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn mae_and_max_deviation() {
        let a = [1.0, -1.0, 0.5];
        let b = [0.5, -0.5, 0.5];
        assert!((mae(&a, &b).unwrap() - (0.5 + 0.5 + 0.0) / 3.0).abs() < 1e-12);
        assert!((max_abs_deviation(&a, &b).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_is_reported() {
        assert!(matches!(
            mse(&[1.0], &[1.0, 2.0]),
            Err(MathError::LengthMismatch { left: 1, right: 2 })
        ));
        assert!(mae(&[1.0], &[1.0, 2.0]).is_err());
        assert!(l2_deviation(&[1.0], &[]).is_err());
        assert!(max_abs_deviation(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn column_means_row_major() {
        // 3 rows x 2 cols.
        let data = [1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        let means = column_means(&data, 3, 2).unwrap();
        assert_eq!(means, vec![2.0, 20.0]);
        assert!(column_means(&data, 3, 3).is_err());
        assert!(column_means(&data, 0, 2).is_err());
    }

    #[test]
    fn identical_vectors_have_zero_error() {
        let a = [0.3, -0.7, 0.2];
        assert_eq!(mse(&a, &a).unwrap(), 0.0);
        assert_eq!(mae(&a, &a).unwrap(), 0.0);
        assert_eq!(l2_deviation(&a, &a).unwrap(), 0.0);
        assert_eq!(max_abs_deviation(&a, &a).unwrap(), 0.0);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mse_nonnegative_and_symmetric(
                a in proptest::collection::vec(-10.0f64..10.0, 1..64),
                shift in -5.0f64..5.0,
            ) {
                let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
                let m1 = mse(&a, &b).unwrap();
                let m2 = mse(&b, &a).unwrap();
                prop_assert!(m1 >= 0.0);
                prop_assert!((m1 - m2).abs() < 1e-12);
                // Constant shift -> MSE is shift^2 exactly.
                prop_assert!((m1 - shift * shift).abs() < 1e-9);
            }

            #[test]
            fn l2_is_sqrt_of_d_times_mse(
                pair in (1usize..64).prop_flat_map(|len| (
                    proptest::collection::vec(-1.0f64..1.0, len),
                    proptest::collection::vec(-1.0f64..1.0, len),
                )),
            ) {
                let (a, b) = pair;
                let l2 = l2_deviation(&a, &b).unwrap();
                let m = mse(&a, &b).unwrap();
                prop_assert!((l2 * l2 - m * a.len() as f64).abs() < 1e-9);
            }

            #[test]
            fn max_deviation_bounds_mae(
                a in proptest::collection::vec(-1.0f64..1.0, 1..64),
            ) {
                let b = vec![0.0; a.len()];
                let mx = max_abs_deviation(&a, &b).unwrap();
                let ma = mae(&a, &b).unwrap();
                prop_assert!(mx + 1e-12 >= ma);
            }
        }
    }
}
