//! Small dense-vector helpers.
//!
//! HDR4ME works with `d`-dimensional mean vectors; the re-calibration solvers
//! need L1/L2 norms and the Hadamard product `λ* ∘ θ` from Equation 23.

use crate::MathError;

/// L1 norm `Σ |x_i|`.
pub fn l1_norm(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x.abs()).sum()
}

/// L2 (Euclidean) norm `sqrt(Σ x_i²)`.
pub fn l2_norm(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Infinity norm `max |x_i|`; `0.0` for an empty slice.
pub fn linf_norm(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x.abs()).fold(0.0, f64::max)
}

/// Element-wise (Hadamard) product `a ∘ b`.
///
/// # Errors
/// Returns [`MathError::LengthMismatch`] when the slices differ in length.
pub fn hadamard(a: &[f64], b: &[f64]) -> crate::Result<Vec<f64>> {
    if a.len() != b.len() {
        return Err(MathError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x * y).collect())
}

/// Element-wise difference `a − b`.
///
/// # Errors
/// Returns [`MathError::LengthMismatch`] when the slices differ in length.
pub fn sub(a: &[f64], b: &[f64]) -> crate::Result<Vec<f64>> {
    if a.len() != b.len() {
        return Err(MathError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x - y).collect())
}

/// Dot product `Σ a_i b_i`.
///
/// # Errors
/// Returns [`MathError::LengthMismatch`] when the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> crate::Result<f64> {
    if a.len() != b.len() {
        return Err(MathError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

/// Clamp every element into `[lo, hi]`.
pub fn clamp_all(xs: &mut [f64], lo: f64, hi: f64) {
    for x in xs {
        *x = x.clamp(lo, hi);
    }
}

/// Count the non-zero entries (useful to measure the sparsity induced by
/// HDR4ME's L1 soft-thresholding).
pub fn count_nonzero(xs: &[f64]) -> usize {
    xs.iter().filter(|x| **x != 0.0).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_on_known_vectors() {
        let v = [3.0, -4.0];
        assert_eq!(l1_norm(&v), 7.0);
        assert_eq!(l2_norm(&v), 5.0);
        assert_eq!(linf_norm(&v), 4.0);
        assert_eq!(l1_norm(&[]), 0.0);
        assert_eq!(l2_norm(&[]), 0.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn hadamard_and_sub_and_dot() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(hadamard(&a, &b).unwrap(), vec![4.0, 10.0, 18.0]);
        assert_eq!(sub(&a, &b).unwrap(), vec![-3.0, -3.0, -3.0]);
        assert_eq!(dot(&a, &b).unwrap(), 32.0);
    }

    #[test]
    fn length_mismatch_errors() {
        assert!(hadamard(&[1.0], &[1.0, 2.0]).is_err());
        assert!(sub(&[1.0], &[]).is_err());
        assert!(dot(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn clamp_and_count_nonzero() {
        let mut v = vec![-2.0, -0.5, 0.0, 0.5, 2.0];
        clamp_all(&mut v, -1.0, 1.0);
        assert_eq!(v, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
        assert_eq!(count_nonzero(&v), 4);
        assert_eq!(count_nonzero(&[0.0, 0.0]), 0);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn triangle_inequality(
                pair in (1usize..50).prop_flat_map(|len| (
                    proptest::collection::vec(-10.0f64..10.0, len),
                    proptest::collection::vec(-10.0f64..10.0, len),
                )),
            ) {
                let (a, b) = pair;
                let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
                prop_assert!(l2_norm(&sum) <= l2_norm(&a) + l2_norm(&b) + 1e-9);
                prop_assert!(l1_norm(&sum) <= l1_norm(&a) + l1_norm(&b) + 1e-9);
            }

            #[test]
            fn cauchy_schwarz(
                pair in (1usize..50).prop_flat_map(|len| (
                    proptest::collection::vec(-10.0f64..10.0, len),
                    proptest::collection::vec(-10.0f64..10.0, len),
                )),
            ) {
                let (a, b) = pair;
                let d = dot(&a, &b).unwrap().abs();
                prop_assert!(d <= l2_norm(&a) * l2_norm(&b) + 1e-9);
            }

            #[test]
            fn norm_ordering(a in proptest::collection::vec(-10.0f64..10.0, 1..50)) {
                // ||x||_inf <= ||x||_2 <= ||x||_1
                prop_assert!(linf_norm(&a) <= l2_norm(&a) + 1e-9);
                prop_assert!(l2_norm(&a) <= l1_norm(&a) + 1e-9);
            }
        }
    }
}
