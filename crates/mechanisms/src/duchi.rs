//! The one-dimensional mechanism of Duchi, Jordan and Wainwright (JASA 2018).
//!
//! The output is binary: `t* ∈ {−B, +B}` with
//! `B = (e^ε + 1)/(e^ε − 1)`, chosen so that the estimate is unbiased:
//!
//! ```text
//! Pr[t* = +B] = 1/2 + t (e^ε − 1) / (2 (e^ε + 1))
//! ```
//!
//! It is the prototypical *bounded* mechanism in the paper's taxonomy and the
//! "binary output" baseline that Piecewise/Hybrid improve on. It is also the
//! non-Piecewise component of the [`crate::HybridMechanism`].

use crate::error::check_epsilon;
use crate::mechanism::{clamp_to_domain, Bound, Mechanism};
use rand::Rng;
use rand::RngCore;

/// Duchi et al. binary mechanism on the input domain `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct DuchiMechanism {
    epsilon: f64,
    /// Output magnitude `B = (e^ε + 1)/(e^ε − 1)`.
    b: f64,
}

impl DuchiMechanism {
    /// Create a Duchi mechanism with per-dimension budget `epsilon`.
    ///
    /// # Errors
    /// Returns [`crate::MechanismError::InvalidEpsilon`] when `epsilon` is not
    /// positive and finite.
    pub fn new(epsilon: f64) -> crate::Result<Self> {
        let epsilon = check_epsilon(epsilon)?;
        let e = epsilon.exp();
        let b = (e + 1.0) / (e - 1.0);
        Ok(Self { epsilon, b })
    }

    /// The output magnitude `B`.
    pub fn output_magnitude(&self) -> f64 {
        self.b
    }

    /// Probability of reporting `+B` for input `t`.
    pub fn prob_positive(&self, t: f64) -> f64 {
        let t = clamp_to_domain(t, -1.0, 1.0);
        let e = self.epsilon.exp();
        0.5 + t * (e - 1.0) / (2.0 * (e + 1.0))
    }
}

impl Mechanism for DuchiMechanism {
    fn name(&self) -> &'static str {
        "duchi"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn bound(&self) -> Bound {
        Bound::Bounded(self.b)
    }

    fn input_domain(&self) -> (f64, f64) {
        (-1.0, 1.0)
    }

    fn output_support(&self) -> (f64, f64) {
        (-self.b, self.b)
    }

    fn perturb(&self, t: f64, rng: &mut dyn RngCore) -> f64 {
        let p = self.prob_positive(t);
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            self.b
        } else {
            -self.b
        }
    }

    fn bias(&self, _t: f64) -> f64 {
        // E[t*] = B (2p - 1) = B * t (e^ε−1)/(e^ε+1) = t, so the bias is zero.
        0.0
    }

    fn variance(&self, t: f64) -> f64 {
        // E[t*^2] = B^2 always, so Var = B^2 − t^2.
        let t = clamp_to_domain(t, -1.0, 1.0);
        self.b * self.b - t * t
    }

    fn is_unbiased(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::assert_moments_match_monte_carlo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_epsilon() {
        assert!(DuchiMechanism::new(1.0).is_ok());
        assert!(DuchiMechanism::new(0.0).is_err());
        assert!(DuchiMechanism::new(-3.0).is_err());
    }

    #[test]
    fn output_magnitude_matches_formula() {
        let m = DuchiMechanism::new(1.0).unwrap();
        let e = 1.0f64.exp();
        assert!((m.output_magnitude() - (e + 1.0) / (e - 1.0)).abs() < 1e-12);
        // Smaller epsilon -> larger magnitude (more noise).
        let m_small = DuchiMechanism::new(0.1).unwrap();
        assert!(m_small.output_magnitude() > m.output_magnitude());
    }

    #[test]
    fn outputs_are_exactly_plus_minus_b() {
        let m = DuchiMechanism::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let out = m.perturb(0.3, &mut rng);
            assert!(
                (out - m.output_magnitude()).abs() < 1e-12
                    || (out + m.output_magnitude()).abs() < 1e-12
            );
        }
    }

    #[test]
    fn probability_of_positive_is_monotone_in_t() {
        let m = DuchiMechanism::new(1.0).unwrap();
        assert!(m.prob_positive(-1.0) < m.prob_positive(0.0));
        assert!(m.prob_positive(0.0) < m.prob_positive(1.0));
        assert!((m.prob_positive(0.0) - 0.5).abs() < 1e-12);
        // Clamped outside the domain.
        assert_eq!(m.prob_positive(3.0), m.prob_positive(1.0));
    }

    #[test]
    fn privacy_ratio_of_output_probabilities_is_exactly_e_eps_at_extremes() {
        // For the binary output the ratio Pr[+B | t=1] / Pr[+B | t=-1] must be e^eps.
        for &eps in &[0.1, 0.5, 1.0, 2.0] {
            let m = DuchiMechanism::new(eps).unwrap();
            let ratio = m.prob_positive(1.0) / m.prob_positive(-1.0);
            assert!(
                (ratio - eps.exp()).abs() < 1e-9,
                "eps = {eps}, ratio = {ratio}"
            );
        }
    }

    #[test]
    fn closed_form_moments_match_monte_carlo() {
        let m = DuchiMechanism::new(1.0).unwrap();
        assert_moments_match_monte_carlo(&m, &[-1.0, -0.4, 0.0, 0.7, 1.0], 200_000, 0.05, 0.05, 21);
    }

    #[test]
    fn bounded_metadata() {
        let m = DuchiMechanism::new(1.0).unwrap();
        assert!(m.bound().is_bounded());
        assert_eq!(m.bound().limit(), Some(m.output_magnitude()));
        assert!(m.is_unbiased());
        assert_eq!(m.name(), "duchi");
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn probabilities_are_valid_and_variance_nonnegative(
                eps in 0.01f64..10.0,
                t in -1.0f64..1.0,
            ) {
                let m = DuchiMechanism::new(eps).unwrap();
                let p = m.prob_positive(t);
                prop_assert!((0.0..=1.0).contains(&p));
                prop_assert!(m.variance(t) >= 0.0);
                // Variance shrinks as |t| grows (outputs get more deterministic in mean).
                prop_assert!(m.variance(t) <= m.variance(0.0) + 1e-12);
            }
        }
    }
}
