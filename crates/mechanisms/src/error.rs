//! Error type for mechanism construction and use.

use std::fmt;

/// Errors raised when constructing or applying an LDP mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum MechanismError {
    /// The privacy budget is not a positive, finite number.
    InvalidEpsilon(f64),
    /// A value handed to `perturb`/`bias`/`variance` lies outside the
    /// mechanism's input domain.
    ValueOutOfDomain {
        /// The offending value.
        value: f64,
        /// Lower end of the accepted domain.
        lo: f64,
        /// Upper end of the accepted domain.
        hi: f64,
    },
    /// A mechanism-specific parameter is invalid.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for MechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechanismError::InvalidEpsilon(e) => {
                write!(
                    f,
                    "privacy budget epsilon must be positive and finite, got {e}"
                )
            }
            MechanismError::ValueOutOfDomain { value, lo, hi } => {
                write!(
                    f,
                    "value {value} outside the mechanism input domain [{lo}, {hi}]"
                )
            }
            MechanismError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for MechanismError {}

/// Validate a privacy budget, returning it when it is positive and finite.
pub(crate) fn check_epsilon(epsilon: f64) -> Result<f64, MechanismError> {
    if epsilon.is_finite() && epsilon > 0.0 {
        Ok(epsilon)
    } else {
        Err(MechanismError::InvalidEpsilon(epsilon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_epsilon_accepts_positive_finite_values() {
        assert_eq!(check_epsilon(0.5).unwrap(), 0.5);
        assert_eq!(check_epsilon(5000.0).unwrap(), 5000.0);
    }

    #[test]
    fn check_epsilon_rejects_invalid_values() {
        assert!(check_epsilon(0.0).is_err());
        assert!(check_epsilon(-1.0).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
        assert!(check_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn display_is_informative() {
        assert!(MechanismError::InvalidEpsilon(-1.0)
            .to_string()
            .contains("-1"));
        let e = MechanismError::ValueOutOfDomain {
            value: 2.0,
            lo: -1.0,
            hi: 1.0,
        };
        assert!(e.to_string().contains("2"));
        let e = MechanismError::InvalidParameter {
            name: "alpha",
            reason: "must be in [0, 1]".into(),
        };
        assert!(e.to_string().contains("alpha"));
    }
}
