//! The Hybrid mechanism (Wang et al., ICDE 2019).
//!
//! With probability `α` the value is perturbed by the Piecewise mechanism and
//! with probability `1 − α` by the Duchi et al. mechanism, where
//!
//! ```text
//! α = 1 − e^{−ε/2}   if ε > ε₀ ≈ 0.61
//! α = 0              otherwise
//! ```
//!
//! Both components are unbiased with the same mean `t`, so the mixture is
//! unbiased and its variance is the α-weighted average of the component
//! variances. The paper lists Hybrid among the bounded mechanisms its
//! framework covers; we include it both for completeness and as an extra
//! mechanism to exercise the framework's Lemma 3 path.

use crate::duchi::DuchiMechanism;
use crate::error::check_epsilon;
use crate::mechanism::{Bound, Mechanism};
use crate::piecewise::PiecewiseMechanism;
use rand::Rng;
use rand::RngCore;

/// The budget threshold `ε₀` below which the Hybrid mechanism degenerates to
/// pure Duchi (Wang et al. give ε₀ as the positive root of a transcendental
/// equation, ≈ 0.61).
pub const HYBRID_EPSILON_THRESHOLD: f64 = 0.61;

/// Hybrid mechanism on the input domain `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct HybridMechanism {
    epsilon: f64,
    alpha: f64,
    piecewise: PiecewiseMechanism,
    duchi: DuchiMechanism,
}

impl HybridMechanism {
    /// Create a Hybrid mechanism with per-dimension budget `epsilon`.
    ///
    /// # Errors
    /// Returns [`crate::MechanismError::InvalidEpsilon`] when `epsilon` is not
    /// positive and finite (or too extreme for the Piecewise component).
    pub fn new(epsilon: f64) -> crate::Result<Self> {
        let epsilon = check_epsilon(epsilon)?;
        let alpha = if epsilon > HYBRID_EPSILON_THRESHOLD {
            1.0 - (-epsilon / 2.0).exp()
        } else {
            0.0
        };
        Ok(Self {
            epsilon,
            alpha,
            piecewise: PiecewiseMechanism::new(epsilon)?,
            duchi: DuchiMechanism::new(epsilon)?,
        })
    }

    /// The mixing probability `α` of the Piecewise component.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The Piecewise component.
    pub fn piecewise(&self) -> &PiecewiseMechanism {
        &self.piecewise
    }

    /// The Duchi component.
    pub fn duchi(&self) -> &DuchiMechanism {
        &self.duchi
    }
}

impl Mechanism for HybridMechanism {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn bound(&self) -> Bound {
        // The output is bounded by the larger of the two component bounds.
        let pm = self.piecewise.output_bound();
        let duchi = self.duchi.output_magnitude();
        Bound::Bounded(pm.max(duchi))
    }

    fn input_domain(&self) -> (f64, f64) {
        (-1.0, 1.0)
    }

    fn output_support(&self) -> (f64, f64) {
        // Computed directly (the same expression as `bound()`) so no
        // unreachable arm is needed for the Unbounded case.
        let b = self
            .piecewise
            .output_bound()
            .max(self.duchi.output_magnitude());
        (-b, b)
    }

    fn perturb(&self, t: f64, rng: &mut dyn RngCore) -> f64 {
        if self.alpha > 0.0 && rng.gen_bool(self.alpha) {
            self.piecewise.perturb(t, rng)
        } else {
            self.duchi.perturb(t, rng)
        }
    }

    fn bias(&self, _t: f64) -> f64 {
        0.0
    }

    fn variance(&self, t: f64) -> f64 {
        // Mixture of two unbiased estimators with identical means: the mean
        // term of the law of total variance vanishes.
        self.alpha * self.piecewise.variance(t) + (1.0 - self.alpha) * self.duchi.variance(t)
    }

    fn is_unbiased(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::assert_moments_match_monte_carlo;

    #[test]
    fn construction_validates_epsilon() {
        assert!(HybridMechanism::new(1.0).is_ok());
        assert!(HybridMechanism::new(0.0).is_err());
        assert!(HybridMechanism::new(f64::NAN).is_err());
    }

    #[test]
    fn alpha_respects_threshold() {
        let low = HybridMechanism::new(0.5).unwrap();
        assert_eq!(low.alpha(), 0.0);
        let high = HybridMechanism::new(1.0).unwrap();
        assert!((high.alpha() - (1.0 - (-0.5f64).exp())).abs() < 1e-12);
        assert!(high.alpha() > 0.0);
    }

    #[test]
    fn below_threshold_behaves_like_duchi() {
        let m = HybridMechanism::new(0.4).unwrap();
        for &t in &[-0.8, 0.0, 0.6] {
            assert!((m.variance(t) - m.duchi().variance(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn variance_is_weighted_average_of_components() {
        let m = HybridMechanism::new(2.0).unwrap();
        for &t in &[-1.0, -0.2, 0.5, 1.0] {
            let want =
                m.alpha() * m.piecewise().variance(t) + (1.0 - m.alpha()) * m.duchi().variance(t);
            assert!((m.variance(t) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn hybrid_never_worse_than_worst_component() {
        let m = HybridMechanism::new(1.5).unwrap();
        for &t in &[-0.9, 0.0, 0.9] {
            let worst = m.piecewise().variance(t).max(m.duchi().variance(t));
            assert!(m.variance(t) <= worst + 1e-12);
        }
    }

    #[test]
    fn closed_form_moments_match_monte_carlo() {
        let m = HybridMechanism::new(1.0).unwrap();
        assert_moments_match_monte_carlo(&m, &[-0.7, 0.0, 0.4, 1.0], 300_000, 0.05, 0.05, 63);
    }

    #[test]
    fn bounded_metadata() {
        let m = HybridMechanism::new(1.0).unwrap();
        assert!(m.bound().is_bounded());
        assert!(m.is_unbiased());
        let (lo, hi) = m.output_support();
        assert_eq!(-lo, hi);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn variance_positive_and_alpha_valid(eps in 0.05f64..10.0, t in -1.0f64..1.0) {
                let m = HybridMechanism::new(eps).unwrap();
                prop_assert!((0.0..1.0).contains(&m.alpha()));
                prop_assert!(m.variance(t) > 0.0);
            }
        }
    }
}
