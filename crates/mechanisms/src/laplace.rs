//! The Laplace mechanism (Dwork et al., 2006) — the canonical *unbounded*
//! mechanism of the paper's taxonomy.
//!
//! For a value `t ∈ [-1, 1]` the sensitivity is `Δ = 2`, so the mechanism
//! reports `t* = t + Lap(2/ε)`. The noise has zero mean (unbiased estimation)
//! and variance `2·(2/ε)² = 8/ε²` independent of `t`.

use crate::error::check_epsilon;
use crate::mechanism::{clamp_to_domain, Bound, Mechanism};
use hdldp_math::Laplace;
use rand::RngCore;

/// Laplace mechanism on the input domain `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct LaplaceMechanism {
    epsilon: f64,
    noise: Laplace,
}

impl LaplaceMechanism {
    /// Sensitivity of a value in `[-1, 1]`.
    pub const SENSITIVITY: f64 = 2.0;

    /// Create a Laplace mechanism with per-dimension budget `epsilon`.
    ///
    /// # Errors
    /// Returns [`crate::MechanismError::InvalidEpsilon`] when `epsilon` is not
    /// positive and finite.
    pub fn new(epsilon: f64) -> crate::Result<Self> {
        let epsilon = check_epsilon(epsilon)?;
        let scale = Self::SENSITIVITY / epsilon;
        // 2/ε overflows to +inf for subnormal ε, which `centered` rejects;
        // surface that as the invalid-parameter error instead of panicking.
        let noise =
            Laplace::centered(scale).map_err(|e| crate::MechanismError::InvalidParameter {
                name: "epsilon",
                reason: e.to_string(),
            })?;
        Ok(Self { epsilon, noise })
    }

    /// The scale `λ = 2/ε` of the injected Laplace noise.
    pub fn noise_scale(&self) -> f64 {
        self.noise.scale()
    }

    /// The underlying noise distribution (used by the Berry–Esseen example of
    /// Section IV-D, which needs its third absolute moment).
    pub fn noise_distribution(&self) -> Laplace {
        self.noise
    }
}

impl Mechanism for LaplaceMechanism {
    fn name(&self) -> &'static str {
        "laplace"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn bound(&self) -> Bound {
        Bound::Unbounded
    }

    fn input_domain(&self) -> (f64, f64) {
        (-1.0, 1.0)
    }

    fn output_support(&self) -> (f64, f64) {
        (f64::NEG_INFINITY, f64::INFINITY)
    }

    fn perturb(&self, t: f64, rng: &mut dyn RngCore) -> f64 {
        let t = clamp_to_domain(t, -1.0, 1.0);
        t + self.noise.sample(rng)
    }

    fn bias(&self, _t: f64) -> f64 {
        0.0
    }

    fn variance(&self, _t: f64) -> f64 {
        self.noise.variance()
    }

    fn is_unbiased(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{empirical_density_ratio_bound, monte_carlo_moments};

    #[test]
    fn construction_validates_epsilon() {
        assert!(LaplaceMechanism::new(1.0).is_ok());
        assert!(LaplaceMechanism::new(0.0).is_err());
        assert!(LaplaceMechanism::new(f64::NAN).is_err());
    }

    #[test]
    fn noise_scale_is_two_over_epsilon() {
        let m = LaplaceMechanism::new(0.5).unwrap();
        assert!((m.noise_scale() - 4.0).abs() < 1e-12);
        assert!((m.variance(0.3) - 32.0).abs() < 1e-12); // 2 * 4^2
    }

    #[test]
    fn metadata_is_consistent() {
        let m = LaplaceMechanism::new(1.0).unwrap();
        assert_eq!(m.name(), "laplace");
        assert_eq!(m.bound(), Bound::Unbounded);
        assert!(m.is_unbiased());
        assert_eq!(m.input_domain(), (-1.0, 1.0));
        assert_eq!(m.output_support().0, f64::NEG_INFINITY);
        assert_eq!(m.bias(0.7), 0.0);
        assert_eq!(m.expected_output(0.7), 0.7);
    }

    #[test]
    fn monte_carlo_matches_closed_form_moments() {
        let m = LaplaceMechanism::new(2.0).unwrap();
        for &t in &[-0.8, 0.0, 0.5, 1.0] {
            let (mean, var) = monte_carlo_moments(&m, t, 200_000, 11);
            assert!((mean - t).abs() < 0.02, "t = {t}, mean = {mean}");
            let want = m.variance(t);
            assert!(
                (var - want).abs() / want < 0.05,
                "t = {t}, var = {var}, want {want}"
            );
        }
    }

    #[test]
    fn out_of_domain_inputs_are_clamped() {
        let m = LaplaceMechanism::new(1.0).unwrap();
        let (mean_hi, _) = monte_carlo_moments(&m, 5.0, 100_000, 3);
        assert!((mean_hi - 1.0).abs() < 0.05, "mean = {mean_hi}");
    }

    #[test]
    fn empirical_privacy_ratio_is_bounded() {
        // The density ratio between the most distant inputs (-1 and 1) must be
        // at most e^eps everywhere; we check it empirically on a grid.
        let eps = 1.0;
        let m = LaplaceMechanism::new(eps).unwrap();
        let ratio = empirical_density_ratio_bound(&m, -1.0, 1.0, (-4.0, 4.0), 2_000_000, 17);
        assert!(
            ratio <= eps.exp() * 1.15,
            "empirical ratio {ratio} exceeds e^eps = {}",
            eps.exp()
        );
    }
}
