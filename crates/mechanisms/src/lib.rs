//! # hdldp-mechanisms
//!
//! Local differential privacy perturbation mechanisms, under the unified
//! abstraction of Section IV-B of *Utility Analysis and Enhancement of LDP
//! Mechanisms in High-Dimensional Space* (ICDE 2022).
//!
//! Every mechanism perturbs a single numeric value from its input domain into
//! a (possibly unbounded) output domain while satisfying ε-LDP, and exposes the
//! two quantities the paper's analytical framework consumes:
//!
//! * `bias(t) = δ(t) = E[M(t)] − t`, and
//! * `variance(t) = Var[M(t)]`,
//!
//! in closed form. For *unbounded* mechanisms (`Bound::Unbounded`) these are
//! independent of `t` (Lemma 1); for *bounded* mechanisms (`Bound::Bounded(B)`)
//! they depend on `t` and the framework takes expectations over the empirical
//! value distribution (Lemma 3).
//!
//! Implemented mechanisms:
//!
//! | Mechanism | Type | Reference |
//! |---|---|---|
//! | [`LaplaceMechanism`] | unbounded | Dwork et al. 2006 |
//! | [`ScdfMechanism`] | unbounded | Soria-Comas & Domingo-Ferrer 2013 |
//! | [`StaircaseMechanism`] | unbounded | Geng et al. 2015 |
//! | [`DuchiMechanism`] | bounded (binary output) | Duchi et al. 2018 |
//! | [`PiecewiseMechanism`] | bounded | Wang et al. ICDE 2019 |
//! | [`HybridMechanism`] | bounded | Wang et al. ICDE 2019 |
//! | [`SquareWaveMechanism`] | bounded | Li et al. SIGMOD 2020 |
//!
//! plus the [`rescale::Rescaled`] adapter that transports any mechanism to a
//! different input interval (used to run the natively-`[0,1]` Square Wave
//! mechanism on `[-1,1]`-normalized data and to run `[-1,1]` mechanisms on the
//! `[0,1]` entries of histogram-encoded categorical data).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod duchi;
pub mod error;
pub mod hybrid;
pub mod laplace;
pub mod mechanism;
pub mod piecewise;
pub mod rescale;
pub mod scdf;
pub mod square_wave;
pub mod staircase;
pub mod testing;

pub use duchi::DuchiMechanism;
pub use error::MechanismError;
pub use hybrid::HybridMechanism;
pub use laplace::LaplaceMechanism;
pub use mechanism::{Bound, Mechanism, MechanismKind};
pub use piecewise::PiecewiseMechanism;
pub use rescale::Rescaled;
pub use scdf::ScdfMechanism;
pub use square_wave::SquareWaveMechanism;
pub use staircase::StaircaseMechanism;

/// Convenience result alias for mechanism construction.
pub type Result<T> = std::result::Result<T, MechanismError>;

/// Construct a mechanism of the given [`MechanismKind`] with a per-dimension
/// privacy budget `epsilon`, on the canonical `[-1, 1]` input domain.
///
/// Square Wave is wrapped in [`Rescaled`] so that its native `[0, 1]` domain is
/// transported to `[-1, 1]`, matching how the paper's experiments normalize
/// every dimension into `[-1, 1]`.
///
/// # Errors
/// Propagates the constructor error of the underlying mechanism (non-positive
/// or non-finite `epsilon`).
pub fn build_mechanism(kind: MechanismKind, epsilon: f64) -> Result<Box<dyn Mechanism>> {
    Ok(match kind {
        MechanismKind::Laplace => Box::new(LaplaceMechanism::new(epsilon)?),
        MechanismKind::Scdf => Box::new(ScdfMechanism::new(epsilon)?),
        MechanismKind::Staircase => Box::new(StaircaseMechanism::new(epsilon)?),
        MechanismKind::Duchi => Box::new(DuchiMechanism::new(epsilon)?),
        MechanismKind::Piecewise => Box::new(PiecewiseMechanism::new(epsilon)?),
        MechanismKind::Hybrid => Box::new(HybridMechanism::new(epsilon)?),
        MechanismKind::SquareWave => Box::new(Rescaled::new(
            SquareWaveMechanism::new(epsilon)?,
            -1.0,
            1.0,
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_mechanism_constructs_every_kind() {
        for kind in MechanismKind::ALL {
            let m = build_mechanism(kind, 1.0).unwrap();
            assert_eq!(m.input_domain(), (-1.0, 1.0), "{kind:?}");
            assert!((m.epsilon() - 1.0).abs() < 1e-12, "{kind:?}");
        }
    }

    #[test]
    fn build_mechanism_rejects_bad_epsilon() {
        for kind in MechanismKind::ALL {
            assert!(build_mechanism(kind, 0.0).is_err(), "{kind:?}");
            assert!(build_mechanism(kind, -1.0).is_err(), "{kind:?}");
            assert!(build_mechanism(kind, f64::NAN).is_err(), "{kind:?}");
        }
    }
}
