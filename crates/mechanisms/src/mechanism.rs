//! The unified [`Mechanism`] trait of the paper's analytical framework.
//!
//! Section IV-B generalizes a `d`-dimensional LDP mechanism into three phases
//! (perturbation, calibration, aggregation) and characterises each mechanism
//! by whether its perturbation has a finite boundary (`Bound(M)`), its bias
//! `δ(t) = E[M(t) − t]` and its variance `Var[M(t)]`. The trait below captures
//! exactly that interface; everything downstream (the collection protocol, the
//! analytical framework, HDR4ME) is written against it, so adding a new
//! mechanism automatically plugs it into the benchmark and the re-calibration
//! protocol.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Whether a mechanism's output support is finite (`Bound(M) = 1` in the
/// paper) or the whole real line (`Bound(M) = 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// The perturbed value can be any real number (`t* = t + N`, Laplace-like).
    Unbounded,
    /// The perturbed value always lies in `[-B, B]` (after centring); the
    /// stored value is `B`.
    Bounded(f64),
}

impl Bound {
    /// `true` for [`Bound::Bounded`].
    pub fn is_bounded(&self) -> bool {
        matches!(self, Bound::Bounded(_))
    }

    /// The finite bound `B`, if any.
    pub fn limit(&self) -> Option<f64> {
        match self {
            Bound::Bounded(b) => Some(*b),
            Bound::Unbounded => None,
        }
    }
}

/// Identifier for the concrete mechanisms shipped with this crate.
///
/// Used by the experiment harness and the examples to select mechanisms from
/// the command line / configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MechanismKind {
    /// Laplace mechanism (Dwork et al.).
    Laplace,
    /// SCDF data-independent staircase-shaped noise (Soria-Comas & Domingo-Ferrer).
    Scdf,
    /// Staircase mechanism (Geng et al.).
    Staircase,
    /// Duchi et al. binary mechanism.
    Duchi,
    /// Piecewise mechanism (Wang et al.).
    Piecewise,
    /// Hybrid mechanism (Wang et al.).
    Hybrid,
    /// Square Wave mechanism (Li et al.).
    SquareWave,
}

impl MechanismKind {
    /// Every kind, in a stable order.
    pub const ALL: [MechanismKind; 7] = [
        MechanismKind::Laplace,
        MechanismKind::Scdf,
        MechanismKind::Staircase,
        MechanismKind::Duchi,
        MechanismKind::Piecewise,
        MechanismKind::Hybrid,
        MechanismKind::SquareWave,
    ];

    /// The three mechanisms evaluated in the paper's experiments (Section VI).
    pub const PAPER_EVALUATED: [MechanismKind; 3] = [
        MechanismKind::Laplace,
        MechanismKind::Piecewise,
        MechanismKind::SquareWave,
    ];

    /// Short lowercase name (stable; used for CLI flags and result files).
    pub fn name(&self) -> &'static str {
        match self {
            MechanismKind::Laplace => "laplace",
            MechanismKind::Scdf => "scdf",
            MechanismKind::Staircase => "staircase",
            MechanismKind::Duchi => "duchi",
            MechanismKind::Piecewise => "piecewise",
            MechanismKind::Hybrid => "hybrid",
            MechanismKind::SquareWave => "square_wave",
        }
    }

    /// Parse a mechanism name produced by [`MechanismKind::name`]
    /// (case-insensitive, also accepts a few common aliases).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "laplace" | "lap" => Some(MechanismKind::Laplace),
            "scdf" => Some(MechanismKind::Scdf),
            "staircase" | "stair" => Some(MechanismKind::Staircase),
            "duchi" => Some(MechanismKind::Duchi),
            "piecewise" | "pm" => Some(MechanismKind::Piecewise),
            "hybrid" | "hm" => Some(MechanismKind::Hybrid),
            "square_wave" | "square" | "sw" => Some(MechanismKind::SquareWave),
            _ => None,
        }
    }
}

/// A one-dimensional ε-LDP perturbation mechanism.
///
/// Implementations must guarantee that for any pair of inputs `t, t'` in the
/// input domain and any output `t*`, the densities satisfy
/// `p(M(t) = t*) / p(M(t') = t*) ≤ e^ε` (Definition 1 of the paper).
pub trait Mechanism: Send + Sync {
    /// Human-readable mechanism name.
    fn name(&self) -> &'static str;

    /// The per-dimension privacy budget ε this instance was built with.
    fn epsilon(&self) -> f64;

    /// Whether the output support is finite, and its bound.
    fn bound(&self) -> Bound;

    /// The interval of inputs this mechanism accepts, `(lo, hi)`.
    fn input_domain(&self) -> (f64, f64);

    /// The interval that contains all possible outputs. Unbounded mechanisms
    /// return `(f64::NEG_INFINITY, f64::INFINITY)`.
    fn output_support(&self) -> (f64, f64);

    /// Perturb one value. `t` must lie in [`Mechanism::input_domain`]; values
    /// outside are clamped (callers are expected to have normalized data, the
    /// clamp is a safety net mirroring real deployments).
    fn perturb(&self, t: f64, rng: &mut dyn RngCore) -> f64;

    /// Closed-form bias `δ(t) = E[M(t)] − t`.
    fn bias(&self, t: f64) -> f64;

    /// Closed-form variance `Var[M(t)]`.
    fn variance(&self, t: f64) -> f64;

    /// Expected output `E[M(t)] = t + δ(t)`.
    fn expected_output(&self, t: f64) -> f64 {
        t + self.bias(t)
    }

    /// The Lemma 3 moment pair `(E[δ(v)], E[Var[M(v)]])` over a discrete value
    /// distribution: `values[z]` occurs with probability `probabilities[z]`.
    ///
    /// Equivalent to two `Σ p_z f(v_z)` expectations (same accumulation order,
    /// starting from zero), but fused into one pass so the batched framework
    /// paths pay one dynamic dispatch per *dimension* instead of one per value
    /// — and monomorphization inlines the concrete `bias`/`variance` bodies
    /// into the loop. Slices of unequal length are zipped to the shorter one,
    /// matching `Iterator::zip`; callers pass distribution-validated slices.
    fn expected_moments(&self, values: &[f64], probabilities: &[f64]) -> (f64, f64) {
        let mut bias = 0.0;
        let mut variance = 0.0;
        for (&v, &p) in values.iter().zip(probabilities) {
            bias += p * self.bias(v);
            variance += p * self.variance(v);
        }
        (bias, variance)
    }

    /// `true` when `δ(t) = 0` for every `t` (unbiased estimation).
    fn is_unbiased(&self) -> bool {
        false
    }
}

/// Clamp a value into a closed interval; shared helper for implementations.
pub(crate) fn clamp_to_domain(t: f64, lo: f64, hi: f64) -> f64 {
    if t.is_nan() {
        // A NaN input would silently poison the aggregate; map it to the
        // domain midpoint, which is the least informative legal value.
        0.5 * (lo + hi)
    } else {
        t.clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_accessors() {
        assert!(Bound::Bounded(2.0).is_bounded());
        assert!(!Bound::Unbounded.is_bounded());
        assert_eq!(Bound::Bounded(2.0).limit(), Some(2.0));
        assert_eq!(Bound::Unbounded.limit(), None);
    }

    #[test]
    fn kind_name_round_trips() {
        for kind in MechanismKind::ALL {
            assert_eq!(MechanismKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(MechanismKind::parse("PM"), Some(MechanismKind::Piecewise));
        assert_eq!(MechanismKind::parse("sw"), Some(MechanismKind::SquareWave));
        assert_eq!(MechanismKind::parse("unknown"), None);
    }

    #[test]
    fn paper_evaluated_is_subset_of_all() {
        for kind in MechanismKind::PAPER_EVALUATED {
            assert!(MechanismKind::ALL.contains(&kind));
        }
    }

    #[test]
    fn expected_moments_matches_separate_expectations() {
        use crate::LaplaceMechanism;
        let mechanism = LaplaceMechanism::new(0.5).unwrap();
        let values = [-0.8, -0.1, 0.3, 0.9];
        let probabilities = [0.1, 0.4, 0.3, 0.2];
        let (bias, variance) = mechanism.expected_moments(&values, &probabilities);
        let expected_bias: f64 = values
            .iter()
            .zip(&probabilities)
            .map(|(&v, &p)| p * mechanism.bias(v))
            .sum();
        let expected_variance: f64 = values
            .iter()
            .zip(&probabilities)
            .map(|(&v, &p)| p * mechanism.variance(v))
            .sum();
        assert_eq!(bias.to_bits(), expected_bias.to_bits());
        assert_eq!(variance.to_bits(), expected_variance.to_bits());
    }

    #[test]
    fn clamp_handles_nan_and_out_of_range() {
        assert_eq!(clamp_to_domain(2.0, -1.0, 1.0), 1.0);
        assert_eq!(clamp_to_domain(-7.0, -1.0, 1.0), -1.0);
        assert_eq!(clamp_to_domain(0.3, -1.0, 1.0), 0.3);
        assert_eq!(clamp_to_domain(f64::NAN, -1.0, 1.0), 0.0);
        assert_eq!(clamp_to_domain(f64::NAN, 0.0, 1.0), 0.5);
    }
}
