//! The Piecewise mechanism (Wang et al., ICDE 2019) — Equation 4 of the paper.
//!
//! The perturbed value of `t ∈ [-1, 1]` lies in the bounded interval
//! `[-Q, Q]` with `Q = (e^ε + e^{ε/2})/(e^ε − e^{ε/2}) = (e^{ε/2}+1)/(e^{ε/2}−1)`,
//! following a two-level piecewise-constant density: a high-probability band
//! `[l(t), r(t)]` of width `Q − 1` centred (affinely) on `t`, and a
//! low-probability remainder. The mechanism is unbiased and its variance is
//!
//! ```text
//! Var[t*] = t² / (e^{ε/2} − 1) + (e^{ε/2} + 3) / (3 (e^{ε/2} − 1)²)
//! ```
//!
//! (the closed form used in the paper's case study, Equation 14 — the paper's
//! typeset formula writes `t*_ij` where `t²_ij` is meant; the numeric value
//! `σ² = 533.210` in Equation 15 is only reproduced with the `t²` form, which
//! is also the form in the original Piecewise-mechanism paper).

use crate::error::check_epsilon;
use crate::mechanism::{clamp_to_domain, Bound, Mechanism};
use rand::Rng;
use rand::RngCore;

/// Piecewise mechanism on the input domain `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct PiecewiseMechanism {
    epsilon: f64,
    /// `e^{ε/2}`.
    exp_half: f64,
    /// Output bound `Q`.
    q: f64,
}

impl PiecewiseMechanism {
    /// Create a Piecewise mechanism with per-dimension budget `epsilon`.
    ///
    /// # Errors
    /// Returns [`crate::MechanismError::InvalidEpsilon`] when `epsilon` is not
    /// positive and finite.
    pub fn new(epsilon: f64) -> crate::Result<Self> {
        let epsilon = check_epsilon(epsilon)?;
        let exp_half = (epsilon / 2.0).exp();
        // Guard against overflow for extreme budgets: e^{ε/2} = inf would make
        // every derived quantity NaN. For ε beyond ~1400 the mechanism is
        // essentially noiseless anyway; treat it as invalid input instead of
        // returning NaNs.
        if !exp_half.is_finite() || exp_half <= 1.0 {
            return Err(crate::MechanismError::InvalidParameter {
                name: "epsilon",
                reason: format!("epsilon {epsilon} is too extreme for the Piecewise mechanism"),
            });
        }
        let q = (exp_half + 1.0) / (exp_half - 1.0);
        Ok(Self {
            epsilon,
            exp_half,
            q,
        })
    }

    /// The output bound `Q`.
    pub fn output_bound(&self) -> f64 {
        self.q
    }

    /// Left edge `l(t)` of the high-probability band.
    pub fn band_left(&self, t: f64) -> f64 {
        let t = clamp_to_domain(t, -1.0, 1.0);
        (self.q + 1.0) / 2.0 * t - (self.q - 1.0) / 2.0
    }

    /// Right edge `r(t) = l(t) + Q − 1` of the high-probability band.
    pub fn band_right(&self, t: f64) -> f64 {
        self.band_left(t) + self.q - 1.0
    }

    /// Density inside the high-probability band,
    /// `(e^ε − e^{ε/2}) / (2 e^{ε/2} + 2)`.
    pub fn high_density(&self) -> f64 {
        (self.exp_half * self.exp_half - self.exp_half) / (2.0 * self.exp_half + 2.0)
    }

    /// Density outside the band, `(1 − e^{−ε/2}) / (2 e^{ε/2} + 2)`.
    pub fn low_density(&self) -> f64 {
        (1.0 - 1.0 / self.exp_half) / (2.0 * self.exp_half + 2.0)
    }

    /// Probability that the report falls inside the high-probability band,
    /// `e^{ε/2} / (e^{ε/2} + 1)`.
    pub fn prob_in_band(&self) -> f64 {
        self.exp_half / (self.exp_half + 1.0)
    }
}

impl Mechanism for PiecewiseMechanism {
    fn name(&self) -> &'static str {
        "piecewise"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn bound(&self) -> Bound {
        Bound::Bounded(self.q)
    }

    fn input_domain(&self) -> (f64, f64) {
        (-1.0, 1.0)
    }

    fn output_support(&self) -> (f64, f64) {
        (-self.q, self.q)
    }

    fn perturb(&self, t: f64, rng: &mut dyn RngCore) -> f64 {
        let t = clamp_to_domain(t, -1.0, 1.0);
        let l = self.band_left(t);
        let r = self.band_right(t);
        if rng.gen_bool(self.prob_in_band()) {
            // Uniform inside [l, r].
            rng.gen_range(l..=r)
        } else {
            // Uniform over [-Q, l) ∪ (r, Q], proportionally to the lengths of
            // the two pieces.
            let left_len = l - (-self.q);
            let right_len = self.q - r;
            let total = left_len + right_len;
            if total <= 0.0 {
                // Degenerate only if Q = 1 (impossible for finite ε), but keep
                // a safe fallback.
                return rng.gen_range(l..=r);
            }
            let u: f64 = rng.gen_range(0.0..total);
            if u < left_len {
                -self.q + u
            } else {
                r + (u - left_len)
            }
        }
    }

    fn bias(&self, _t: f64) -> f64 {
        0.0
    }

    fn variance(&self, t: f64) -> f64 {
        let t = clamp_to_domain(t, -1.0, 1.0);
        let s = self.exp_half;
        t * t / (s - 1.0) + (s + 3.0) / (3.0 * (s - 1.0) * (s - 1.0))
    }

    fn is_unbiased(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::assert_moments_match_monte_carlo;
    use hdldp_math::integrate::gauss_legendre_composite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_epsilon() {
        assert!(PiecewiseMechanism::new(1.0).is_ok());
        assert!(PiecewiseMechanism::new(0.0).is_err());
        assert!(PiecewiseMechanism::new(f64::INFINITY).is_err());
        assert!(PiecewiseMechanism::new(5000.0).is_err()); // e^{2500} overflows
    }

    #[test]
    fn output_bound_matches_paper_formula() {
        // Q = (e^ε + e^{ε/2}) / (e^ε − e^{ε/2}), equivalently (e^{ε/2}+1)/(e^{ε/2}−1).
        for &eps in &[0.1, 0.5, 1.0, 2.0, 4.0] {
            let m = PiecewiseMechanism::new(eps).unwrap();
            let direct = (eps.exp() + (eps / 2.0).exp()) / (eps.exp() - (eps / 2.0).exp());
            assert!((m.output_bound() - direct).abs() < 1e-9, "eps = {eps}");
        }
    }

    #[test]
    fn band_geometry_is_consistent() {
        let m = PiecewiseMechanism::new(1.0).unwrap();
        let q = m.output_bound();
        for &t in &[-1.0, -0.25, 0.0, 0.6, 1.0] {
            let l = m.band_left(t);
            let r = m.band_right(t);
            assert!((r - l - (q - 1.0)).abs() < 1e-12, "band width");
            assert!(l >= -q - 1e-12 && r <= q + 1e-12, "band inside [-Q, Q]");
        }
        // At the extremes the band touches the output boundary.
        assert!((m.band_left(-1.0) + q).abs() < 1e-12);
        assert!((m.band_right(1.0) - q).abs() < 1e-12);
    }

    #[test]
    fn density_is_normalized_and_respects_privacy_ratio() {
        for &eps in &[0.2, 1.0, 3.0] {
            let m = PiecewiseMechanism::new(eps).unwrap();
            let q = m.output_bound();
            // Total probability = high * (Q-1) + low * (2Q - (Q-1)) = 1.
            let total = m.high_density() * (q - 1.0) + m.low_density() * (q + 1.0);
            assert!((total - 1.0).abs() < 1e-9, "eps = {eps}, total = {total}");
            // The density ratio between the two levels is exactly e^ε.
            let ratio = m.high_density() / m.low_density();
            assert!((ratio - eps.exp()).abs() / eps.exp() < 1e-9, "eps = {eps}");
            // Probability of the high band matches e^{ε/2}/(e^{ε/2}+1).
            let want = (eps / 2.0).exp() / ((eps / 2.0).exp() + 1.0);
            assert!((m.prob_in_band() - want).abs() < 1e-12);
        }
    }

    #[test]
    fn variance_closed_form_matches_density_integral() {
        // Var[t*] computed by integrating x^2 over the two-level density must
        // match the closed form (this is the cross-check of Equation 14).
        let eps = 0.8;
        let m = PiecewiseMechanism::new(eps).unwrap();
        let q = m.output_bound();
        for &t in &[-0.7, 0.0, 0.3, 1.0] {
            let l = m.band_left(t);
            let r = m.band_right(t);
            let hd = m.high_density();
            let ld = m.low_density();
            // Integrate each constant-density segment separately so the kinks
            // fall on integration boundaries and the quadrature is exact.
            let moment = |p: u32| {
                ld * gauss_legendre_composite(|x| x.powi(p as i32), -q, l, 8).unwrap()
                    + hd * gauss_legendre_composite(|x| x.powi(p as i32), l, r, 8).unwrap()
                    + ld * gauss_legendre_composite(|x| x.powi(p as i32), r, q, 8).unwrap()
            };
            let ex = moment(1);
            let ex2 = moment(2);
            assert!((ex - t).abs() < 1e-6, "unbiasedness via integral, t = {t}");
            let var_integral = ex2 - ex * ex;
            let var_closed = m.variance(t);
            assert!(
                (var_integral - var_closed).abs() / var_closed < 1e-6,
                "t = {t}: integral {var_integral} vs closed {var_closed}"
            );
        }
    }

    #[test]
    fn outputs_stay_in_bounds() {
        let m = PiecewiseMechanism::new(0.5).unwrap();
        let q = m.output_bound();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..5000 {
            let t = -1.0 + 2.0 * (i % 100) as f64 / 99.0;
            let out = m.perturb(t, &mut rng);
            assert!(out >= -q - 1e-12 && out <= q + 1e-12);
        }
    }

    #[test]
    fn closed_form_moments_match_monte_carlo() {
        let m = PiecewiseMechanism::new(1.0).unwrap();
        assert_moments_match_monte_carlo(&m, &[-1.0, -0.3, 0.0, 0.5, 1.0], 300_000, 0.05, 0.05, 77);
    }

    #[test]
    fn case_study_variance_value() {
        // Section IV-C: ε/m = 0.001, values {0.1, ..., 1.0} with probability 10%
        // each, r = 10,000 ⇒ σ² = Σ p Var(t) / r ≈ 533.2.
        let m = PiecewiseMechanism::new(0.001).unwrap();
        let values: Vec<f64> = (1..=10).map(|k| k as f64 / 10.0).collect();
        let mean_var: f64 = values.iter().map(|&t| m.variance(t)).sum::<f64>() / 10.0;
        let sigma2 = mean_var / 10_000.0;
        assert!(
            (sigma2 - 533.2).abs() < 1.0,
            "sigma^2 = {sigma2}, paper reports 533.210"
        );
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn band_and_variance_well_formed(eps in 0.01f64..20.0, t in -1.0f64..1.0) {
                let m = PiecewiseMechanism::new(eps).unwrap();
                prop_assert!(m.band_left(t) <= m.band_right(t));
                prop_assert!(m.variance(t) > 0.0);
                prop_assert!(m.high_density() > m.low_density());
            }

            #[test]
            fn perturbed_value_within_output_bound(
                eps in 0.05f64..10.0,
                t in -1.0f64..1.0,
                seed in 0u64..500,
            ) {
                let m = PiecewiseMechanism::new(eps).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let out = m.perturb(t, &mut rng);
                prop_assert!(out.abs() <= m.output_bound() + 1e-12);
            }
        }
    }
}
