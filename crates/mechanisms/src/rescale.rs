//! The [`Rescaled`] adapter: transport any mechanism to a different input
//! interval through an affine map.
//!
//! Two places in the reproduction need this:
//!
//! * the Square Wave mechanism is natively defined on `[0, 1]` while the
//!   paper's experiments normalize every dimension into `[-1, 1]`;
//! * the frequency-estimation extension (Section V-C) histogram-encodes
//!   categorical values into `{0, 1}` entries, i.e. the `[0, 1]` domain, while
//!   Laplace/Piecewise are natively defined on `[-1, 1]`.
//!
//! An affine change of variables keeps ε-LDP intact (it is a bijection applied
//! independently of the data) and transforms the moments predictably:
//! with scale `s`, `bias_out(x) = s · bias_in(u)` and
//! `var_out(x) = s² · var_in(u)` where `u` is the mapped input.

use crate::mechanism::{Bound, Mechanism};
use rand::RngCore;

/// A mechanism re-parameterised to accept inputs from `[lo, hi]` instead of
/// its native input domain.
#[derive(Debug, Clone)]
pub struct Rescaled<M> {
    inner: M,
    lo: f64,
    hi: f64,
    /// Native domain of the inner mechanism.
    native_lo: f64,
    native_hi: f64,
}

impl<M: Mechanism> Rescaled<M> {
    /// Wrap `inner` so that it accepts inputs from `[lo, hi]`.
    ///
    /// # Errors
    /// Returns [`crate::MechanismError::InvalidParameter`] when `lo >= hi` or
    /// either endpoint is not finite.
    pub fn new(inner: M, lo: f64, hi: f64) -> crate::Result<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(crate::MechanismError::InvalidParameter {
                name: "domain",
                reason: format!("require finite lo < hi, got [{lo}, {hi}]"),
            });
        }
        let (native_lo, native_hi) = inner.input_domain();
        Ok(Self {
            inner,
            lo,
            hi,
            native_lo,
            native_hi,
        })
    }

    /// The wrapped mechanism.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Scale factor from the native domain to the exposed domain.
    fn scale(&self) -> f64 {
        (self.hi - self.lo) / (self.native_hi - self.native_lo)
    }

    /// Map an exposed-domain value to the native domain.
    fn to_native(&self, x: f64) -> f64 {
        self.native_lo + (x - self.lo) / self.scale()
    }

    /// Map a native-domain value to the exposed domain.
    #[allow(clippy::wrong_self_convention)]
    fn from_native(&self, u: f64) -> f64 {
        self.lo + (u - self.native_lo) * self.scale()
    }
}

impl<M: Mechanism> Mechanism for Rescaled<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn epsilon(&self) -> f64 {
        self.inner.epsilon()
    }

    fn bound(&self) -> Bound {
        match self.inner.bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Bounded(_) => {
                let (lo, hi) = self.output_support();
                Bound::Bounded(lo.abs().max(hi.abs()))
            }
        }
    }

    fn input_domain(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn output_support(&self) -> (f64, f64) {
        let (nlo, nhi) = self.inner.output_support();
        if nlo.is_infinite() || nhi.is_infinite() {
            return (f64::NEG_INFINITY, f64::INFINITY);
        }
        let a = self.from_native(nlo);
        let b = self.from_native(nhi);
        (a.min(b), a.max(b))
    }

    fn perturb(&self, t: f64, rng: &mut dyn RngCore) -> f64 {
        let u = self.to_native(t.clamp(self.lo, self.hi));
        self.from_native(self.inner.perturb(u, rng))
    }

    fn bias(&self, t: f64) -> f64 {
        let u = self.to_native(t.clamp(self.lo, self.hi));
        self.scale() * self.inner.bias(u)
    }

    fn variance(&self, t: f64) -> f64 {
        let u = self.to_native(t.clamp(self.lo, self.hi));
        self.scale() * self.scale() * self.inner.variance(u)
    }

    fn is_unbiased(&self) -> bool {
        self.inner.is_unbiased()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_moments_match_monte_carlo, monte_carlo_moments};
    use crate::{LaplaceMechanism, PiecewiseMechanism, SquareWaveMechanism};

    #[test]
    fn construction_validates_domain() {
        let m = PiecewiseMechanism::new(1.0).unwrap();
        assert!(Rescaled::new(m.clone(), 0.0, 1.0).is_ok());
        assert!(Rescaled::new(m.clone(), 1.0, 0.0).is_err());
        assert!(Rescaled::new(m.clone(), 0.0, 0.0).is_err());
        assert!(Rescaled::new(m, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn identity_rescaling_changes_nothing() {
        let inner = PiecewiseMechanism::new(1.0).unwrap();
        let wrapped = Rescaled::new(inner.clone(), -1.0, 1.0).unwrap();
        for &t in &[-0.8, 0.0, 0.6] {
            assert!((wrapped.bias(t) - inner.bias(t)).abs() < 1e-12);
            assert!((wrapped.variance(t) - inner.variance(t)).abs() < 1e-12);
        }
        assert_eq!(wrapped.output_support(), inner.output_support());
    }

    #[test]
    fn square_wave_on_symmetric_domain_has_scaled_moments() {
        let sw = SquareWaveMechanism::new(1.0).unwrap();
        let wrapped = Rescaled::new(sw.clone(), -1.0, 1.0).unwrap();
        assert_eq!(wrapped.input_domain(), (-1.0, 1.0));
        // x = 0 maps to u = 0.5; scale = 2.
        assert!((wrapped.bias(0.0) - 2.0 * sw.bias(0.5)).abs() < 1e-12);
        assert!((wrapped.variance(0.0) - 4.0 * sw.variance(0.5)).abs() < 1e-12);
        // Output support is [-1 - 2b, 1 + 2b].
        let (lo, hi) = wrapped.output_support();
        assert!((hi - (1.0 + 2.0 * sw.b())).abs() < 1e-12);
        assert!((lo - (-1.0 - 2.0 * sw.b())).abs() < 1e-12);
        assert!(wrapped.bound().is_bounded());
    }

    #[test]
    fn unbounded_inner_stays_unbounded() {
        let lap = LaplaceMechanism::new(1.0).unwrap();
        let wrapped = Rescaled::new(lap, 0.0, 1.0).unwrap();
        assert_eq!(wrapped.bound(), Bound::Unbounded);
        assert_eq!(wrapped.output_support().0, f64::NEG_INFINITY);
        // Scale is 1/2: variance shrinks by 4.
        assert!((wrapped.variance(0.5) - 8.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn rescaled_moments_match_monte_carlo() {
        let sw = SquareWaveMechanism::new(1.0).unwrap();
        let wrapped = Rescaled::new(sw, -1.0, 1.0).unwrap();
        assert_moments_match_monte_carlo(
            &wrapped,
            &[-1.0, -0.4, 0.0, 0.5, 1.0],
            300_000,
            0.01,
            0.05,
            19,
        );
    }

    #[test]
    fn piecewise_on_unit_interval_for_frequency_encoding() {
        // Frequency estimation perturbs {0, 1} entries; the rescaled Piecewise
        // mechanism must stay unbiased on that domain.
        let pm = PiecewiseMechanism::new(2.0).unwrap();
        let wrapped = Rescaled::new(pm, 0.0, 1.0).unwrap();
        assert!(wrapped.is_unbiased());
        for &t in &[0.0, 1.0] {
            let (mean, _) = monte_carlo_moments(&wrapped, t, 200_000, 33);
            assert!((mean - t).abs() < 0.01, "t = {t}, mean = {mean}");
        }
    }

    #[test]
    fn out_of_domain_inputs_are_clamped_to_new_domain() {
        let pm = PiecewiseMechanism::new(1.0).unwrap();
        let wrapped = Rescaled::new(pm, 0.0, 1.0).unwrap();
        // bias/variance of a clamped value equal those at the boundary.
        assert_eq!(wrapped.variance(7.0), wrapped.variance(1.0));
        assert_eq!(wrapped.bias(-3.0), wrapped.bias(0.0));
    }
}
