//! The SCDF mechanism — the "optimal data-independent noise" of Soria-Comas and
//! Domingo-Ferrer (Information Sciences 2013), which the paper classifies as an
//! *unbounded* Laplace variant.
//!
//! Soria-Comas & Domingo-Ferrer show that a variance-improving
//! data-independent noise for ε-DP is piecewise constant on intervals of the
//! sensitivity width `Δ`, with the density dropping by a factor `e^{-ε}` from
//! one interval to the next and the central step centred on zero — i.e. the
//! staircase family with shape parameter `γ = 1/2` (their construction
//! predates and is subsumed by the Staircase mechanism's optimisation over
//! `γ`). We therefore implement SCDF as [`StaircaseNoise`] with `γ = 1/2`;
//! see DESIGN.md for the substitution note.

use crate::error::check_epsilon;
use crate::mechanism::{clamp_to_domain, Bound, Mechanism};
use crate::staircase::StaircaseNoise;
use rand::RngCore;

/// SCDF mechanism on the input domain `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct ScdfMechanism {
    noise: StaircaseNoise,
}

impl ScdfMechanism {
    /// Sensitivity of a value in `[-1, 1]`.
    pub const SENSITIVITY: f64 = 2.0;

    /// Create an SCDF mechanism with per-dimension budget `epsilon`.
    ///
    /// # Errors
    /// Returns [`crate::MechanismError::InvalidEpsilon`] when `epsilon` is not
    /// positive and finite.
    pub fn new(epsilon: f64) -> crate::Result<Self> {
        let epsilon = check_epsilon(epsilon)?;
        Ok(Self {
            noise: StaircaseNoise::new(epsilon, Self::SENSITIVITY, 0.5)?,
        })
    }

    /// The underlying piecewise-constant noise distribution.
    pub fn noise(&self) -> &StaircaseNoise {
        &self.noise
    }
}

impl Mechanism for ScdfMechanism {
    fn name(&self) -> &'static str {
        "scdf"
    }

    fn epsilon(&self) -> f64 {
        self.noise.epsilon()
    }

    fn bound(&self) -> Bound {
        Bound::Unbounded
    }

    fn input_domain(&self) -> (f64, f64) {
        (-1.0, 1.0)
    }

    fn output_support(&self) -> (f64, f64) {
        (f64::NEG_INFINITY, f64::INFINITY)
    }

    fn perturb(&self, t: f64, rng: &mut dyn RngCore) -> f64 {
        let t = clamp_to_domain(t, -1.0, 1.0);
        t + self.noise.sample(rng)
    }

    fn bias(&self, _t: f64) -> f64 {
        0.0
    }

    fn variance(&self, _t: f64) -> f64 {
        self.noise.variance()
    }

    fn is_unbiased(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::monte_carlo_moments;
    use crate::{LaplaceMechanism, StaircaseMechanism};

    #[test]
    fn construction_validates_epsilon() {
        assert!(ScdfMechanism::new(1.0).is_ok());
        assert!(ScdfMechanism::new(0.0).is_err());
        assert!(ScdfMechanism::new(f64::NAN).is_err());
    }

    #[test]
    fn gamma_is_fixed_at_one_half() {
        let m = ScdfMechanism::new(0.7).unwrap();
        assert_eq!(m.noise().gamma(), 0.5);
        assert_eq!(m.noise().delta(), 2.0);
    }

    #[test]
    fn unbiased_unbounded_metadata() {
        let m = ScdfMechanism::new(1.0).unwrap();
        assert_eq!(m.name(), "scdf");
        assert_eq!(m.bound(), Bound::Unbounded);
        assert!(m.is_unbiased());
        assert_eq!(m.bias(-0.4), 0.0);
        // Variance is value-independent (Lemma 1 for unbounded mechanisms).
        assert_eq!(m.variance(-1.0), m.variance(0.9));
    }

    #[test]
    fn variance_improves_over_laplace_for_moderate_budgets() {
        // In the moderate-ε regime the centred-staircase SCDF noise has lower
        // variance than Laplace noise at the same ε (for very large ε the
        // fixed central step of width Δ/2 becomes the bottleneck and Laplace
        // wins again, so we only assert the moderate range).
        for &eps in &[2.0, 3.0, 4.0] {
            let scdf = ScdfMechanism::new(eps).unwrap();
            let lap = LaplaceMechanism::new(eps).unwrap();
            assert!(
                scdf.variance(0.0) < lap.variance(0.0),
                "eps = {eps}: scdf {} vs laplace {}",
                scdf.variance(0.0),
                lap.variance(0.0)
            );
        }
    }

    #[test]
    fn optimal_staircase_is_at_least_as_good_as_scdf() {
        // Optimising over γ can only help (γ = 1 is in the feasible set).
        for &eps in &[0.5, 1.0, 3.0, 6.0] {
            let scdf = ScdfMechanism::new(eps).unwrap();
            let stair = StaircaseMechanism::new(eps).unwrap();
            assert!(
                stair.variance(0.0) <= scdf.variance(0.0) * (1.0 + 1e-9),
                "eps = {eps}"
            );
        }
    }

    #[test]
    fn monte_carlo_confirms_moments() {
        let m = ScdfMechanism::new(1.5).unwrap();
        let (mean, var) = monte_carlo_moments(&m, -0.3, 300_000, 8);
        assert!((mean - -0.3).abs() < 0.03, "mean = {mean}");
        assert!(
            (var - m.variance(-0.3)).abs() / m.variance(-0.3) < 0.05,
            "var = {var} vs {}",
            m.variance(-0.3)
        );
    }
}
