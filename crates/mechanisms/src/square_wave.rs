//! The Square Wave mechanism (Li et al., SIGMOD 2020) — Equation 5 of the paper.
//!
//! Natively defined on the input domain `[0, 1]`: the perturbed value lies in
//! `[-b, 1 + b]` with
//!
//! ```text
//! b = (ε e^ε − e^ε + 1) / (2 e^ε (e^ε − 1 − ε))
//! ```
//!
//! and the density is `e^ε/(2be^ε + 1)` within distance `b` of the true value
//! and `1/(2be^ε + 1)` elsewhere. Unlike Piecewise, the estimate is *biased*
//! (Equation 17 of the paper gives the closed form), which is exactly what
//! makes it an interesting case for the analytical framework: Lemma 3 has to
//! carry both the bias and the value-dependent variance (Equation 18).
//!
//! To use it on `[-1, 1]`-normalized data wrap it in
//! [`crate::Rescaled`] (that is what [`crate::build_mechanism`] does).

use crate::error::check_epsilon;
use crate::mechanism::{clamp_to_domain, Bound, Mechanism};
use rand::Rng;
use rand::RngCore;

/// Square Wave mechanism on its native input domain `[0, 1]`.
#[derive(Debug, Clone)]
pub struct SquareWaveMechanism {
    epsilon: f64,
    /// Half-width `b` of the high-probability band.
    b: f64,
    /// `e^ε`.
    exp_eps: f64,
}

impl SquareWaveMechanism {
    /// Create a Square Wave mechanism with per-dimension budget `epsilon`.
    ///
    /// # Errors
    /// Returns [`crate::MechanismError::InvalidEpsilon`] when `epsilon` is not
    /// positive and finite, or so large that `e^ε` overflows.
    pub fn new(epsilon: f64) -> crate::Result<Self> {
        let epsilon = check_epsilon(epsilon)?;
        let exp_eps = epsilon.exp();
        if !exp_eps.is_finite() {
            return Err(crate::MechanismError::InvalidParameter {
                name: "epsilon",
                reason: format!("epsilon {epsilon} is too large: e^epsilon overflows"),
            });
        }
        let b = Self::band_half_width(epsilon);
        Ok(Self {
            epsilon,
            b,
            exp_eps,
        })
    }

    /// The band half-width `b(ε)`.
    ///
    /// For very small `ε` the direct formula suffers catastrophic cancellation
    /// (both numerator and denominator are `O(ε²)`), so below `ε = 10⁻⁴` we
    /// switch to the second-order Taylor expansion
    /// `b ≈ (1/2)·(1 + 2ε/3 + ε²/4)/(1 + 4ε/3 + 11ε²/12)`.
    pub fn band_half_width(epsilon: f64) -> f64 {
        if epsilon < 1e-4 {
            0.5 * (1.0 + 2.0 * epsilon / 3.0 + epsilon * epsilon / 4.0)
                / (1.0 + 4.0 * epsilon / 3.0 + 11.0 * epsilon * epsilon / 12.0)
        } else {
            let e = epsilon.exp();
            (epsilon * e - e + 1.0) / (2.0 * e * (e - 1.0 - epsilon))
        }
    }

    /// The band half-width `b` of this instance.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Density of outputs within distance `b` of the input, `e^ε/(2be^ε + 1)`.
    pub fn high_density(&self) -> f64 {
        self.exp_eps / (2.0 * self.b * self.exp_eps + 1.0)
    }

    /// Density of outputs further than `b` from the input, `1/(2be^ε + 1)`.
    pub fn low_density(&self) -> f64 {
        1.0 / (2.0 * self.b * self.exp_eps + 1.0)
    }

    /// Probability that the report falls in the high-probability band.
    pub fn prob_in_band(&self) -> f64 {
        2.0 * self.b * self.exp_eps / (2.0 * self.b * self.exp_eps + 1.0)
    }
}

impl Mechanism for SquareWaveMechanism {
    fn name(&self) -> &'static str {
        "square_wave"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn bound(&self) -> Bound {
        // Outputs lie in [-b, 1 + b]; the magnitude bound is 1 + b.
        Bound::Bounded(1.0 + self.b)
    }

    fn input_domain(&self) -> (f64, f64) {
        (0.0, 1.0)
    }

    fn output_support(&self) -> (f64, f64) {
        (-self.b, 1.0 + self.b)
    }

    fn perturb(&self, t: f64, rng: &mut dyn RngCore) -> f64 {
        let t = clamp_to_domain(t, 0.0, 1.0);
        if rng.gen_bool(self.prob_in_band().clamp(0.0, 1.0)) {
            rng.gen_range((t - self.b)..=(t + self.b))
        } else {
            // Uniform over [-b, t-b) ∪ (t+b, 1+b]; the two pieces have lengths
            // t and 1 - t respectively (total length exactly 1).
            let u: f64 = rng.gen_range(0.0..1.0);
            if u < t {
                -self.b + u
            } else {
                self.b + u
            }
        }
    }

    fn bias(&self, t: f64) -> f64 {
        // Equation 17 of the paper.
        let t = clamp_to_domain(t, 0.0, 1.0);
        let denom = 2.0 * self.b * self.exp_eps + 1.0;
        2.0 * self.b * (self.exp_eps - 1.0) * t / denom + (1.0 + 2.0 * self.b) / (2.0 * denom) - t
    }

    fn variance(&self, t: f64) -> f64 {
        // Equation 18 of the paper.
        let t = clamp_to_domain(t, 0.0, 1.0);
        let b = self.b;
        let denom = 2.0 * b * self.exp_eps + 1.0;
        let delta = self.bias(t);
        b * b / 3.0 + (2.0 * b + 1.0) * (b + 1.0 - 3.0 * t * t) / (3.0 * denom)
            - delta * delta
            - 2.0 * delta * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::assert_moments_match_monte_carlo;
    use hdldp_math::integrate::gauss_legendre_composite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_epsilon() {
        assert!(SquareWaveMechanism::new(1.0).is_ok());
        assert!(SquareWaveMechanism::new(0.0).is_err());
        assert!(SquareWaveMechanism::new(f64::NAN).is_err());
        assert!(SquareWaveMechanism::new(1e4).is_err()); // e^10000 overflows
    }

    #[test]
    fn band_half_width_limits_match_paper() {
        // b -> 1/2 as eps -> 0 and b -> 0 as eps -> infinity (Section VI).
        assert!((SquareWaveMechanism::band_half_width(1e-6) - 0.5).abs() < 1e-3);
        assert!(SquareWaveMechanism::band_half_width(50.0) < 1e-10);
        // Monotone decreasing in eps over a moderate grid.
        let mut prev = f64::INFINITY;
        for &eps in &[0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let b = SquareWaveMechanism::band_half_width(eps);
            assert!(b < prev, "b({eps}) = {b} not decreasing");
            prev = b;
        }
    }

    #[test]
    fn series_and_direct_formula_agree_at_the_switchover() {
        let direct = {
            let e: f64 = 1e-4f64.exp();
            (1e-4 * e - e + 1.0) / (2.0 * e * (e - 1.0 - 1e-4))
        };
        let series = SquareWaveMechanism::band_half_width(0.99999e-4);
        assert!(
            (direct - series).abs() < 1e-5,
            "direct {direct}, series {series}"
        );
    }

    #[test]
    fn density_is_normalized_and_ratio_is_e_eps() {
        for &eps in &[0.1, 1.0, 4.0] {
            let m = SquareWaveMechanism::new(eps).unwrap();
            // Total mass: 2b * high + 1 * low = 1.
            let total = 2.0 * m.b() * m.high_density() + m.low_density();
            assert!((total - 1.0).abs() < 1e-12, "eps = {eps}");
            let ratio = m.high_density() / m.low_density();
            assert!((ratio - eps.exp()).abs() / eps.exp() < 1e-12, "eps = {eps}");
        }
    }

    #[test]
    fn bias_and_variance_match_density_integrals() {
        // Cross-check Equations 17 and 18 against direct numeric integration of
        // the two-level density.
        let eps = 1.0;
        let m = SquareWaveMechanism::new(eps).unwrap();
        let b = m.b();
        for &t in &[0.0, 0.3, 0.5, 0.8, 1.0] {
            let hd = m.high_density();
            let ld = m.low_density();
            // Integrate each constant-density segment separately so the kinks
            // fall on integration boundaries and the quadrature is exact.
            let moment = |p: u32| {
                ld * gauss_legendre_composite(|x| x.powi(p as i32), -b, t - b, 4).unwrap()
                    + hd * gauss_legendre_composite(|x| x.powi(p as i32), t - b, t + b, 4).unwrap()
                    + ld * gauss_legendre_composite(|x| x.powi(p as i32), t + b, 1.0 + b, 4)
                        .unwrap()
            };
            let ex = moment(1);
            let ex2 = moment(2);
            let bias_integral = ex - t;
            let var_integral = ex2 - ex * ex;
            assert!(
                (bias_integral - m.bias(t)).abs() < 1e-4,
                "t = {t}: bias integral {bias_integral} vs closed {}",
                m.bias(t)
            );
            assert!(
                (var_integral - m.variance(t)).abs() < 1e-4,
                "t = {t}: var integral {var_integral} vs closed {}",
                m.variance(t)
            );
        }
    }

    #[test]
    fn uniform_limit_variance_is_one_third() {
        // As eps -> 0 the output is uniform on [-1/2, 3/2]: variance 1/3 for any t.
        let m = SquareWaveMechanism::new(1e-6).unwrap();
        for &t in &[0.0, 0.25, 0.5, 1.0] {
            assert!((m.variance(t) - 1.0 / 3.0).abs() < 1e-3, "t = {t}");
        }
    }

    #[test]
    fn case_study_bias_and_variance_values() {
        // Section IV-C: ε/m = 0.001, values {0.1,...,1.0} each with probability 10%,
        // r = 10,000 ⇒ δ_j ≈ −0.049 and σ² ≈ 3.365e-5.
        let m = SquareWaveMechanism::new(0.001).unwrap();
        let values: Vec<f64> = (1..=10).map(|k| k as f64 / 10.0).collect();
        let mean_bias: f64 = values.iter().map(|&t| m.bias(t)).sum::<f64>() / 10.0;
        let mean_var: f64 = values.iter().map(|&t| m.variance(t)).sum::<f64>() / 10.0;
        let sigma2 = mean_var / 10_000.0;
        assert!(
            (mean_bias - -0.049).abs() < 0.002,
            "mean bias = {mean_bias}, paper reports -0.049"
        );
        assert!(
            (sigma2 - 3.365e-5).abs() < 0.15e-5,
            "sigma^2 = {sigma2:e}, paper reports 3.365e-5"
        );
    }

    #[test]
    fn outputs_stay_in_support() {
        let m = SquareWaveMechanism::new(0.5).unwrap();
        let (lo, hi) = m.output_support();
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..5000 {
            let t = (i % 100) as f64 / 99.0;
            let out = m.perturb(t, &mut rng);
            assert!(out >= lo - 1e-12 && out <= hi + 1e-12);
        }
    }

    #[test]
    fn closed_form_moments_match_monte_carlo() {
        let m = SquareWaveMechanism::new(1.0).unwrap();
        assert_moments_match_monte_carlo(&m, &[0.0, 0.2, 0.5, 0.9, 1.0], 300_000, 0.01, 0.05, 41);
    }

    #[test]
    fn metadata_is_consistent() {
        let m = SquareWaveMechanism::new(1.0).unwrap();
        assert_eq!(m.name(), "square_wave");
        assert_eq!(m.input_domain(), (0.0, 1.0));
        assert!(!m.is_unbiased());
        assert_eq!(m.bound(), Bound::Bounded(1.0 + m.b()));
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn variance_positive_and_bias_bounded(eps in 0.01f64..20.0, t in 0.0f64..1.0) {
                let m = SquareWaveMechanism::new(eps).unwrap();
                prop_assert!(m.variance(t) > 0.0);
                // The expected output always lies inside the output support.
                let (lo, hi) = m.output_support();
                let e = m.expected_output(t);
                prop_assert!(e >= lo - 1e-12 && e <= hi + 1e-12);
            }

            #[test]
            fn perturbed_value_in_support(eps in 0.05f64..10.0, t in 0.0f64..1.0, seed in 0u64..300) {
                let m = SquareWaveMechanism::new(eps).unwrap();
                let (lo, hi) = m.output_support();
                let mut rng = StdRng::seed_from_u64(seed);
                let out = m.perturb(t, &mut rng);
                prop_assert!(out >= lo - 1e-12 && out <= hi + 1e-12);
            }
        }
    }
}
