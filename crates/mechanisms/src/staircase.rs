//! The Staircase mechanism (Geng, Kairouz, Oh, Viswanath — IEEE JSTSP 2015)
//! and the shared staircase-shaped noise core also used by [`crate::ScdfMechanism`].
//!
//! The staircase noise density is a geometrically decaying step function: with
//! `Δ` the sensitivity (here `Δ = 2` for `[-1, 1]` inputs), `b = e^{-ε}` and a
//! shape parameter `γ ∈ (0, 1]`,
//!
//! ```text
//! f(x) = a(γ)·b^k        for |x| ∈ [kΔ, (k+γ)Δ)
//! f(x) = a(γ)·b^{k+1}    for |x| ∈ [(k+γ)Δ, (k+1)Δ)
//! a(γ) = (1 − b) / (2Δ (γ + b(1 − γ)))
//! ```
//!
//! The variance-optimal shape is `γ* = 1/(1 + e^{ε/2})`. Like Laplace noise the
//! staircase noise is zero-mean and data-independent, so the mechanism is
//! *unbounded* in the paper's taxonomy and its deviation follows Lemma 2.

use crate::error::check_epsilon;
use crate::mechanism::{clamp_to_domain, Bound, Mechanism};
use rand::Rng;
use rand::RngCore;

/// Zero-mean staircase-shaped noise with sensitivity `delta`, privacy budget
/// `epsilon` and shape parameter `gamma`.
#[derive(Debug, Clone)]
pub struct StaircaseNoise {
    epsilon: f64,
    delta: f64,
    gamma: f64,
    /// `b = e^{-ε}`.
    decay: f64,
    /// Normalisation constant `a(γ)`.
    height: f64,
    /// Pre-computed variance of the noise.
    variance: f64,
}

impl StaircaseNoise {
    /// Construct staircase noise.
    ///
    /// # Errors
    /// Returns an error if `epsilon` is not positive/finite, `delta` is not
    /// positive/finite, or `gamma` lies outside `(0, 1]`.
    pub fn new(epsilon: f64, delta: f64, gamma: f64) -> crate::Result<Self> {
        let epsilon = check_epsilon(epsilon)?;
        if !(delta.is_finite() && delta > 0.0) {
            return Err(crate::MechanismError::InvalidParameter {
                name: "delta",
                reason: format!("sensitivity must be positive and finite, got {delta}"),
            });
        }
        if !(gamma.is_finite() && gamma > 0.0 && gamma <= 1.0) {
            return Err(crate::MechanismError::InvalidParameter {
                name: "gamma",
                reason: format!("shape parameter must lie in (0, 1], got {gamma}"),
            });
        }
        let decay = (-epsilon).exp();
        let height = (1.0 - decay) / (2.0 * delta * (gamma + decay * (1.0 - gamma)));
        let variance = Self::compute_variance(delta, gamma, decay, height);
        Ok(Self {
            epsilon,
            delta,
            gamma,
            decay,
            height,
            variance,
        })
    }

    /// The variance-optimal shape parameter `γ* = 1/(1 + e^{ε/2})`.
    pub fn optimal_gamma(epsilon: f64) -> f64 {
        1.0 / (1.0 + (epsilon / 2.0).exp())
    }

    /// Variance of the noise, computed exactly from the geometric step series.
    fn compute_variance(delta: f64, gamma: f64, decay: f64, height: f64) -> f64 {
        // E[X^2] = 2 a Σ_k [ b^k ∫_{kΔ}^{(k+γ)Δ} x² dx + b^{k+1} ∫_{(k+γ)Δ}^{(k+1)Δ} x² dx ]
        let cube = |x: f64| x * x * x;
        let mut sum = 0.0;
        let mut weight = 1.0; // b^k
        let mut k = 0usize;
        // Terms decay like b^k · k²; cut off once negligible relative to the sum.
        loop {
            let lo = k as f64 * delta;
            let mid = (k as f64 + gamma) * delta;
            let hi = (k as f64 + 1.0) * delta;
            let term = weight * (cube(mid) - cube(lo)) / 3.0
                + weight * decay * (cube(hi) - cube(mid)) / 3.0;
            sum += term;
            k += 1;
            weight *= decay;
            if (term <= 1e-16 * sum.max(1e-300) && k > 4) || k > 20_000_000 {
                break;
            }
        }
        2.0 * height * sum
    }

    /// Privacy budget.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Sensitivity `Δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Shape parameter `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Variance of the noise.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Density of the noise at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let ax = x.abs() / self.delta;
        let k = ax.floor();
        let within = ax - k;
        let level = if within < self.gamma { k } else { k + 1.0 };
        self.height * self.decay.powf(level)
    }

    /// Draw one noise sample (Geng et al. Algorithm 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        // Geometric G with P(G = k) = (1 - b) b^k via inverse-cdf.
        let u: f64 = rng.gen_range(0.0..1.0);
        let g = if self.decay == 0.0 {
            0.0
        } else {
            ((1.0 - u).ln() / self.decay.ln()).floor().max(0.0)
        };
        // Choose the inner (width γΔ) or outer (width (1-γ)Δ) part of the step.
        let p_inner = self.gamma / (self.gamma + (1.0 - self.gamma) * self.decay);
        let v: f64 = rng.gen_range(0.0..1.0);
        let offset = if rng.gen_bool(p_inner.clamp(0.0, 1.0)) {
            (g + self.gamma * v) * self.delta
        } else {
            (g + self.gamma + (1.0 - self.gamma) * v) * self.delta
        };
        sign * offset
    }
}

/// The Staircase mechanism with the variance-optimal shape parameter, on the
/// input domain `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct StaircaseMechanism {
    noise: StaircaseNoise,
}

impl StaircaseMechanism {
    /// Sensitivity of a value in `[-1, 1]`.
    pub const SENSITIVITY: f64 = 2.0;

    /// Create a Staircase mechanism with per-dimension budget `epsilon` and the
    /// variance-optimal `γ*`.
    ///
    /// # Errors
    /// Returns [`crate::MechanismError::InvalidEpsilon`] when `epsilon` is not
    /// positive and finite.
    pub fn new(epsilon: f64) -> crate::Result<Self> {
        let gamma = StaircaseNoise::optimal_gamma(check_epsilon(epsilon)?);
        Ok(Self {
            noise: StaircaseNoise::new(epsilon, Self::SENSITIVITY, gamma)?,
        })
    }

    /// Create a Staircase mechanism with an explicit shape parameter.
    ///
    /// # Errors
    /// Same conditions as [`StaircaseNoise::new`].
    pub fn with_gamma(epsilon: f64, gamma: f64) -> crate::Result<Self> {
        Ok(Self {
            noise: StaircaseNoise::new(epsilon, Self::SENSITIVITY, gamma)?,
        })
    }

    /// The underlying noise distribution.
    pub fn noise(&self) -> &StaircaseNoise {
        &self.noise
    }
}

impl Mechanism for StaircaseMechanism {
    fn name(&self) -> &'static str {
        "staircase"
    }

    fn epsilon(&self) -> f64 {
        self.noise.epsilon()
    }

    fn bound(&self) -> Bound {
        Bound::Unbounded
    }

    fn input_domain(&self) -> (f64, f64) {
        (-1.0, 1.0)
    }

    fn output_support(&self) -> (f64, f64) {
        (f64::NEG_INFINITY, f64::INFINITY)
    }

    fn perturb(&self, t: f64, rng: &mut dyn RngCore) -> f64 {
        let t = clamp_to_domain(t, -1.0, 1.0);
        t + self.noise.sample(rng)
    }

    fn bias(&self, _t: f64) -> f64 {
        0.0
    }

    fn variance(&self, _t: f64) -> f64 {
        self.noise.variance()
    }

    fn is_unbiased(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::monte_carlo_moments;
    use hdldp_math::integrate::simpson;
    use hdldp_math::RunningMoments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_parameters() {
        assert!(StaircaseNoise::new(1.0, 2.0, 0.5).is_ok());
        assert!(StaircaseNoise::new(0.0, 2.0, 0.5).is_err());
        assert!(StaircaseNoise::new(1.0, 0.0, 0.5).is_err());
        assert!(StaircaseNoise::new(1.0, 2.0, 0.0).is_err());
        assert!(StaircaseNoise::new(1.0, 2.0, 1.5).is_err());
        assert!(StaircaseMechanism::new(1.0).is_ok());
        assert!(StaircaseMechanism::new(-1.0).is_err());
        assert!(StaircaseMechanism::with_gamma(1.0, 2.0).is_err());
    }

    #[test]
    fn optimal_gamma_matches_formula_and_limits() {
        assert!((StaircaseNoise::optimal_gamma(0.0) - 0.5).abs() < 1e-12);
        assert!(StaircaseNoise::optimal_gamma(10.0) < 0.01);
        let g = StaircaseNoise::optimal_gamma(2.0);
        assert!((g - 1.0 / (1.0 + 1.0f64.exp())).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let n = StaircaseNoise::new(1.0, 2.0, 0.4).unwrap();
        // Integrate far enough that the geometric tail is negligible.
        let integral = simpson(|x| n.pdf(x), -80.0, 80.0, 200_000).unwrap();
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn pdf_satisfies_ldp_ratio_for_shifts_up_to_delta() {
        // For any x and any shift |s| <= Δ, f(x)/f(x+s) <= e^ε.
        let n = StaircaseNoise::new(1.2, 2.0, 0.3).unwrap();
        let e_eps = 1.2f64.exp();
        for i in 0..400 {
            let x = -10.0 + i as f64 * 0.05;
            for &s in &[-2.0, -1.0, -0.5, 0.5, 1.0, 2.0] {
                let ratio = n.pdf(x) / n.pdf(x + s);
                assert!(
                    ratio <= e_eps * (1.0 + 1e-9),
                    "x = {x}, s = {s}, ratio = {ratio}"
                );
            }
        }
    }

    #[test]
    fn sampled_variance_matches_series_variance() {
        let n = StaircaseNoise::new(0.8, 2.0, StaircaseNoise::optimal_gamma(0.8)).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut acc = RunningMoments::new();
        for _ in 0..400_000 {
            acc.push(n.sample(&mut rng));
        }
        assert!(acc.mean().abs() < 0.05, "mean = {}", acc.mean());
        assert!(
            (acc.variance() - n.variance()).abs() / n.variance() < 0.03,
            "sampled {} vs series {}",
            acc.variance(),
            n.variance()
        );
    }

    #[test]
    fn staircase_beats_laplace_variance_for_large_epsilon() {
        // The whole point of the staircase mechanism: for large ε its variance
        // is below the Laplace mechanism's 2(Δ/ε)² = 8/ε².
        for &eps in &[4.0, 6.0, 8.0] {
            let stair = StaircaseMechanism::new(eps).unwrap();
            let laplace_var = 8.0 / (eps * eps);
            assert!(
                stair.variance(0.0) < laplace_var,
                "eps = {eps}: staircase {} vs laplace {laplace_var}",
                stair.variance(0.0)
            );
        }
    }

    #[test]
    fn mechanism_is_unbiased_and_unbounded() {
        let m = StaircaseMechanism::new(1.0).unwrap();
        assert_eq!(m.bound(), Bound::Unbounded);
        assert!(m.is_unbiased());
        assert_eq!(m.bias(0.7), 0.0);
        let (mean, var) = monte_carlo_moments(&m, 0.5, 300_000, 5);
        assert!((mean - 0.5).abs() < 0.03, "mean = {mean}");
        assert!(
            (var - m.variance(0.5)).abs() / m.variance(0.5) < 0.05,
            "var = {var} vs {}",
            m.variance(0.5)
        );
    }

    #[test]
    fn small_epsilon_variance_is_finite_and_large() {
        let m = StaircaseMechanism::new(0.01).unwrap();
        let v = m.variance(0.0);
        assert!(v.is_finite());
        // Roughly comparable to Laplace 8/eps^2 = 80,000 at this budget.
        assert!(v > 10_000.0, "variance = {v}");
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
            #[test]
            fn variance_positive_and_sampling_finite(eps in 0.05f64..10.0, seed in 0u64..100) {
                let m = StaircaseMechanism::new(eps).unwrap();
                prop_assert!(m.variance(0.0) > 0.0);
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..50 {
                    prop_assert!(m.perturb(0.2, &mut rng).is_finite());
                }
            }
        }
    }
}
