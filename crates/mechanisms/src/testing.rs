//! Test utilities shared by the mechanism unit tests and the cross-crate
//! integration tests: Monte-Carlo moment estimation and an empirical check of
//! the ε-LDP density-ratio bound.
//!
//! These helpers live in the library (not behind `cfg(test)`) so that the
//! integration-test crate and the examples can reuse them; they are cheap and
//! have no extra dependencies.

use crate::Mechanism;
use hdldp_math::{Histogram, RunningMoments};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Estimate `(E[M(t)], Var[M(t)])` by drawing `n` perturbations with a
/// deterministic seed.
pub fn monte_carlo_moments(mechanism: &dyn Mechanism, t: f64, n: usize, seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = RunningMoments::new();
    for _ in 0..n {
        acc.push(mechanism.perturb(t, &mut rng));
    }
    (acc.mean(), acc.variance())
}

/// Empirically bound the output-density ratio between two inputs.
///
/// Draws `n` perturbations of `t_a` and of `t_b`, histograms both over
/// `range`, and returns the largest ratio `max(p_a/p_b, p_b/p_a)` over bins
/// where both histograms have at least 50 observations (so the ratio is not
/// dominated by Monte-Carlo noise). For an ε-LDP mechanism this should not
/// exceed `e^ε` by more than sampling error.
pub fn empirical_density_ratio_bound(
    mechanism: &dyn Mechanism,
    t_a: f64,
    t_b: f64,
    range: (f64, f64),
    n: usize,
    seed: u64,
) -> f64 {
    let bins = 80;
    // lint:allow(no-panic-in-lib) test-support helper: a non-finite or inverted range is a bug in the calling test, and panicking there is the useful behaviour
    let mut ha = Histogram::new(range.0, range.1, bins).expect("valid histogram range");
    // lint:allow(no-panic-in-lib) same construction as `ha` one line up
    let mut hb = Histogram::new(range.0, range.1, bins).expect("valid histogram range");
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n {
        ha.push(mechanism.perturb(t_a, &mut rng));
        hb.push(mechanism.perturb(t_b, &mut rng));
    }
    let mut worst: f64 = 1.0;
    for (ca, cb) in ha.counts().iter().zip(hb.counts()) {
        if *ca >= 50 && *cb >= 50 {
            let ratio = *ca as f64 / *cb as f64;
            worst = worst.max(ratio).max(1.0 / ratio);
        }
    }
    worst
}

/// Check that the closed-form `bias`/`variance` of a mechanism agree with
/// Monte Carlo within the given tolerances, over a grid of input values.
/// Panics with a descriptive message on disagreement (intended for tests).
pub fn assert_moments_match_monte_carlo(
    mechanism: &dyn Mechanism,
    inputs: &[f64],
    n: usize,
    mean_tol: f64,
    var_rel_tol: f64,
    seed: u64,
) {
    for (i, &t) in inputs.iter().enumerate() {
        let (mean, var) = monte_carlo_moments(mechanism, t, n, seed.wrapping_add(i as u64));
        let want_mean = mechanism.expected_output(t);
        let want_var = mechanism.variance(t);
        assert!(
            (mean - want_mean).abs() < mean_tol,
            "{}: E[M({t})] Monte Carlo {mean} vs closed form {want_mean}",
            mechanism.name()
        );
        assert!(
            (var - want_var).abs() / want_var.max(1e-12) < var_rel_tol,
            "{}: Var[M({t})] Monte Carlo {var} vs closed form {want_var}",
            mechanism.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LaplaceMechanism;

    #[test]
    fn monte_carlo_moments_is_deterministic_per_seed() {
        let m = LaplaceMechanism::new(1.0).unwrap();
        let a = monte_carlo_moments(&m, 0.2, 10_000, 5);
        let b = monte_carlo_moments(&m, 0.2, 10_000, 5);
        assert_eq!(a, b);
        let c = monte_carlo_moments(&m, 0.2, 10_000, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn density_ratio_close_to_one_for_identical_inputs() {
        let m = LaplaceMechanism::new(1.0).unwrap();
        let r = empirical_density_ratio_bound(&m, 0.3, 0.3, (-4.0, 4.0), 200_000, 9);
        assert!(r < 1.2, "ratio = {r}");
    }
}
