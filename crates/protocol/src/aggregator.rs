//! The collector-side aggregator: the "calibration + aggregation" phases of
//! the paper's generalized mechanism (Section IV-B).
//!
//! The aggregator ingests [`Report`]s, keeps per-dimension running sums, and
//! produces the naive estimated mean `θ̂_j = (1/r_j) Σ_i t*_ij`. This is the
//! baseline aggregation whose sub-optimality in high-dimensional space the
//! paper establishes, and the input HDR4ME re-calibrates.
//!
//! This type is the *reference* single-loop implementation: it additionally
//! tracks Welford running variances and extrema for diagnostics. The scaled
//! collection path lives in [`crate::ingest`], whose sharded engine must (and
//! is tested to) produce the same estimated means.

use crate::{ProtocolError, Report};
use hdldp_math::RunningMoments;

/// Collector-side accumulator of perturbed reports.
#[derive(Debug, Clone)]
pub struct Aggregator {
    dims: usize,
    per_dimension: Vec<RunningMoments>,
    reports: usize,
}

impl Aggregator {
    /// Create an aggregator for `dims` dimensions.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `dims` is zero.
    pub fn new(dims: usize) -> crate::Result<Self> {
        if dims == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "dims",
                reason: "dimensionality must be positive".into(),
            });
        }
        Ok(Self {
            dims,
            per_dimension: vec![RunningMoments::new(); dims],
            reports: 0,
        })
    }

    /// The configured dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of reports ingested so far.
    pub fn reports(&self) -> usize {
        self.reports
    }

    /// Ingest one report.
    ///
    /// # Errors
    /// Returns [`ProtocolError::DimensionOutOfRange`] when the report mentions
    /// a dimension `>= dims`; the aggregator state is untouched in that case.
    pub fn ingest(&mut self, report: &Report) -> crate::Result<()> {
        // Validate with an early-exit scan (no max reduction) so the
        // rejected-report guarantee stays atomic without a second full pass
        // of work in the hot loop.
        for &(dim, _) in report.entries() {
            if dim >= self.dims {
                return Err(ProtocolError::DimensionOutOfRange {
                    dimension: dim,
                    dims: self.dims,
                });
            }
        }
        for &(dim, value) in report.entries() {
            self.per_dimension[dim].push(value);
        }
        self.reports += 1;
        Ok(())
    }

    /// Merge another aggregator (e.g. from a parallel shard) into this one.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when the dimensionalities differ.
    pub fn merge(&mut self, other: &Aggregator) -> crate::Result<()> {
        if other.dims != self.dims {
            return Err(ProtocolError::InvalidConfig {
                name: "dims",
                reason: format!(
                    "cannot merge aggregators of {} and {} dims",
                    self.dims, other.dims
                ),
            });
        }
        for (mine, theirs) in self.per_dimension.iter_mut().zip(&other.per_dimension) {
            mine.merge(theirs);
        }
        self.reports += other.reports;
        Ok(())
    }

    /// Number of values received in each dimension (`r_j`).
    pub fn report_counts(&self) -> Vec<u64> {
        self.per_dimension.iter().map(|m| m.count()).collect()
    }

    /// The naive estimated mean `θ̂` (per-dimension average of the received
    /// perturbed values).
    ///
    /// # Errors
    /// Returns [`ProtocolError::EmptyDimension`] if any dimension received no
    /// reports (its mean is undefined).
    pub fn estimated_means(&self) -> crate::Result<Vec<f64>> {
        let mut means = Vec::with_capacity(self.dims);
        for (j, acc) in self.per_dimension.iter().enumerate() {
            if acc.is_empty() {
                return Err(ProtocolError::EmptyDimension { dimension: j });
            }
            means.push(acc.mean());
        }
        Ok(means)
    }

    /// Per-dimension sample variance of the received perturbed values
    /// (diagnostic; used by tests and the examples to illustrate how noisy the
    /// raw reports are).
    pub fn report_variances(&self) -> Vec<f64> {
        self.per_dimension.iter().map(|m| m.variance()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_requires_positive_dims() {
        assert!(Aggregator::new(0).is_err());
        assert!(Aggregator::new(3).is_ok());
    }

    #[test]
    fn ingest_accumulates_per_dimension_means() {
        let mut agg = Aggregator::new(3).unwrap();
        agg.ingest(&Report::new(vec![(0, 1.0), (2, -1.0)])).unwrap();
        agg.ingest(&Report::new(vec![(0, 3.0), (1, 0.5)])).unwrap();
        assert_eq!(agg.reports(), 2);
        assert_eq!(agg.report_counts(), vec![2, 1, 1]);
        let means = agg.estimated_means().unwrap();
        assert_eq!(means, vec![2.0, 0.5, -1.0]);
    }

    #[test]
    fn out_of_range_dimension_is_rejected_atomically() {
        let mut agg = Aggregator::new(2).unwrap();
        let err = agg.ingest(&Report::new(vec![(0, 1.0), (5, 1.0)]));
        assert!(err.is_err());
        // Nothing was recorded.
        assert_eq!(agg.reports(), 0);
        assert_eq!(agg.report_counts(), vec![0, 0]);
    }

    #[test]
    fn empty_dimension_is_an_error() {
        let mut agg = Aggregator::new(2).unwrap();
        agg.ingest(&Report::new(vec![(0, 1.0)])).unwrap();
        assert!(matches!(
            agg.estimated_means(),
            Err(ProtocolError::EmptyDimension { dimension: 1 })
        ));
    }

    #[test]
    fn merge_combines_shards() {
        let mut a = Aggregator::new(2).unwrap();
        a.ingest(&Report::new(vec![(0, 1.0), (1, 2.0)])).unwrap();
        let mut b = Aggregator::new(2).unwrap();
        b.ingest(&Report::new(vec![(0, 3.0)])).unwrap();
        b.ingest(&Report::new(vec![(1, 4.0)])).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.reports(), 3);
        assert_eq!(a.report_counts(), vec![2, 2]);
        assert_eq!(a.estimated_means().unwrap(), vec![2.0, 3.0]);
        let wrong = Aggregator::new(3).unwrap();
        assert!(a.merge(&wrong).is_err());
    }

    #[test]
    fn report_variances_track_spread() {
        let mut agg = Aggregator::new(1).unwrap();
        for v in [1.0, 3.0, 5.0] {
            agg.ingest(&Report::new(vec![(0, v)])).unwrap();
        }
        let var = agg.report_variances()[0];
        assert!((var - 8.0 / 3.0).abs() < 1e-12);
    }
}
