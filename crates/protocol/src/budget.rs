//! Privacy-budget accounting.
//!
//! The paper's sampling scheme gives every user a total budget `ε`; she reports
//! `m` of her `d` dimensions, each perturbed with budget `ε/m`, so that by
//! sequential composition the whole report satisfies ε-LDP. Frequency
//! estimation (Section V-C) perturbs every entry of an `m`-dimension one-hot
//! report with `ε/(2m)` (histogram encoding changes at most two entries per
//! categorical value, hence the extra factor 2).

use crate::ProtocolError;

/// The split of a user's total budget across her reported dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSplit {
    total_epsilon: f64,
    reported_dims: usize,
}

impl BudgetSplit {
    /// Create a budget split.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `total_epsilon` is not
    /// positive/finite or `reported_dims` is zero.
    pub fn new(total_epsilon: f64, reported_dims: usize) -> crate::Result<Self> {
        if !(total_epsilon.is_finite() && total_epsilon > 0.0) {
            return Err(ProtocolError::InvalidConfig {
                name: "total_epsilon",
                reason: format!("must be positive and finite, got {total_epsilon}"),
            });
        }
        if reported_dims == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "reported_dims",
                reason: "must report at least one dimension".into(),
            });
        }
        Ok(Self {
            total_epsilon,
            reported_dims,
        })
    }

    /// The user's total privacy budget `ε`.
    pub fn total_epsilon(&self) -> f64 {
        self.total_epsilon
    }

    /// The number of reported dimensions `m`.
    pub fn reported_dims(&self) -> usize {
        self.reported_dims
    }

    /// Per-dimension budget `ε/m` for numeric mean estimation.
    pub fn per_dimension(&self) -> f64 {
        self.total_epsilon / self.reported_dims as f64
    }

    /// Per-entry budget `ε/(2m)` for histogram-encoded frequency estimation.
    pub fn per_frequency_entry(&self) -> f64 {
        self.total_epsilon / (2.0 * self.reported_dims as f64)
    }

    /// Per-level budget `ε/levels` for a hierarchical (dyadic-interval) range
    /// query tree: each user's value lands in exactly one node per level, so
    /// perturbing her level memberships with `ε/levels` each composes to `ε`
    /// over the whole tree.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `levels` is zero.
    pub fn per_level(&self, levels: usize) -> crate::Result<f64> {
        if levels == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "levels",
                reason: "a range-query tree needs at least one level".into(),
            });
        }
        Ok(self.total_epsilon / levels as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_inputs() {
        assert!(BudgetSplit::new(1.0, 10).is_ok());
        assert!(BudgetSplit::new(0.0, 10).is_err());
        assert!(BudgetSplit::new(-1.0, 10).is_err());
        assert!(BudgetSplit::new(f64::NAN, 10).is_err());
        assert!(BudgetSplit::new(1.0, 0).is_err());
    }

    #[test]
    fn splits_match_the_paper() {
        // The case study: total ε = 0.1 over m = 100 dimensions -> 0.001 each.
        let b = BudgetSplit::new(0.1, 100).unwrap();
        assert!((b.per_dimension() - 0.001).abs() < 1e-15);
        assert!((b.per_frequency_entry() - 0.0005).abs() < 1e-15);
        assert_eq!(b.reported_dims(), 100);
        assert_eq!(b.total_epsilon(), 0.1);
    }

    #[test]
    fn single_dimension_uses_full_budget() {
        let b = BudgetSplit::new(2.0, 1).unwrap();
        assert_eq!(b.per_dimension(), 2.0);
        assert_eq!(b.per_frequency_entry(), 1.0);
    }

    #[test]
    fn per_level_splits_across_tree_levels() {
        let b = BudgetSplit::new(4.0, 1).unwrap();
        assert_eq!(b.per_level(1).unwrap(), 4.0);
        assert_eq!(b.per_level(8).unwrap(), 0.5);
        // levels = 0 is a proper error, not a panic or a division by zero.
        let err = b.per_level(0).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::InvalidConfig { name: "levels", .. }
        ));
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn composition_never_exceeds_total(eps in 0.01f64..100.0, m in 1usize..1000) {
                let b = BudgetSplit::new(eps, m).unwrap();
                // m perturbations at ε/m compose to exactly ε.
                let composed = b.per_dimension() * m as f64;
                prop_assert!((composed - eps).abs() < 1e-9);
                // Frequency entries compose to ε/2 per reported dimension pair.
                prop_assert!(b.per_frequency_entry() * 2.0 * m as f64 - eps < 1e-9);
            }
        }
    }
}
