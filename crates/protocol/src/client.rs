//! The user-side (client) half of the protocol: dimension sampling and
//! perturbation.
//!
//! Following the common approach the paper adopts (Section III-B, citing Wang
//! et al. and Nguyên et al.), each user samples `m` of her `d` dimensions
//! *uniformly without replacement* and perturbs each sampled value with budget
//! `ε/m`. Reporting `m` of `d` dimensions from `n` users is statistically
//! equivalent to reporting all dimensions from `nm/d` users, which is what
//! makes `E[r_j] = nm/d`.

use crate::{BudgetSplit, ProtocolError, Report};
use hdldp_mechanisms::Mechanism;
use rand::seq::index::sample;
use rand::RngCore;

/// A client that perturbs user tuples with a given mechanism and budget split.
pub struct Client<'a> {
    mechanism: &'a dyn Mechanism,
    budget: BudgetSplit,
    dims: usize,
}

impl<'a> Client<'a> {
    /// Create a client for `dims`-dimensional tuples.
    ///
    /// The `mechanism` must already be instantiated with the *per-dimension*
    /// budget (`budget.per_dimension()` for mean estimation); the client
    /// checks this to catch mis-wired configurations early.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `dims` is zero, when the
    /// number of reported dimensions exceeds `dims`, or when the mechanism's
    /// budget does not match the split.
    pub fn new(
        mechanism: &'a dyn Mechanism,
        budget: BudgetSplit,
        dims: usize,
    ) -> crate::Result<Self> {
        if dims == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "dims",
                reason: "dimensionality must be positive".into(),
            });
        }
        if budget.reported_dims() > dims {
            return Err(ProtocolError::InvalidConfig {
                name: "reported_dims",
                reason: format!(
                    "cannot report {} dimensions out of {dims}",
                    budget.reported_dims()
                ),
            });
        }
        let expected = budget.per_dimension();
        if (mechanism.epsilon() - expected).abs() > 1e-9 * expected.max(1.0) {
            return Err(ProtocolError::InvalidConfig {
                name: "mechanism",
                reason: format!(
                    "mechanism budget {} does not match per-dimension budget {expected}",
                    mechanism.epsilon()
                ),
            });
        }
        Ok(Self {
            mechanism,
            budget,
            dims,
        })
    }

    /// The dimensionality `d` this client expects.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The budget split in use.
    pub fn budget(&self) -> BudgetSplit {
        self.budget
    }

    /// Perturb one user tuple into a report.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when the tuple length does not
    /// match the configured dimensionality.
    pub fn perturb_tuple(&self, tuple: &[f64], rng: &mut dyn RngCore) -> crate::Result<Report> {
        if tuple.len() != self.dims {
            return Err(ProtocolError::InvalidConfig {
                name: "tuple",
                reason: format!("expected {} dimensions, got {}", self.dims, tuple.len()),
            });
        }
        let m = self.budget.reported_dims();
        let chosen = sample(rng, self.dims, m);
        let entries = chosen
            .into_iter()
            .map(|j| (j, self.mechanism.perturb(tuple[j], rng)))
            .collect();
        Ok(Report::new(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_mechanisms::{LaplaceMechanism, PiecewiseMechanism};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_configuration() {
        let budget = BudgetSplit::new(1.0, 2).unwrap();
        let mech = LaplaceMechanism::new(budget.per_dimension()).unwrap();
        assert!(Client::new(&mech, budget, 4).is_ok());
        assert!(Client::new(&mech, budget, 0).is_err());
        assert!(Client::new(&mech, budget, 1).is_err()); // m = 2 > d = 1
                                                         // Mechanism built with the wrong per-dimension budget is rejected.
        let wrong = LaplaceMechanism::new(1.0).unwrap();
        assert!(Client::new(&wrong, budget, 4).is_err());
    }

    #[test]
    fn reports_have_m_distinct_dimensions() {
        let budget = BudgetSplit::new(1.0, 3).unwrap();
        let mech = PiecewiseMechanism::new(budget.per_dimension()).unwrap();
        let client = Client::new(&mech, budget, 10).unwrap();
        let tuple = vec![0.1; 10];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let report = client.perturb_tuple(&tuple, &mut rng).unwrap();
            assert_eq!(report.len(), 3);
            let mut dims: Vec<usize> = report.entries().iter().map(|(d, _)| *d).collect();
            dims.sort_unstable();
            dims.dedup();
            assert_eq!(dims.len(), 3, "sampled dimensions must be distinct");
            assert!(dims.iter().all(|&d| d < 10));
        }
    }

    #[test]
    fn tuple_length_is_validated() {
        let budget = BudgetSplit::new(1.0, 1).unwrap();
        let mech = LaplaceMechanism::new(1.0).unwrap();
        let client = Client::new(&mech, budget, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(client.perturb_tuple(&[0.0; 4], &mut rng).is_err());
        assert!(client.perturb_tuple(&[0.0; 5], &mut rng).is_ok());
    }

    #[test]
    fn all_dimensions_get_sampled_over_many_reports() {
        let budget = BudgetSplit::new(1.0, 1).unwrap();
        let mech = LaplaceMechanism::new(1.0).unwrap();
        let client = Client::new(&mech, budget, 6).unwrap();
        let tuple = vec![0.0; 6];
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [0usize; 6];
        for _ in 0..600 {
            let report = client.perturb_tuple(&tuple, &mut rng).unwrap();
            seen[report.entries()[0].0] += 1;
        }
        // Every dimension should be picked roughly 100 times.
        for (j, &count) in seen.iter().enumerate() {
            assert!(count > 50, "dimension {j} sampled only {count} times");
        }
    }

    #[test]
    fn bounded_mechanism_reports_stay_in_support() {
        let budget = BudgetSplit::new(2.0, 2).unwrap();
        let mech = PiecewiseMechanism::new(budget.per_dimension()).unwrap();
        let client = Client::new(&mech, budget, 4).unwrap();
        let (lo, hi) = mech.output_support();
        let mut rng = StdRng::seed_from_u64(9);
        let tuple = [0.9, -0.9, 0.0, 0.4];
        for _ in 0..500 {
            let report = client.perturb_tuple(&tuple, &mut rng).unwrap();
            for &(_, v) in report.entries() {
                assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
            }
        }
    }
}
