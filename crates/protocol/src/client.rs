//! The user-side (client) half of the protocol: dimension sampling and
//! perturbation.
//!
//! Following the common approach the paper adopts (Section III-B, citing Wang
//! et al. and Nguyên et al.), each user samples `m` of her `d` dimensions
//! *uniformly without replacement* and perturbs each sampled value with budget
//! `ε/m`. Reporting `m` of `d` dimensions from `n` users is statistically
//! equivalent to reporting all dimensions from `nm/d` users, which is what
//! makes `E[r_j] = nm/d`.

use crate::{BudgetSplit, ProtocolError, Report};
use hdldp_mechanisms::Mechanism;
use rand::seq::index::sample;
use rand::RngCore;

/// A client that perturbs user tuples with a given mechanism and budget split.
pub struct Client<'a> {
    mechanism: &'a dyn Mechanism,
    budget: BudgetSplit,
    dims: usize,
}

impl<'a> Client<'a> {
    /// Create a client for `dims`-dimensional tuples.
    ///
    /// The `mechanism` must already be instantiated with the *per-dimension*
    /// budget (`budget.per_dimension()` for mean estimation); the client
    /// checks this to catch mis-wired configurations early.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `dims` is zero, when the
    /// number of reported dimensions exceeds `dims`, or when the mechanism's
    /// budget does not match the split.
    pub fn new(
        mechanism: &'a dyn Mechanism,
        budget: BudgetSplit,
        dims: usize,
    ) -> crate::Result<Self> {
        if dims == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "dims",
                reason: "dimensionality must be positive".into(),
            });
        }
        if budget.reported_dims() > dims {
            return Err(ProtocolError::InvalidConfig {
                name: "reported_dims",
                reason: format!(
                    "cannot report {} dimensions out of {dims}",
                    budget.reported_dims()
                ),
            });
        }
        let expected = budget.per_dimension();
        if (mechanism.epsilon() - expected).abs() > 1e-9 * expected.max(1.0) {
            return Err(ProtocolError::InvalidConfig {
                name: "mechanism",
                reason: format!(
                    "mechanism budget {} does not match per-dimension budget {expected}",
                    mechanism.epsilon()
                ),
            });
        }
        Ok(Self {
            mechanism,
            budget,
            dims,
        })
    }

    /// The dimensionality `d` this client expects.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The budget split in use.
    pub fn budget(&self) -> BudgetSplit {
        self.budget
    }

    /// Perturb one user tuple into a report.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when the tuple length does not
    /// match the configured dimensionality.
    pub fn perturb_tuple(&self, tuple: &[f64], rng: &mut dyn RngCore) -> crate::Result<Report> {
        let mut entries = Vec::with_capacity(self.budget.reported_dims());
        self.perturb_tuple_into(tuple, rng, &mut entries)?;
        Ok(Report::new(entries))
    }

    /// [`perturb_tuple`](Client::perturb_tuple), but appending the report's
    /// `(dimension, value)` entries to a caller-owned buffer instead of
    /// allocating a [`Report`] — the allocation-free path the sharded ingest
    /// engine feeds on.
    ///
    /// The randomness consumed is identical to [`perturb_tuple`]
    /// (dimension sampling first, then one perturbation per sampled
    /// dimension), so both paths produce the same report for the same RNG
    /// state.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when the tuple length does not
    /// match the configured dimensionality.
    ///
    /// [`perturb_tuple`]: Client::perturb_tuple
    pub fn perturb_tuple_into(
        &self,
        tuple: &[f64],
        rng: &mut dyn RngCore,
        out: &mut Vec<(usize, f64)>,
    ) -> crate::Result<()> {
        if tuple.len() != self.dims {
            return Err(ProtocolError::InvalidConfig {
                name: "tuple",
                reason: format!("expected {} dimensions, got {}", self.dims, tuple.len()),
            });
        }
        self.perturb_lazy_into(|j| tuple[j], rng, out);
        Ok(())
    }

    /// Sample `m` dimensions and perturb values produced on demand by
    /// `value_of`, appending the `(dimension, value)` entries to `out`.
    ///
    /// This is the scalable client path for simulated populations: a driver
    /// standing in for millions of users never needs to materialize a full
    /// `d`-dimensional tuple per user — only the `m` sampled dimensions are
    /// ever evaluated.
    pub fn perturb_lazy_into<V: Fn(usize) -> f64>(
        &self,
        value_of: V,
        rng: &mut dyn RngCore,
        out: &mut Vec<(usize, f64)>,
    ) {
        let m = self.budget.reported_dims();
        let chosen = sample(rng, self.dims, m);
        out.extend(
            chosen
                .into_iter()
                .map(|j| (j, self.mechanism.perturb(value_of(j), rng))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_mechanisms::{LaplaceMechanism, PiecewiseMechanism};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_configuration() {
        let budget = BudgetSplit::new(1.0, 2).unwrap();
        let mech = LaplaceMechanism::new(budget.per_dimension()).unwrap();
        assert!(Client::new(&mech, budget, 4).is_ok());
        assert!(Client::new(&mech, budget, 0).is_err());
        assert!(Client::new(&mech, budget, 1).is_err()); // m = 2 > d = 1
                                                         // Mechanism built with the wrong per-dimension budget is rejected.
        let wrong = LaplaceMechanism::new(1.0).unwrap();
        assert!(Client::new(&wrong, budget, 4).is_err());
    }

    #[test]
    fn reports_have_m_distinct_dimensions() {
        let budget = BudgetSplit::new(1.0, 3).unwrap();
        let mech = PiecewiseMechanism::new(budget.per_dimension()).unwrap();
        let client = Client::new(&mech, budget, 10).unwrap();
        let tuple = vec![0.1; 10];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let report = client.perturb_tuple(&tuple, &mut rng).unwrap();
            assert_eq!(report.len(), 3);
            let mut dims: Vec<usize> = report.entries().iter().map(|(d, _)| *d).collect();
            dims.sort_unstable();
            dims.dedup();
            assert_eq!(dims.len(), 3, "sampled dimensions must be distinct");
            assert!(dims.iter().all(|&d| d < 10));
        }
    }

    #[test]
    fn tuple_length_is_validated() {
        let budget = BudgetSplit::new(1.0, 1).unwrap();
        let mech = LaplaceMechanism::new(1.0).unwrap();
        let client = Client::new(&mech, budget, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(client.perturb_tuple(&[0.0; 4], &mut rng).is_err());
        assert!(client.perturb_tuple(&[0.0; 5], &mut rng).is_ok());
    }

    #[test]
    fn all_dimensions_get_sampled_over_many_reports() {
        let budget = BudgetSplit::new(1.0, 1).unwrap();
        let mech = LaplaceMechanism::new(1.0).unwrap();
        let client = Client::new(&mech, budget, 6).unwrap();
        let tuple = vec![0.0; 6];
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [0usize; 6];
        for _ in 0..600 {
            let report = client.perturb_tuple(&tuple, &mut rng).unwrap();
            seen[report.entries()[0].0] += 1;
        }
        // Every dimension should be picked roughly 100 times.
        for (j, &count) in seen.iter().enumerate() {
            assert!(count > 50, "dimension {j} sampled only {count} times");
        }
    }

    #[test]
    fn perturb_tuple_into_matches_perturb_tuple() {
        let budget = BudgetSplit::new(2.0, 3).unwrap();
        let mech = PiecewiseMechanism::new(budget.per_dimension()).unwrap();
        let client = Client::new(&mech, budget, 8).unwrap();
        let tuple: Vec<f64> = (0..8).map(|i| (i as f64) / 8.0 - 0.5).collect();
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let report = client.perturb_tuple(&tuple, &mut rng_a).unwrap();
        let mut entries = Vec::new();
        client
            .perturb_tuple_into(&tuple, &mut rng_b, &mut entries)
            .unwrap();
        assert_eq!(report.entries(), &entries[..]);
    }

    #[test]
    fn lazy_perturbation_only_evaluates_sampled_dimensions() {
        use std::cell::RefCell;
        let budget = BudgetSplit::new(1.0, 2).unwrap();
        let mech = LaplaceMechanism::new(budget.per_dimension()).unwrap();
        let client = Client::new(&mech, budget, 100).unwrap();
        let evaluated = RefCell::new(Vec::new());
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        client.perturb_lazy_into(
            |j| {
                evaluated.borrow_mut().push(j);
                0.25
            },
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 2);
        let touched = evaluated.into_inner();
        assert_eq!(touched.len(), 2, "only the m sampled dims are evaluated");
        let sampled: Vec<usize> = out.iter().map(|&(j, _)| j).collect();
        assert_eq!(touched, sampled);
    }

    #[test]
    fn bounded_mechanism_reports_stay_in_support() {
        let budget = BudgetSplit::new(2.0, 2).unwrap();
        let mech = PiecewiseMechanism::new(budget.per_dimension()).unwrap();
        let client = Client::new(&mech, budget, 4).unwrap();
        let (lo, hi) = mech.output_support();
        let mut rng = StdRng::seed_from_u64(9);
        let tuple = [0.9, -0.9, 0.0, 0.4];
        for _ in 0..500 {
            let report = client.perturb_tuple(&tuple, &mut rng).unwrap();
            for &(_, v) in report.entries() {
                assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
            }
        }
    }
}
