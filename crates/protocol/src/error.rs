//! Error type for the collection protocol.

use std::fmt;

/// Errors raised while configuring or running the collection protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// A report refers to a dimension outside the configured dimensionality.
    DimensionOutOfRange {
        /// The offending dimension index.
        dimension: usize,
        /// The configured dimensionality.
        dims: usize,
    },
    /// A dimension received no reports, so its mean cannot be estimated.
    EmptyDimension {
        /// The dimension with zero reports.
        dimension: usize,
    },
    /// A utility metric could not be computed from the given inputs.
    MetricComputation {
        /// The metric being computed (`"mse"`, `"l2_deviation"`, ...).
        metric: &'static str,
        /// The offending input: `"estimate"`, `"truth"`, or
        /// `"estimate/truth"` when the fault involves both (length mismatch).
        input: &'static str,
        /// Description of what is wrong with the input.
        reason: String,
    },
    /// An error bubbled up from mechanism construction.
    Mechanism(hdldp_mechanisms::MechanismError),
    /// An error bubbled up from dataset handling.
    Data(hdldp_data::DataError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::InvalidConfig { name, reason } => {
                write!(f, "invalid protocol configuration `{name}`: {reason}")
            }
            ProtocolError::DimensionOutOfRange { dimension, dims } => {
                write!(f, "report dimension {dimension} out of range (d = {dims})")
            }
            ProtocolError::EmptyDimension { dimension } => {
                write!(f, "dimension {dimension} received no reports")
            }
            ProtocolError::MetricComputation {
                metric,
                input,
                reason,
            } => {
                write!(f, "cannot compute `{metric}`: bad `{input}` ({reason})")
            }
            ProtocolError::Mechanism(e) => write!(f, "mechanism error: {e}"),
            ProtocolError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Mechanism(e) => Some(e),
            ProtocolError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdldp_mechanisms::MechanismError> for ProtocolError {
    fn from(e: hdldp_mechanisms::MechanismError) -> Self {
        ProtocolError::Mechanism(e)
    }
}

impl From<hdldp_data::DataError> for ProtocolError {
    fn from(e: hdldp_data::DataError) -> Self {
        ProtocolError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ProtocolError::InvalidConfig {
            name: "m",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains('m'));
        let e = ProtocolError::DimensionOutOfRange {
            dimension: 10,
            dims: 5,
        };
        assert!(e.to_string().contains("10"));
        let e = ProtocolError::MetricComputation {
            metric: "mse",
            input: "truth",
            reason: "empty".into(),
        };
        assert!(e.to_string().contains("mse"));
        assert!(e.to_string().contains("truth"));
        let e: ProtocolError = hdldp_mechanisms::MechanismError::InvalidEpsilon(-1.0).into();
        assert!(e.to_string().contains("mechanism"));
        assert!(std::error::Error::source(&e).is_some());
        let e: ProtocolError = hdldp_data::DataError::InvalidShape { reason: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
