//! End-to-end frequency estimation over categorical data (Section V-C).
//!
//! A categorical value in a dimension with `v_j` categories is histogram-
//! encoded into a `v_j`-entry one-hot vector; every entry of a reported
//! dimension is perturbed with budget `ε/(2m)` (changing the categorical value
//! flips at most two entries, hence the factor 2 keeps the whole report
//! ε-LDP); and the collector's per-entry means are exactly the estimated
//! category frequencies. This reduces `d`-dimensional frequency estimation to
//! `d` high-dimensional mean-estimation problems, to which both the analytical
//! framework and HDR4ME apply unchanged.

use crate::{BudgetSplit, ProtocolError};
use hdldp_data::CategoricalDataset;
use hdldp_math::RunningMoments;
use hdldp_mechanisms::{
    LaplaceMechanism, Mechanism, MechanismKind, PiecewiseMechanism, Rescaled, SquareWaveMechanism,
};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use rayon::prelude::*;

/// Configuration of a frequency-estimation run (same fields as the numeric
/// pipeline; re-exported type alias for clarity at call sites).
pub type FrequencyConfig = crate::PipelineConfig;

/// The outcome of one frequency-estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyEstimate {
    /// Raw estimated frequencies per dimension (may fall outside `[0, 1]`
    /// because of perturbation noise).
    pub estimated: Vec<Vec<f64>>,
    /// Ground-truth frequencies per dimension.
    pub true_frequencies: Vec<Vec<f64>>,
    /// Number of reports received per dimension.
    pub report_counts: Vec<u64>,
    /// The per-entry budget `ε/(2m)` that was used.
    pub per_entry_epsilon: f64,
}

impl FrequencyEstimate {
    /// Post-processed frequencies for one dimension: clipped into `[0, 1]` and
    /// renormalized to sum to 1 (the standard consistency step).
    ///
    /// NaN estimate entries are treated as 0 (infinities clip to the interval
    /// ends like any other out-of-range value), and a degenerate column whose
    /// clipped mass is zero falls back to the uniform distribution — the
    /// result is always a valid distribution, never NaN.
    pub fn normalized(&self, dim: usize) -> Vec<f64> {
        let raw = &self.estimated[dim];
        let clipped: Vec<f64> = raw
            .iter()
            .map(|f| if f.is_nan() { 0.0 } else { f.clamp(0.0, 1.0) })
            .collect();
        let total: f64 = clipped.iter().sum();
        if total <= 0.0 {
            // Degenerate: fall back to the uniform distribution.
            return vec![1.0 / raw.len() as f64; raw.len()];
        }
        clipped.iter().map(|f| f / total).collect()
    }

    /// Utility metrics for one dimension's raw estimate.
    ///
    /// # Errors
    /// Propagates [`crate::UtilityReport::compare`] errors.
    pub fn utility(&self, dim: usize) -> crate::Result<crate::UtilityReport> {
        crate::UtilityReport::compare(&self.estimated[dim], &self.true_frequencies[dim])
    }

    /// Utility metrics for one dimension's normalized estimate.
    ///
    /// # Errors
    /// Propagates [`crate::UtilityReport::compare`] errors.
    pub fn utility_normalized(&self, dim: usize) -> crate::Result<crate::UtilityReport> {
        crate::UtilityReport::compare(&self.normalized(dim), &self.true_frequencies[dim])
    }
}

/// Build a mechanism of the given kind on the `[0, 1]` input domain of
/// one-hot entries, with the given per-entry budget.
fn build_unit_mechanism(kind: MechanismKind, epsilon: f64) -> crate::Result<Box<dyn Mechanism>> {
    Ok(match kind {
        MechanismKind::SquareWave => Box::new(SquareWaveMechanism::new(epsilon)?),
        MechanismKind::Laplace => {
            Box::new(Rescaled::new(LaplaceMechanism::new(epsilon)?, 0.0, 1.0)?)
        }
        MechanismKind::Piecewise => {
            Box::new(Rescaled::new(PiecewiseMechanism::new(epsilon)?, 0.0, 1.0)?)
        }
        other => {
            // Remaining mechanisms are natively on [-1, 1]; transport them.
            Box::new(UnitRescaledDyn::new(other, epsilon)?)
        }
    })
}

/// A tiny helper wrapping `build_mechanism` + rescale for the trait-object case
/// (Rescaled is generic over the concrete mechanism, so the generic path above
/// covers the common kinds and this covers the rest through dynamic dispatch).
struct UnitRescaledDyn {
    inner: Box<dyn Mechanism>,
}

impl UnitRescaledDyn {
    fn new(kind: MechanismKind, epsilon: f64) -> crate::Result<Self> {
        Ok(Self {
            inner: hdldp_mechanisms::build_mechanism(kind, epsilon)?,
        })
    }

    fn to_native(&self, x: f64) -> f64 {
        -1.0 + 2.0 * x.clamp(0.0, 1.0)
    }
}

impl Mechanism for UnitRescaledDyn {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn epsilon(&self) -> f64 {
        self.inner.epsilon()
    }
    fn bound(&self) -> hdldp_mechanisms::Bound {
        self.inner.bound()
    }
    fn input_domain(&self) -> (f64, f64) {
        (0.0, 1.0)
    }
    fn output_support(&self) -> (f64, f64) {
        let (lo, hi) = self.inner.output_support();
        ((lo + 1.0) / 2.0, (hi + 1.0) / 2.0)
    }
    fn perturb(&self, t: f64, rng: &mut dyn rand::RngCore) -> f64 {
        (self.inner.perturb(self.to_native(t), rng) + 1.0) / 2.0
    }
    fn bias(&self, t: f64) -> f64 {
        self.inner.bias(self.to_native(t)) / 2.0
    }
    fn variance(&self, t: f64) -> f64 {
        self.inner.variance(self.to_native(t)) / 4.0
    }
    fn is_unbiased(&self) -> bool {
        self.inner.is_unbiased()
    }
}

/// End-to-end frequency estimation pipeline for one mechanism.
pub struct FrequencyPipeline {
    mechanism: Box<dyn Mechanism>,
    kind: MechanismKind,
    config: FrequencyConfig,
}

impl FrequencyPipeline {
    /// Build a pipeline; the mechanism is instantiated on the `[0, 1]` entry
    /// domain with the per-entry budget `ε/(2m)`.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] for an invalid budget split and
    /// propagates mechanism construction errors.
    pub fn new(kind: MechanismKind, config: FrequencyConfig) -> crate::Result<Self> {
        let budget = BudgetSplit::new(config.total_epsilon, config.reported_dims)?;
        let mechanism = build_unit_mechanism(kind, budget.per_frequency_entry())?;
        Ok(Self {
            mechanism,
            kind,
            config,
        })
    }

    /// The mechanism kind this pipeline perturbs with.
    pub fn kind(&self) -> MechanismKind {
        self.kind
    }

    /// The per-entry mechanism in use.
    pub fn mechanism(&self) -> &dyn Mechanism {
        self.mechanism.as_ref()
    }

    /// Run the full collection over a categorical dataset.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `m` exceeds the number of
    /// categorical dimensions and [`ProtocolError::EmptyDimension`] when a
    /// dimension received no reports.
    pub fn run(&self, data: &CategoricalDataset) -> crate::Result<FrequencyEstimate> {
        let dims = data.dims();
        let m = self.config.reported_dims;
        if m > dims {
            return Err(ProtocolError::InvalidConfig {
                name: "reported_dims",
                reason: format!("cannot report {m} of {dims} categorical dimensions"),
            });
        }
        let users = data.users();
        let seed = self.config.seed;
        let categories = data.categories().to_vec();

        // Per-dimension, per-category accumulators plus per-dimension report counts.
        #[derive(Clone)]
        struct Shard {
            freq: Vec<Vec<RunningMoments>>,
            counts: Vec<u64>,
        }
        let empty = Shard {
            freq: categories
                .iter()
                .map(|&c| vec![RunningMoments::new(); c])
                .collect(),
            counts: vec![0; dims],
        };

        let shards = rayon::current_num_threads().max(1);
        let chunk = users.div_ceil(shards);
        let partials: Vec<crate::Result<Shard>> = (0..shards)
            .into_par_iter()
            .map(|shard_idx| {
                let mut shard = empty.clone();
                let lo = shard_idx * chunk;
                let hi = ((shard_idx + 1) * chunk).min(users);
                for i in lo..hi {
                    let user_seed =
                        seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let mut rng = StdRng::seed_from_u64(user_seed);
                    let chosen = sample(&mut rng, dims, m);
                    for j in chosen {
                        let value = data.value(i, j).map_err(ProtocolError::from)?;
                        shard.counts[j] += 1;
                        for c in 0..categories[j] {
                            let raw = if c == value { 1.0 } else { 0.0 };
                            let noisy = self.mechanism.perturb(raw, &mut rng);
                            shard.freq[j][c].push(noisy);
                        }
                    }
                }
                Ok(shard)
            })
            .collect();

        let mut total = empty;
        for partial in partials {
            let partial = partial?;
            for (tj, pj) in total.freq.iter_mut().zip(&partial.freq) {
                for (tc, pc) in tj.iter_mut().zip(pj) {
                    tc.merge(pc);
                }
            }
            for (tc, pc) in total.counts.iter_mut().zip(&partial.counts) {
                *tc += pc;
            }
        }

        let mut estimated = Vec::with_capacity(dims);
        let mut true_frequencies = Vec::with_capacity(dims);
        for (j, per_category) in total.freq.iter().enumerate() {
            if total.counts[j] == 0 {
                return Err(ProtocolError::EmptyDimension { dimension: j });
            }
            estimated.push(per_category.iter().map(|acc| acc.mean()).collect());
            true_frequencies.push(data.true_frequencies(j).map_err(ProtocolError::from)?);
        }

        Ok(FrequencyEstimate {
            estimated,
            true_frequencies,
            report_counts: total.counts,
            per_entry_epsilon: self.mechanism.epsilon(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(users: usize) -> CategoricalDataset {
        CategoricalDataset::generate_zipf(users, vec![4, 3], &mut StdRng::seed_from_u64(21))
            .unwrap()
    }

    #[test]
    fn construction_and_budget_split() {
        let p = FrequencyPipeline::new(MechanismKind::Piecewise, FrequencyConfig::new(4.0, 2, 0))
            .unwrap();
        assert_eq!(p.kind(), MechanismKind::Piecewise);
        // per entry budget = eps / (2m) = 1.
        assert!((p.mechanism().epsilon() - 1.0).abs() < 1e-12);
        assert_eq!(p.mechanism().input_domain(), (0.0, 1.0));
        assert!(
            FrequencyPipeline::new(MechanismKind::Piecewise, FrequencyConfig::new(0.0, 2, 0))
                .is_err()
        );
    }

    #[test]
    fn unit_mechanism_builders_cover_every_kind() {
        for kind in MechanismKind::ALL {
            let m = build_unit_mechanism(kind, 0.5).unwrap();
            assert_eq!(m.input_domain(), (0.0, 1.0), "{kind:?}");
            assert!((m.epsilon() - 0.5).abs() < 1e-12, "{kind:?}");
        }
    }

    #[test]
    fn rejects_reporting_more_dims_than_available() {
        let p = FrequencyPipeline::new(MechanismKind::Laplace, FrequencyConfig::new(1.0, 5, 0))
            .unwrap();
        assert!(p.run(&dataset(100)).is_err());
    }

    #[test]
    fn generous_budget_recovers_frequencies() {
        let data = dataset(4_000);
        let p = FrequencyPipeline::new(MechanismKind::Piecewise, FrequencyConfig::new(200.0, 2, 3))
            .unwrap();
        let est = p.run(&data).unwrap();
        for dim in 0..2 {
            let utility = est.utility(dim).unwrap();
            assert!(utility.mse < 1e-3, "dim {dim}: mse = {}", utility.mse);
            // Normalized estimate sums to one.
            let total: f64 = est.normalized(dim).iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn report_counts_sum_to_n_times_m() {
        let data = dataset(500);
        let p = FrequencyPipeline::new(MechanismKind::Laplace, FrequencyConfig::new(1.0, 1, 9))
            .unwrap();
        let est = p.run(&data).unwrap();
        assert_eq!(est.report_counts.iter().sum::<u64>(), 500);
        assert_eq!(est.estimated.len(), 2);
        assert_eq!(est.estimated[0].len(), 4);
        assert_eq!(est.estimated[1].len(), 3);
        assert!((est.per_entry_epsilon - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_improves_or_matches_raw_estimate() {
        let data = dataset(2_000);
        let p = FrequencyPipeline::new(MechanismKind::SquareWave, FrequencyConfig::new(2.0, 2, 5))
            .unwrap();
        let est = p.run(&data).unwrap();
        for dim in 0..2 {
            let raw = est.utility(dim).unwrap().mse;
            let norm = est.utility_normalized(dim).unwrap().mse;
            // Clipping + renormalizing should not make things dramatically worse.
            assert!(
                norm <= raw * 2.0 + 1e-6,
                "dim {dim}: raw {raw}, norm {norm}"
            );
        }
    }

    #[test]
    fn normalized_guards_degenerate_and_non_finite_columns() {
        // Regression: an all-zero column must yield the uniform distribution,
        // not NaNs from a 0/0 division — and NaN/∞ estimate entries must not
        // poison the normalization either.
        let estimate = FrequencyEstimate {
            estimated: vec![
                vec![0.0, 0.0, 0.0, 0.0],
                vec![f64::NAN, f64::NAN],
                vec![f64::NAN, 0.5, f64::INFINITY, -2.0],
                vec![-1.0, -0.25],
            ],
            true_frequencies: vec![vec![0.25; 4], vec![0.5; 2], vec![0.25; 4], vec![0.5; 2]],
            report_counts: vec![10, 10, 10, 10],
            per_entry_epsilon: 1.0,
        };
        assert_eq!(estimate.normalized(0), vec![0.25; 4]);
        assert_eq!(estimate.normalized(1), vec![0.5; 2]);
        // NaN → 0, ∞ clips to 1, negatives clip to 0: {0, 0.5, 1, 0} / 1.5.
        let n2 = estimate.normalized(2);
        assert!(n2.iter().all(|f| f.is_finite()));
        assert!((n2.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(n2, vec![0.0, 0.5 / 1.5, 1.0 / 1.5, 0.0]);
        // All-negative clips to zero mass → uniform fallback.
        assert_eq!(estimate.normalized(3), vec![0.5; 2]);
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let data = dataset(300);
        let mk = || {
            FrequencyPipeline::new(MechanismKind::Laplace, FrequencyConfig::new(1.0, 2, 77))
                .unwrap()
        };
        assert_eq!(mk().run(&data).unwrap(), mk().run(&data).unwrap());
    }
}
