//! The sharded, batched ingest engine: the collector-side path that scales
//! the paper's aggregation to millions of users.
//!
//! The single-loop [`crate::Aggregator`] is the *reference* implementation of
//! the calibration + aggregation phase (Section IV-B); this module is the
//! production-shaped path built on three pieces:
//!
//! * [`ReportBatch`] — a bounded flat buffer of reports (one contiguous
//!   array of `(dimension index, perturbed value)` entries), so reports flow
//!   to shards without a per-report heap allocation.
//! * [`crate::ShardRouter`] — hash-partitions reports across shards by user
//!   id, independent of arrival order and thread count.
//! * [`crate::ShardAccumulator`] — per-shard partial sums/counts per
//!   dimension, merged **on read**.
//!
//! The resulting [`IngestEngine`] produces exactly the same estimated means
//! as the single loop — per-dimension sums and counts are order-insensitive
//! up to floating-point rounding, and the integration tests assert
//! bit-for-bit equality on inputs where addition is exact — while the hot
//! loop is two indexed adds per entry, shard-local and allocation-free.
//!
//! ```
//! use hdldp_protocol::{IngestConfig, IngestEngine, Report};
//!
//! let mut engine = IngestEngine::new(4, IngestConfig::new(8, 256).unwrap()).unwrap();
//! engine.submit(7, &Report::new(vec![(0, 0.5), (3, -1.0)])).unwrap();
//! engine.submit(8, &Report::new(vec![(1, 1.0), (2, 0.0)])).unwrap();
//! assert_eq!(engine.reports(), 2);
//! let merged = engine.merged().unwrap();
//! assert_eq!(merged.counts(), &[1, 1, 1, 1]);
//! ```

use crate::shard::{ShardAccumulator, ShardRouter};
use crate::telemetry::IngestMetrics;
use crate::{ProtocolError, Report};
use hdldp_telemetry::Registry;
use rayon::prelude::*;
use std::ops::Range;

/// A bounded, flat batch of reports.
///
/// Entries are stored as one contiguous array of `(u32 dimension index,
/// f64 perturbed value)` pairs plus report-boundary offsets, so pushing a
/// report never allocates and the accumulate loop scans contiguous memory.
/// Capacity is bounded in *reports*; a full batch must be drained (ingested
/// into a [`ShardAccumulator`] and [`cleared`](ReportBatch::clear)) before
/// more reports are pushed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportBatch {
    dims: usize,
    capacity: usize,
    entries: Vec<(u32, f64)>,
    offsets: Vec<u32>,
}

impl ReportBatch {
    /// Create an empty batch for `dims`-dimensional reports holding at most
    /// `capacity` reports.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `dims` or `capacity` is
    /// zero, or when `dims` exceeds `u32::MAX` (the index storage width).
    pub fn new(dims: usize, capacity: usize) -> crate::Result<Self> {
        if dims == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "dims",
                reason: "dimensionality must be positive".into(),
            });
        }
        if dims > u32::MAX as usize {
            return Err(ProtocolError::InvalidConfig {
                name: "dims",
                reason: format!("dimensionality {dims} exceeds the u32 index range"),
            });
        }
        if capacity == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "batch_capacity",
                reason: "batch capacity must be positive".into(),
            });
        }
        Ok(Self {
            dims,
            capacity,
            entries: Vec::new(),
            offsets: vec![0],
        })
    }

    /// The dimensionality `d` entries are validated against.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Maximum number of reports the batch holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of reports currently buffered.
    pub fn reports(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of `(dimension, value)` entries currently buffered.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no report is buffered.
    pub fn is_empty(&self) -> bool {
        self.reports() == 0
    }

    /// `true` when the batch holds `capacity` reports and must be drained.
    pub fn is_full(&self) -> bool {
        self.reports() >= self.capacity
    }

    /// Append one report given as `(dimension, value)` entries.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when the batch is full and
    /// [`ProtocolError::DimensionOutOfRange`] when an entry mentions a
    /// dimension `>= dims`; the batch is untouched in both cases.
    pub fn push_entries(&mut self, entries: &[(usize, f64)]) -> crate::Result<()> {
        if self.is_full() {
            return Err(ProtocolError::InvalidConfig {
                name: "batch",
                reason: format!("batch is full ({} reports)", self.capacity),
            });
        }
        // Validate while copying; a partial append is rolled back below, so
        // the batch is still untouched on error without a second scan.
        let base = self.entries.len();
        for &(dim, value) in entries {
            if dim >= self.dims {
                self.entries.truncate(base);
                return Err(ProtocolError::DimensionOutOfRange {
                    dimension: dim,
                    dims: self.dims,
                });
            }
            self.entries.push((dim as u32, value));
        }
        self.offsets.push(self.entries.len() as u32);
        Ok(())
    }

    /// Append one wire-format [`Report`].
    ///
    /// # Errors
    /// Same conditions as [`ReportBatch::push_entries`].
    pub fn push_report(&mut self, report: &Report) -> crate::Result<()> {
        self.push_entries(report.entries())
    }

    /// The flat `(dimension index, value)` entries across all buffered
    /// reports (report boundaries are irrelevant to sum/count accumulation).
    pub fn flat_entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// The entries of the `i`-th buffered report.
    ///
    /// Returns `None` when `i >= reports()`.
    pub fn report(&self, i: usize) -> Option<&[(u32, f64)]> {
        if i >= self.reports() {
            return None;
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        Some(&self.entries[lo..hi])
    }

    /// Drop all buffered reports, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.offsets.truncate(1);
    }
}

/// Configuration of an [`IngestEngine`]: shard count and batch capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    shards: usize,
    batch_capacity: usize,
}

impl IngestConfig {
    /// Default number of reports buffered per shard before a flush.
    pub const DEFAULT_BATCH_CAPACITY: usize = 256;

    /// Create a config with `shards` shards and `batch_capacity` reports
    /// buffered per shard between flushes.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when either is zero.
    pub fn new(shards: usize, batch_capacity: usize) -> crate::Result<Self> {
        if shards == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "shards",
                reason: "shard count must be positive".into(),
            });
        }
        if batch_capacity == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "batch_capacity",
                reason: "batch capacity must be positive".into(),
            });
        }
        Ok(Self {
            shards,
            batch_capacity,
        })
    }

    /// One shard per available worker thread, default batch capacity.
    pub fn per_thread() -> Self {
        Self {
            shards: rayon::current_num_threads().max(1),
            batch_capacity: Self::DEFAULT_BATCH_CAPACITY,
        }
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configured per-shard batch capacity (in reports).
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self::per_thread()
    }
}

/// The sharded, batched ingest engine.
///
/// Reports enter either one at a time via [`submit`](IngestEngine::submit)
/// (buffered in a bounded per-shard [`ReportBatch`] and flushed into the
/// shard's [`ShardAccumulator`] when the batch fills) or in bulk via
/// [`ingest_partitioned`](IngestEngine::ingest_partitioned) (each shard
/// processes exactly the users that hash to it, in parallel, with
/// shard-local batching — no locks, no cross-shard traffic). Estimates are
/// produced by **merge-on-read**: [`merged`](IngestEngine::merged) folds the
/// per-shard partials (and any still-buffered batches) into one accumulator
/// without disturbing ingest state.
///
/// Both paths accumulate each shard's reports in increasing user-id order,
/// so for a fixed shard count the engine's state is a pure function of the
/// submitted reports — independent of thread count and scheduling.
///
/// Engines built with [`IngestEngine::with_telemetry`] record runtime metrics
/// (reports, rejects, batch-flush and merge latency, per-shard load) into the
/// given [`Registry`] at **flush granularity** — once per
/// [`IngestConfig::batch_capacity`] reports — so the per-report submit path
/// performs no atomic traffic. [`IngestEngine::new`] wires the engine to a
/// disabled registry, which reduces every recording site to one branch.
#[derive(Debug, Clone)]
pub struct IngestEngine {
    dims: usize,
    router: ShardRouter,
    batch_capacity: usize,
    pending: Vec<ReportBatch>,
    shards: Vec<ShardAccumulator>,
    metrics: IngestMetrics,
}

impl IngestEngine {
    /// Create an engine for `dims`-dimensional reports with telemetry
    /// disabled (equivalent to [`IngestEngine::with_telemetry`] against
    /// [`Registry::disabled`]).
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `dims` is zero or too
    /// large for the batch index width.
    pub fn new(dims: usize, config: IngestConfig) -> crate::Result<Self> {
        Self::with_telemetry(dims, config, &Registry::disabled())
    }

    /// Create an engine that records runtime metrics into `registry` (see the
    /// metric table in [`crate::telemetry`]).
    ///
    /// # Errors
    /// Same conditions as [`IngestEngine::new`].
    pub fn with_telemetry(
        dims: usize,
        config: IngestConfig,
        registry: &Registry,
    ) -> crate::Result<Self> {
        let router = ShardRouter::new(config.shards())?;
        let pending = (0..config.shards())
            .map(|_| ReportBatch::new(dims, config.batch_capacity()))
            .collect::<crate::Result<Vec<_>>>()?;
        let shards = (0..config.shards())
            .map(|_| ShardAccumulator::new(dims))
            .collect::<crate::Result<Vec<_>>>()?;
        Ok(Self {
            dims,
            router,
            batch_capacity: config.batch_capacity(),
            pending,
            shards,
            metrics: IngestMetrics::register(registry, config.shards()),
        })
    }

    /// The configured dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The number of shards reports are partitioned over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard batch capacity (in reports).
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }

    /// Total reports ingested so far (accumulated + still buffered).
    pub fn reports(&self) -> usize {
        self.shards
            .iter()
            .map(ShardAccumulator::reports)
            .sum::<usize>()
            + self.pending.iter().map(ReportBatch::reports).sum::<usize>()
    }

    /// Reports per shard (accumulated + still buffered), for load inspection.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards
            .iter()
            .zip(&self.pending)
            .map(|(acc, batch)| acc.reports() + batch.reports())
            .collect()
    }

    /// Submit one report for `user_id`: route to its shard, buffer it in the
    /// shard's bounded batch, and flush the batch into the shard accumulator
    /// when it fills.
    ///
    /// # Errors
    /// Returns [`ProtocolError::DimensionOutOfRange`] when the report
    /// mentions a dimension `>= dims`; the engine is untouched in that case.
    pub fn submit(&mut self, user_id: u64, report: &Report) -> crate::Result<()> {
        self.submit_entries(user_id, report.entries())
    }

    /// [`submit`](IngestEngine::submit) for a report given directly as
    /// `(dimension, value)` entries.
    ///
    /// # Errors
    /// Same conditions as [`submit`](IngestEngine::submit).
    pub fn submit_entries(&mut self, user_id: u64, entries: &[(usize, f64)]) -> crate::Result<()> {
        let shard = self.router.route(user_id);
        let batch = &mut self.pending[shard];
        if let Err(e) = batch.push_entries(entries) {
            self.metrics.rejects.inc();
            return Err(e);
        }
        if batch.is_full() {
            let timer = self.metrics.flush_timer();
            self.shards[shard].ingest_batch(batch)?;
            timer.stop();
            self.metrics
                .record_flush(shard, batch.reports(), batch.entries());
            batch.clear();
        }
        Ok(())
    }

    /// Flush every partially filled batch into its shard accumulator.
    ///
    /// Reading paths ([`merged`](IngestEngine::merged) and friends) already
    /// include buffered reports, so flushing is only needed to bound memory
    /// or before comparing shard state directly.
    ///
    /// # Errors
    /// Propagates a dimensionality mismatch from the shard accumulator.
    /// Batches validate entries on `push`, so this only fires if a batch
    /// was mutated outside the engine's control; already-flushed shards
    /// keep their reports, the failing batch is left un-cleared.
    pub fn flush(&mut self) -> crate::Result<()> {
        for (index, (shard, batch)) in self.shards.iter_mut().zip(&mut self.pending).enumerate() {
            if !batch.is_empty() {
                let timer = self.metrics.flush_timer();
                shard.ingest_batch(batch)?;
                timer.stop();
                self.metrics
                    .record_flush(index, batch.reports(), batch.entries());
                batch.clear();
            }
        }
        Ok(())
    }

    /// Bulk-ingest the user range `users` in parallel, one worker per shard.
    ///
    /// `fill` produces user `u`'s report by appending `(dimension, value)`
    /// entries to the scratch vector it is handed (cleared between users).
    /// Each shard's worker walks the whole range but generates reports only
    /// for the users that hash to it, so reports flow shard-locally through
    /// a bounded batch: no locks, no cross-thread report traffic, and the
    /// result is bit-for-bit identical to calling
    /// [`submit_entries`](IngestEngine::submit_entries) for every user in
    /// increasing id order on a freshly flushed engine.
    ///
    /// # Errors
    /// Propagates the first `fill` error; the engine is untouched when any
    /// shard fails.
    pub fn ingest_partitioned<F>(&mut self, users: Range<u64>, fill: F) -> crate::Result<()>
    where
        F: Fn(u64, &mut Vec<(usize, f64)>) -> crate::Result<()> + Sync,
    {
        // Flush buffered reports first so per-shard arrival order matches the
        // equivalent serial submit sequence.
        self.flush()?;
        let dims = self.dims;
        let router = self.router;
        let capacity = self.batch_capacity;
        let fill = &fill;
        let metrics = self.metrics.clone();

        let partials: Vec<crate::Result<ShardAccumulator>> = (0..self.shard_count())
            .into_par_iter()
            .map(move |shard| {
                let mut acc = ShardAccumulator::new(dims)?;
                let mut batch = ReportBatch::new(dims, capacity)?;
                let mut scratch: Vec<(usize, f64)> = Vec::new();
                for user_id in users.clone() {
                    if router.route(user_id) != shard {
                        continue;
                    }
                    scratch.clear();
                    fill(user_id, &mut scratch)?;
                    batch.push_entries(&scratch)?;
                    if batch.is_full() {
                        let timer = metrics.flush_timer();
                        acc.ingest_batch(&batch)?;
                        timer.stop();
                        metrics.record_flush(shard, batch.reports(), batch.entries());
                        batch.clear();
                    }
                }
                if !batch.is_empty() {
                    let timer = metrics.flush_timer();
                    acc.ingest_batch(&batch)?;
                    timer.stop();
                    metrics.record_flush(shard, batch.reports(), batch.entries());
                }
                Ok(acc)
            })
            .collect();

        // Only merge once every shard succeeded, so a failed bulk ingest
        // leaves the engine exactly as it was.
        let partials = partials.into_iter().collect::<crate::Result<Vec<_>>>()?;
        for (shard, partial) in self.shards.iter_mut().zip(&partials) {
            shard.merge(partial)?;
        }
        Ok(())
    }

    /// The shard accumulators (flushed state only; buffered batches are not
    /// included until a flush).
    pub fn shards(&self) -> &[ShardAccumulator] {
        &self.shards
    }

    /// Merge-on-read: fold every shard's partials — including reports still
    /// buffered in per-shard batches — into one accumulator, leaving ingest
    /// state untouched.
    ///
    /// # Errors
    /// Propagates accumulator errors (impossible for a well-formed engine).
    pub fn merged(&self) -> crate::Result<ShardAccumulator> {
        self.metrics.merges.inc();
        let _timer = self.metrics.merge_ns.start();
        let mut total = ShardAccumulator::new(self.dims)?;
        for (shard, batch) in self.shards.iter().zip(&self.pending) {
            total.merge(shard)?;
            if !batch.is_empty() {
                total.ingest_batch(batch)?;
            }
        }
        Ok(total)
    }

    /// The naive estimated mean `θ̂` per dimension over all shards.
    ///
    /// # Errors
    /// Returns [`ProtocolError::EmptyDimension`] if any dimension received no
    /// reports.
    pub fn estimated_means(&self) -> crate::Result<Vec<f64>> {
        self.merged()?.means()
    }

    /// Number of values received in each dimension (`r_j`), over all shards.
    ///
    /// # Errors
    /// Propagates merge errors (impossible for a well-formed engine).
    pub fn report_counts(&self) -> crate::Result<Vec<u64>> {
        Ok(self.merged()?.counts())
    }

    /// Reset every shard and batch to empty, keeping allocations.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
        for batch in &mut self.pending {
            batch.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(usize, f64)]) -> Report {
        Report::new(entries.to_vec())
    }

    #[test]
    fn batch_validates_construction() {
        assert!(ReportBatch::new(0, 4).is_err());
        assert!(ReportBatch::new(4, 0).is_err());
        let batch = ReportBatch::new(4, 2).unwrap();
        assert_eq!(batch.dims(), 4);
        assert_eq!(batch.capacity(), 2);
        assert!(batch.is_empty());
        assert!(!batch.is_full());
    }

    #[test]
    fn batch_stores_reports_in_flat_arrays() {
        let mut batch = ReportBatch::new(4, 3).unwrap();
        batch.push_entries(&[(0, 1.0), (3, -1.0)]).unwrap();
        batch.push_report(&report(&[(1, 0.5)])).unwrap();
        batch.push_entries(&[]).unwrap();
        assert_eq!(batch.reports(), 3);
        assert_eq!(batch.entries(), 3);
        assert!(batch.is_full());
        assert_eq!(batch.flat_entries(), &[(0, 1.0), (3, -1.0), (1, 0.5)]);
        assert_eq!(batch.report(0), Some(&[(0u32, 1.0), (3, -1.0)][..]));
        assert_eq!(batch.report(1), Some(&[(1u32, 0.5)][..]));
        assert_eq!(batch.report(2), Some(&[][..]));
        assert_eq!(batch.report(3), None);
    }

    #[test]
    fn batch_rejects_overflow_and_bad_dims_atomically() {
        let mut batch = ReportBatch::new(2, 1).unwrap();
        assert!(batch.push_entries(&[(0, 1.0), (7, 1.0)]).is_err());
        assert!(batch.is_empty(), "failed push must not leave partial state");
        batch.push_entries(&[(0, 1.0)]).unwrap();
        assert!(batch.push_entries(&[(1, 1.0)]).is_err(), "batch is full");
        batch.clear();
        assert!(batch.is_empty());
        batch.push_entries(&[(1, 2.0)]).unwrap();
        assert_eq!(batch.entries(), 1);
    }

    #[test]
    fn config_validates_and_defaults() {
        assert!(IngestConfig::new(0, 1).is_err());
        assert!(IngestConfig::new(1, 0).is_err());
        let config = IngestConfig::new(4, 16).unwrap();
        assert_eq!(config.shards(), 4);
        assert_eq!(config.batch_capacity(), 16);
        let default = IngestConfig::default();
        assert!(default.shards() >= 1);
        assert_eq!(
            default.batch_capacity(),
            IngestConfig::DEFAULT_BATCH_CAPACITY
        );
    }

    #[test]
    fn engine_matches_single_loop_means() {
        let reports = [
            report(&[(0, 1.0), (2, -1.0)]),
            report(&[(0, 3.0), (1, 0.5)]),
            report(&[(1, 1.5), (2, 1.0)]),
            report(&[(0, 2.0)]),
        ];
        let mut engine = IngestEngine::new(3, IngestConfig::new(4, 2).unwrap()).unwrap();
        for (uid, r) in reports.iter().enumerate() {
            engine.submit(uid as u64, r).unwrap();
        }
        assert_eq!(engine.reports(), 4);
        assert_eq!(engine.report_counts().unwrap(), vec![3, 2, 2]);
        assert_eq!(engine.estimated_means().unwrap(), vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn merged_includes_pending_batches() {
        // Capacity 100 means nothing ever auto-flushes.
        let mut engine = IngestEngine::new(2, IngestConfig::new(2, 100).unwrap()).unwrap();
        engine.submit(0, &report(&[(0, 1.0)])).unwrap();
        engine.submit(1, &report(&[(1, 3.0)])).unwrap();
        assert_eq!(
            engine.shards().iter().map(|s| s.reports()).sum::<usize>(),
            0
        );
        let merged = engine.merged().unwrap();
        assert_eq!(merged.reports(), 2);
        assert_eq!(merged.means().unwrap(), vec![1.0, 3.0]);
        engine.flush().unwrap();
        assert_eq!(
            engine.shards().iter().map(|s| s.reports()).sum::<usize>(),
            2
        );
        assert_eq!(engine.merged().unwrap(), merged);
    }

    #[test]
    fn bad_report_is_rejected_without_state_change() {
        let mut engine = IngestEngine::new(2, IngestConfig::new(2, 4).unwrap()).unwrap();
        engine.submit(0, &report(&[(0, 1.0)])).unwrap();
        assert!(engine.submit(1, &report(&[(9, 1.0)])).is_err());
        assert_eq!(engine.reports(), 1);
    }

    #[test]
    fn ingest_partitioned_matches_serial_submit() {
        let entries: Vec<Vec<(usize, f64)>> = (0..57)
            .map(|i| vec![(i % 5, i as f64 * 0.25), ((i + 2) % 5, -(i as f64) * 0.5)])
            .collect();
        let config = IngestConfig::new(3, 4).unwrap();
        let mut serial = IngestEngine::new(5, config).unwrap();
        for (uid, e) in entries.iter().enumerate() {
            serial.submit_entries(uid as u64, e).unwrap();
        }
        serial.flush().unwrap();
        let mut parallel = IngestEngine::new(5, config).unwrap();
        parallel
            .ingest_partitioned(0..entries.len() as u64, |uid, out| {
                out.extend_from_slice(&entries[uid as usize]);
                Ok(())
            })
            .unwrap();
        assert_eq!(serial.shards(), parallel.shards());
        assert_eq!(
            serial.estimated_means().unwrap(),
            parallel.estimated_means().unwrap()
        );
    }

    #[test]
    fn ingest_partitioned_error_leaves_engine_untouched() {
        let mut engine = IngestEngine::new(2, IngestConfig::new(2, 4).unwrap()).unwrap();
        engine.submit(0, &report(&[(0, 1.0)])).unwrap();
        let before = engine.merged().unwrap();
        let result = engine.ingest_partitioned(0..10, |uid, out| {
            if uid == 7 {
                return Err(ProtocolError::EmptyDimension { dimension: 0 });
            }
            out.push((0, 1.0));
            Ok(())
        });
        assert!(result.is_err());
        assert_eq!(engine.merged().unwrap(), before);
    }

    #[test]
    fn clear_resets_everything() {
        let mut engine = IngestEngine::new(2, IngestConfig::new(2, 1).unwrap()).unwrap();
        engine.submit(0, &report(&[(0, 1.0)])).unwrap();
        engine.submit(1, &report(&[(1, 1.0)])).unwrap();
        engine.clear();
        assert_eq!(engine.reports(), 0);
        assert_eq!(engine.shard_loads(), vec![0, 0]);
    }

    #[test]
    fn shard_loads_cover_all_reports() {
        let mut engine = IngestEngine::new(2, IngestConfig::new(4, 2).unwrap()).unwrap();
        for uid in 0..37u64 {
            engine.submit(uid, &report(&[(0, 1.0)])).unwrap();
        }
        let loads = engine.shard_loads();
        assert_eq!(loads.len(), 4);
        assert_eq!(loads.iter().sum::<usize>(), 37);
    }
}
