//! # hdldp-protocol
//!
//! The end-to-end LDP collection protocol of Section III-B / IV-B of the paper:
//!
//! 1. **Perturbation (client side)** — each of the `n` users samples `m` of her
//!    `d` dimensions, perturbs each sampled value with budget `ε/m` using any
//!    [`hdldp_mechanisms::Mechanism`], and sends the resulting report.
//! 2. **Calibration & aggregation (collector side)** — the collector averages
//!    the received values per dimension to obtain the naive estimated mean
//!    `θ̂_j = (1/r_j) Σ_i t*_ij` (the aggregation that HDR4ME later
//!    re-calibrates).
//!
//! The same machinery drives frequency estimation (Section V-C) by
//! histogram-encoding categorical dimensions and running mean estimation on
//! the encoded entries with budget `ε/(2m)`.
//!
//! The module layout mirrors the protocol phases:
//!
//! * [`budget`] — privacy-budget accounting and splitting.
//! * [`client`] — user-side sampling and perturbation.
//! * [`report`] — the wire format between users and the collector.
//! * [`aggregator`] — reference single-loop aggregation into per-dimension
//!   means (Welford moments; the semantics every scaled path must match).
//! * [`shard`] — hash-based shard routing and per-shard partial sums/counts.
//! * [`ingest`] — the sharded, batched ingest engine (bounded report batches
//!   flowing shard-locally, merge-on-read estimation) that scales the
//!   aggregation to millions of users.
//! * [`pipeline`] — one-call end-to-end mean estimation over a dataset,
//!   running on the sharded engine.
//! * [`frequency`] — end-to-end frequency estimation over categorical data.
//! * [`metrics`] — the paper's utility metrics for a finished run.
//! * [`telemetry`] — pre-registered runtime-metric bundles (ingest counters,
//!   phase timers) recording into an [`hdldp_telemetry::Registry`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod aggregator;
pub mod budget;
pub mod client;
pub mod error;
pub mod frequency;
pub mod ingest;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod shard;
pub mod telemetry;

pub use aggregator::Aggregator;
pub use budget::BudgetSplit;
pub use client::Client;
pub use error::ProtocolError;
pub use frequency::{FrequencyEstimate, FrequencyPipeline};
pub use ingest::{IngestConfig, IngestEngine, ReportBatch};
pub use metrics::UtilityReport;
pub use pipeline::{MeanEstimate, MeanEstimationPipeline, PipelineConfig};
pub use report::Report;
pub use shard::{ShardAccumulator, ShardRouter};
pub use telemetry::{IngestMetrics, PipelineMetrics};

/// Convenience result alias for protocol operations.
pub type Result<T> = std::result::Result<T, ProtocolError>;
