//! Utility metrics for a finished estimation run (Section III-B of the paper).

use crate::ProtocolError;
use hdldp_math::stats;
use serde::{Deserialize, Serialize};

/// The paper's utility metrics comparing an estimate against the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityReport {
    /// Mean squared error (Equation 3).
    pub mse: f64,
    /// Euclidean deviation `‖θ̂ − θ̄‖₂` (Equation 2).
    pub l2_deviation: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Largest per-dimension absolute error.
    pub max_abs_error: f64,
}

impl UtilityReport {
    /// Compute all metrics for an estimate against the ground truth.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when the vectors are empty or
    /// of different lengths.
    pub fn compare(estimate: &[f64], truth: &[f64]) -> crate::Result<Self> {
        let to_err = |e: hdldp_math::MathError| ProtocolError::InvalidConfig {
            name: "estimate",
            reason: e.to_string(),
        };
        Ok(Self {
            mse: stats::mse(estimate, truth).map_err(to_err)?,
            l2_deviation: stats::l2_deviation(estimate, truth).map_err(to_err)?,
            mae: stats::mae(estimate, truth).map_err(to_err)?,
            max_abs_error: stats::max_abs_deviation(estimate, truth).map_err(to_err)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_computes_all_metrics() {
        let est = [0.5, -0.5];
        let truth = [0.0, 0.0];
        let r = UtilityReport::compare(&est, &truth).unwrap();
        assert!((r.mse - 0.25).abs() < 1e-12);
        assert!((r.l2_deviation - 0.5f64.hypot(0.5)).abs() < 1e-12);
        assert!((r.mae - 0.5).abs() < 1e-12);
        assert!((r.max_abs_error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_estimate_has_zero_error() {
        let v = [0.1, 0.2, -0.3];
        let r = UtilityReport::compare(&v, &v).unwrap();
        assert_eq!(r.mse, 0.0);
        assert_eq!(r.l2_deviation, 0.0);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.max_abs_error, 0.0);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(UtilityReport::compare(&[1.0], &[1.0, 2.0]).is_err());
        assert!(UtilityReport::compare(&[], &[]).is_err());
    }

    #[test]
    fn serializes_to_json() {
        let r = UtilityReport::compare(&[0.5], &[0.0]).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("mse"));
        let back: UtilityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
