//! Utility metrics for a finished estimation run (Section III-B of the paper).

use crate::ProtocolError;
use hdldp_math::stats;
use serde::{Deserialize, Serialize};

/// The paper's utility metrics comparing an estimate against the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityReport {
    /// Mean squared error (Equation 3).
    pub mse: f64,
    /// Euclidean deviation `‖θ̂ − θ̄‖₂` (Equation 2).
    pub l2_deviation: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Largest per-dimension absolute error.
    pub max_abs_error: f64,
}

impl UtilityReport {
    /// Compute all metrics for an estimate against the ground truth.
    ///
    /// # Errors
    /// Returns [`ProtocolError::MetricComputation`] naming the offending
    /// input — `"estimate"` or `"truth"` when one vector alone is at fault
    /// (empty), `"estimate/truth"` when the fault involves both (length
    /// mismatch) — so the caller can tell a bad estimate from bad ground
    /// truth.
    pub fn compare(estimate: &[f64], truth: &[f64]) -> crate::Result<Self> {
        // Emptiness is checked before the length comparison so an empty
        // vector is blamed by name instead of drowning in a generic
        // mismatch: an empty ground truth is a `truth` fault, not an
        // `estimate` one.
        let empty_input = match (estimate.is_empty(), truth.is_empty()) {
            (true, true) => Some("estimate/truth"),
            (true, false) => Some("estimate"),
            (false, true) => Some("truth"),
            (false, false) => None,
        };
        if let Some(input) = empty_input {
            return Err(ProtocolError::MetricComputation {
                metric: "utility",
                input,
                reason: "input vector is empty".into(),
            });
        }
        if estimate.len() != truth.len() {
            return Err(ProtocolError::MetricComputation {
                metric: "utility",
                input: "estimate/truth",
                reason: format!(
                    "length mismatch: estimate has {} dimensions, truth has {}",
                    estimate.len(),
                    truth.len()
                ),
            });
        }
        // The inputs are validated above, so stats errors cannot name a bad
        // input; map any residual failure without blaming the estimate.
        let to_err = |metric: &'static str| {
            move |e: hdldp_math::MathError| ProtocolError::MetricComputation {
                metric,
                input: "estimate/truth",
                reason: e.to_string(),
            }
        };
        Ok(Self {
            mse: stats::mse(estimate, truth).map_err(to_err("mse"))?,
            l2_deviation: stats::l2_deviation(estimate, truth).map_err(to_err("l2_deviation"))?,
            mae: stats::mae(estimate, truth).map_err(to_err("mae"))?,
            max_abs_error: stats::max_abs_deviation(estimate, truth)
                .map_err(to_err("max_abs_error"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_computes_all_metrics() {
        let est = [0.5, -0.5];
        let truth = [0.0, 0.0];
        let r = UtilityReport::compare(&est, &truth).unwrap();
        assert!((r.mse - 0.25).abs() < 1e-12);
        assert!((r.l2_deviation - 0.5f64.hypot(0.5)).abs() < 1e-12);
        assert!((r.mae - 0.5).abs() < 1e-12);
        assert!((r.max_abs_error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_estimate_has_zero_error() {
        let v = [0.1, 0.2, -0.3];
        let r = UtilityReport::compare(&v, &v).unwrap();
        assert_eq!(r.mse, 0.0);
        assert_eq!(r.l2_deviation, 0.0);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.max_abs_error, 0.0);
    }

    #[test]
    fn errors_name_the_offending_input() {
        let input_of =
            |estimate: &[f64], truth: &[f64]| match UtilityReport::compare(estimate, truth) {
                Err(ProtocolError::MetricComputation { input, .. }) => input,
                other => panic!("expected MetricComputation, got {other:?}"),
            };
        assert_eq!(input_of(&[], &[1.0]), "estimate");
        assert_eq!(input_of(&[1.0], &[]), "truth");
        assert_eq!(input_of(&[], &[]), "estimate/truth");
        assert_eq!(input_of(&[1.0], &[1.0, 2.0]), "estimate/truth");
        // Non-finite values are computed through, not rejected.
        assert!(UtilityReport::compare(&[1.0], &[f64::NAN]).is_ok());
    }

    #[test]
    fn length_mismatch_reports_both_lengths() {
        match UtilityReport::compare(&[1.0, 2.0, 3.0], &[1.0]) {
            Err(ProtocolError::MetricComputation {
                metric,
                input,
                reason,
            }) => {
                assert_eq!(metric, "utility");
                assert_eq!(input, "estimate/truth");
                assert!(reason.contains('3') && reason.contains('1'), "{reason}");
            }
            other => panic!("expected MetricComputation, got {other:?}"),
        }
    }

    #[test]
    fn serializes_to_json() {
        let r = UtilityReport::compare(&[0.5], &[0.0]).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("mse"));
        let back: UtilityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
