//! One-call end-to-end mean estimation over a [`Dataset`].
//!
//! The pipeline wires together the client (sampling + perturbation) and the
//! sharded ingest engine (naive mean aggregation), exactly reproducing the
//! collection procedure of Section III-B: `n` users, `d` dimensions, `m`
//! reported dimensions per user, per-dimension budget `ε/m`. Users are
//! hash-partitioned across one ingest shard per worker thread and each user's
//! randomness is derived from the run seed and her id alone, so runs are
//! deterministic given the configured seed while paper-scale collections stay
//! fast.

use crate::telemetry::{PipelineMetrics, PERTURB_SAMPLE_EVERY};
use crate::{BudgetSplit, Client, IngestConfig, IngestEngine, ProtocolError};
use hdldp_data::Dataset;
use hdldp_mechanisms::{build_mechanism, Mechanism, MechanismKind};
use hdldp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of one mean-estimation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Total per-user privacy budget `ε`.
    pub total_epsilon: f64,
    /// Number of dimensions `m` each user reports.
    pub reported_dims: usize,
    /// Seed for the (deterministic) randomness of the run.
    pub seed: u64,
}

impl PipelineConfig {
    /// Convenience constructor.
    pub fn new(total_epsilon: f64, reported_dims: usize, seed: u64) -> Self {
        Self {
            total_epsilon,
            reported_dims,
            seed,
        }
    }
}

/// The outcome of one mean-estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanEstimate {
    /// The naive estimated mean `θ̂` per dimension.
    pub estimated_means: Vec<f64>,
    /// The true mean `θ̄` per dimension (ground truth from the dataset).
    pub true_means: Vec<f64>,
    /// Number of reports received per dimension (`r_j`).
    pub report_counts: Vec<u64>,
    /// The per-dimension budget `ε/m` that was used.
    pub per_dimension_epsilon: f64,
}

impl MeanEstimate {
    /// Utility metrics of the naive estimate against the ground truth.
    ///
    /// # Errors
    /// Propagates [`crate::UtilityReport::compare`] errors (cannot happen for a
    /// well-formed estimate).
    pub fn utility(&self) -> crate::Result<crate::UtilityReport> {
        crate::UtilityReport::compare(&self.estimated_means, &self.true_means)
    }
}

/// End-to-end mean estimation pipeline for one mechanism.
///
/// Pipelines built with [`MeanEstimationPipeline::with_telemetry`] time each
/// phase of every run — perturbation (sampled every
/// [`PERTURB_SAMPLE_EVERY`]-th user), collection, estimation — and propagate
/// the registry to the ingest engine they run on. Without it telemetry is
/// disabled and every recording site is a single branch.
pub struct MeanEstimationPipeline {
    mechanism: Box<dyn Mechanism>,
    kind: MechanismKind,
    config: PipelineConfig,
    registry: Registry,
    metrics: PipelineMetrics,
}

impl MeanEstimationPipeline {
    /// Build a pipeline for the given mechanism kind; the mechanism is
    /// instantiated with the per-dimension budget `ε/m`. Telemetry is
    /// disabled; chain [`MeanEstimationPipeline::with_telemetry`] to enable.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] for an invalid budget split and
    /// propagates mechanism construction errors.
    pub fn new(kind: MechanismKind, config: PipelineConfig) -> crate::Result<Self> {
        let budget = BudgetSplit::new(config.total_epsilon, config.reported_dims)?;
        let mechanism = build_mechanism(kind, budget.per_dimension())?;
        let registry = Registry::disabled();
        let metrics = PipelineMetrics::register(&registry);
        Ok(Self {
            mechanism,
            kind,
            config,
            registry,
            metrics,
        })
    }

    /// Record phase timings and ingest metrics of every run into `registry`
    /// (see the metric table in [`crate::telemetry`]).
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.registry = registry.clone();
        self.metrics = PipelineMetrics::register(registry);
        self
    }

    /// The mechanism kind this pipeline perturbs with.
    pub fn kind(&self) -> MechanismKind {
        self.kind
    }

    /// The run configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// The instantiated per-dimension mechanism.
    pub fn mechanism(&self) -> &dyn Mechanism {
        self.mechanism.as_ref()
    }

    /// Run the full collection over a dataset.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `m > d`, and
    /// [`ProtocolError::EmptyDimension`] in the (vanishingly unlikely at
    /// realistic scales) event that some dimension received no report.
    pub fn run(&self, dataset: &Dataset) -> crate::Result<MeanEstimate> {
        self.metrics.runs.inc();
        let dims = dataset.dims();
        let budget = BudgetSplit::new(self.config.total_epsilon, self.config.reported_dims)?;
        let client = Client::new(self.mechanism.as_ref(), budget, dims)?;

        // Users are hash-partitioned across one ingest shard per worker
        // thread; each shard batches its reports locally and the partial
        // sums/counts are merged on read (exact).
        let seed = self.config.seed;
        let perturb_ns = self.metrics.perturb_ns.clone();
        // Only read the clock when the histogram actually records, and even
        // then only for every PERTURB_SAMPLE_EVERY-th user, so timing stays
        // negligible against million-user collections.
        let sample_perturb = perturb_ns.is_enabled();
        let mut engine =
            IngestEngine::with_telemetry(dims, IngestConfig::per_thread(), &self.registry)?;
        let ingest_timer = self.metrics.ingest_ns.start();
        engine.ingest_partitioned(0..dataset.users() as u64, |user, out| {
            // Deterministic per-user stream: SplitMix-style mixing of the
            // run seed and the user index.
            let user_seed = seed.wrapping_add((user + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = StdRng::seed_from_u64(user_seed);
            let row = dataset.row(user as usize).map_err(ProtocolError::from)?;
            if sample_perturb && user % PERTURB_SAMPLE_EVERY == 0 {
                let started = Instant::now();
                let result = client.perturb_tuple_into(row, &mut rng, out);
                perturb_ns
                    .record_ns(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                result
            } else {
                client.perturb_tuple_into(row, &mut rng, out)
            }
        })?;
        ingest_timer.stop();

        let estimate_timer = self.metrics.estimate_ns.start();
        let merged = engine.merged()?;
        let estimate = MeanEstimate {
            estimated_means: merged.means()?,
            true_means: dataset.true_means(),
            report_counts: merged.counts(),
            per_dimension_epsilon: budget.per_dimension(),
        };
        estimate_timer.stop();
        Ok(estimate)
    }

    /// Run the pipeline `trials` times with distinct seeds and return every
    /// estimate (used by the experiment harness to average MSE over
    /// repetitions, as the paper does).
    ///
    /// # Errors
    /// Propagates the first error from any trial.
    pub fn run_trials(&self, dataset: &Dataset, trials: usize) -> crate::Result<Vec<MeanEstimate>> {
        (0..trials)
            .map(|t| {
                let mut config = self.config;
                config.seed = self.config.seed.wrapping_add(t as u64);
                let pipeline = MeanEstimationPipeline {
                    mechanism: build_mechanism(
                        self.kind,
                        BudgetSplit::new(config.total_epsilon, config.reported_dims)?
                            .per_dimension(),
                    )?,
                    kind: self.kind,
                    config,
                    registry: self.registry.clone(),
                    metrics: self.metrics.clone(),
                };
                pipeline.run(dataset)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_data::UniformDataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_dataset(users: usize, dims: usize) -> Dataset {
        UniformDataset::new(users, dims)
            .unwrap()
            .generate(&mut StdRng::seed_from_u64(404))
    }

    #[test]
    fn construction_validates_config() {
        assert!(MeanEstimationPipeline::new(
            MechanismKind::Laplace,
            PipelineConfig::new(0.0, 1, 0)
        )
        .is_err());
        assert!(MeanEstimationPipeline::new(
            MechanismKind::Laplace,
            PipelineConfig::new(1.0, 0, 0)
        )
        .is_err());
        let p = MeanEstimationPipeline::new(MechanismKind::Laplace, PipelineConfig::new(1.0, 4, 0))
            .unwrap();
        assert_eq!(p.kind(), MechanismKind::Laplace);
        assert!((p.mechanism().epsilon() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn m_larger_than_d_is_rejected_at_run_time() {
        let p = MeanEstimationPipeline::new(MechanismKind::Laplace, PipelineConfig::new(1.0, 8, 0))
            .unwrap();
        let data = uniform_dataset(100, 4);
        assert!(p.run(&data).is_err());
    }

    #[test]
    fn report_counts_sum_to_n_times_m() {
        let data = uniform_dataset(500, 10);
        let p =
            MeanEstimationPipeline::new(MechanismKind::Piecewise, PipelineConfig::new(2.0, 3, 7))
                .unwrap();
        let est = p.run(&data).unwrap();
        let total: u64 = est.report_counts.iter().sum();
        assert_eq!(total, 500 * 3);
        assert_eq!(est.estimated_means.len(), 10);
        assert_eq!(est.true_means.len(), 10);
        assert!((est.per_dimension_epsilon - 2.0 / 3.0).abs() < 1e-12);
        // E[r_j] = n m / d = 150; every dimension should be in a sane band.
        for &r in &est.report_counts {
            assert!((100..=200).contains(&r), "r_j = {r}");
        }
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let data = uniform_dataset(300, 6);
        let config = PipelineConfig::new(1.0, 2, 99);
        let p1 = MeanEstimationPipeline::new(MechanismKind::Laplace, config).unwrap();
        let p2 = MeanEstimationPipeline::new(MechanismKind::Laplace, config).unwrap();
        assert_eq!(p1.run(&data).unwrap(), p2.run(&data).unwrap());
        let p3 =
            MeanEstimationPipeline::new(MechanismKind::Laplace, PipelineConfig::new(1.0, 2, 100))
                .unwrap();
        assert_ne!(p1.run(&data).unwrap(), p3.run(&data).unwrap());
    }

    #[test]
    fn generous_budget_recovers_means_accurately() {
        // With a huge budget and every dimension reported, the estimate should
        // be very close to the truth.
        let data = uniform_dataset(5_000, 4);
        let p =
            MeanEstimationPipeline::new(MechanismKind::Piecewise, PipelineConfig::new(400.0, 4, 3))
                .unwrap();
        let est = p.run(&data).unwrap();
        let utility = est.utility().unwrap();
        assert!(utility.mse < 1e-3, "mse = {}", utility.mse);
    }

    #[test]
    fn smaller_budget_gives_larger_error() {
        let data = uniform_dataset(2_000, 8);
        let mse_at = |eps: f64| {
            let p = MeanEstimationPipeline::new(
                MechanismKind::Laplace,
                PipelineConfig::new(eps, 8, 11),
            )
            .unwrap();
            // Average over a few trials to smooth randomness.
            let runs = p.run_trials(&data, 5).unwrap();
            runs.iter().map(|e| e.utility().unwrap().mse).sum::<f64>() / runs.len() as f64
        };
        let low = mse_at(0.5);
        let high = mse_at(8.0);
        assert!(
            low > high * 10.0,
            "expected much larger MSE at eps = 0.5 ({low}) than at 8.0 ({high})"
        );
    }

    #[test]
    fn run_trials_uses_distinct_seeds() {
        let data = uniform_dataset(200, 4);
        let p = MeanEstimationPipeline::new(MechanismKind::Laplace, PipelineConfig::new(1.0, 2, 5))
            .unwrap();
        let runs = p.run_trials(&data, 3).unwrap();
        assert_eq!(runs.len(), 3);
        assert_ne!(runs[0].estimated_means, runs[1].estimated_means);
        assert_ne!(runs[1].estimated_means, runs[2].estimated_means);
    }
}
