//! The report a user sends to the data collector.
//!
//! A report contains the perturbed values of the `m` dimensions the user
//! sampled. Only perturbed values leave the user's device (Definition 1 of
//! the paper); the collector never sees raw data.

use serde::{Deserialize, Serialize};

/// One user's perturbed report: `(dimension index, perturbed value)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    entries: Vec<(usize, f64)>,
}

impl Report {
    /// Build a report from `(dimension, perturbed value)` pairs.
    pub fn new(entries: Vec<(usize, f64)>) -> Self {
        Self { entries }
    }

    /// The `(dimension, value)` pairs.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Number of reported dimensions (the `m` of the protocol).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the report carries no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The largest dimension index mentioned in the report, if any.
    pub fn max_dimension(&self) -> Option<usize> {
        self.entries.iter().map(|(d, _)| *d).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = Report::new(vec![(3, 0.5), (1, -0.2)]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.max_dimension(), Some(3));
        assert_eq!(r.entries()[1], (1, -0.2));
    }

    #[test]
    fn empty_report() {
        let r = Report::new(vec![]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.max_dimension(), None);
    }

    #[test]
    fn serde_round_trip() {
        let r = Report::new(vec![(0, 1.25), (7, -3.5)]);
        let json = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
