//! Hash-based shard routing and per-shard partial-sum accumulators.
//!
//! The paper's setting (Section III-B) is an aggregator collecting perturbed
//! reports from a very large user population. At that scale the collector
//! cannot funnel every report through one accumulator: ingest is partitioned
//! into *shards*. Each report is routed to a shard by hashing its user id
//! ([`ShardRouter`]), every shard keeps per-dimension **partial sums and
//! counts** ([`ShardAccumulator`]), and the estimated mean
//! `θ̂_j = (1/r_j) Σ_i t*_ij` is recovered *on read* by merging the shard
//! partials — the sum of per-shard sums equals the global sum, so sharding is
//! lossless for the naive aggregation the paper analyzes.
//!
//! [`crate::IngestEngine`] combines these pieces with bounded report batches
//! into the full ingest path; this module holds the two building blocks.

use crate::ingest::ReportBatch;
use crate::ProtocolError;

/// Routes reports to shards by hashing user ids.
///
/// The route is a pure function of `(user id, shard count)` — independent of
/// arrival order and thread scheduling — so a sharded run is exactly
/// reproducible. Mixing uses the SplitMix64 finalizer, which spreads even
/// sequential user ids uniformly across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Create a router over `shards` shards.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `shards` is zero.
    pub fn new(shards: usize) -> crate::Result<Self> {
        if shards == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "shards",
                reason: "shard count must be positive".into(),
            });
        }
        Ok(Self { shards })
    }

    /// The number of shards this router spreads reports over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a user's reports are routed to (stable across runs).
    // hot-path: pure integer mixing, called once per report
    pub fn route(&self, user_id: u64) -> usize {
        // Routing is the identity with one shard; skip the hash entirely so
        // the unsharded engine pays nothing for the routing layer.
        if self.shards == 1 {
            return 0;
        }
        // SplitMix64 finalizer: full-avalanche mixing of the user id.
        let mut z = user_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Multiply-shift range reduction: maps the mixed hash uniformly onto
        // `0..shards` with one widening multiply, keeping the per-report
        // routing cost off the hardware-divide path that `z % shards` takes.
        ((z as u128 * self.shards as u128) >> 64) as usize
    }
}

/// One dimension's partial state: `Σ t*_ij` and the report count `r_j`.
///
/// Sum and count live side by side (16 bytes) so the accumulate hot loop
/// touches a single cache line per entry instead of two parallel arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DimPartial {
    sum: f64,
    count: u64,
}

impl DimPartial {
    const ZERO: Self = Self { sum: 0.0, count: 0 };
}

/// One shard's partial aggregation state: per-dimension sums and counts.
///
/// Unlike [`crate::Aggregator`] (which maintains Welford running moments for
/// diagnostics), a shard accumulator stores only what the naive estimator
/// needs — `Σ t*_ij` and `r_j` per dimension — in one flat array of
/// sum/count pairs, so the accumulate loop is one indexed read-modify-write
/// per entry with no per-report allocation. Partial accumulators from
/// different shards [`merge`] exactly: per-dimension sums and counts add
/// componentwise.
///
/// [`merge`]: ShardAccumulator::merge
#[derive(Debug, Clone, PartialEq)]
pub struct ShardAccumulator {
    partials: Vec<DimPartial>,
    reports: usize,
}

impl ShardAccumulator {
    /// Create an empty accumulator for `dims` dimensions.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when `dims` is zero.
    pub fn new(dims: usize) -> crate::Result<Self> {
        if dims == 0 {
            return Err(ProtocolError::InvalidConfig {
                name: "dims",
                reason: "dimensionality must be positive".into(),
            });
        }
        Ok(Self {
            partials: vec![DimPartial::ZERO; dims],
            reports: 0,
        })
    }

    /// The configured dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.partials.len()
    }

    /// Number of reports accumulated into this shard.
    pub fn reports(&self) -> usize {
        self.reports
    }

    /// `true` when no report has been accumulated yet.
    pub fn is_empty(&self) -> bool {
        self.reports == 0
    }

    /// Per-dimension partial sums `Σ t*_ij` over this shard's reports
    /// (materialized from the interleaved storage; a read-path cost only).
    pub fn sums(&self) -> Vec<f64> {
        self.partials.iter().map(|p| p.sum).collect()
    }

    /// Per-dimension report counts `r_j` over this shard's reports
    /// (materialized from the interleaved storage; a read-path cost only).
    pub fn counts(&self) -> Vec<u64> {
        self.partials.iter().map(|p| p.count).collect()
    }

    /// Accumulate one report given as `(dimension, value)` entries.
    ///
    /// # Errors
    /// Returns [`ProtocolError::DimensionOutOfRange`] when an entry mentions a
    /// dimension `>= dims`; the accumulator is untouched in that case.
    // hot-path: validate then add in place; error construction stays alloc-free
    pub fn accumulate(&mut self, entries: &[(usize, f64)]) -> crate::Result<()> {
        let dims = self.dims();
        // Validate before mutating so a bad report is rejected atomically.
        for &(dim, _) in entries {
            if dim >= dims {
                return Err(ProtocolError::DimensionOutOfRange {
                    dimension: dim,
                    dims,
                });
            }
        }
        for &(dim, value) in entries {
            let partial = &mut self.partials[dim];
            partial.sum += value;
            partial.count += 1;
        }
        self.reports += 1;
        Ok(())
    }

    /// Accumulate every report of a batch (the entries were already validated
    /// against the batch's dimensionality when they were pushed).
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when the batch was built for a
    /// different dimensionality.
    // hot-path: the per-batch drain loop; the formatted mismatch error is
    // built in the #[cold] helper below so this body never allocates
    pub fn ingest_batch(&mut self, batch: &ReportBatch) -> crate::Result<()> {
        if batch.dims() != self.dims() {
            return Err(batch_dims_mismatch(batch.dims(), self.dims()));
        }
        for &(dim, value) in batch.flat_entries() {
            let partial = &mut self.partials[dim as usize];
            partial.sum += value;
            partial.count += 1;
        }
        self.reports += batch.reports();
        Ok(())
    }

    /// Merge another shard's partials into this one (exact: sums and counts
    /// add componentwise).
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfig`] when the dimensionalities
    /// differ.
    pub fn merge(&mut self, other: &ShardAccumulator) -> crate::Result<()> {
        if other.dims() != self.dims() {
            return Err(ProtocolError::InvalidConfig {
                name: "dims",
                reason: format!(
                    "cannot merge shard accumulators of {} and {} dims",
                    self.dims(),
                    other.dims()
                ),
            });
        }
        for (mine, theirs) in self.partials.iter_mut().zip(&other.partials) {
            mine.sum += theirs.sum;
            mine.count += theirs.count;
        }
        self.reports += other.reports;
        Ok(())
    }

    /// The naive estimated mean `θ̂_j = sums[j] / counts[j]` per dimension.
    ///
    /// # Errors
    /// Returns [`ProtocolError::EmptyDimension`] if any dimension received no
    /// reports (its mean is undefined).
    pub fn means(&self) -> crate::Result<Vec<f64>> {
        self.partials
            .iter()
            .enumerate()
            .map(|(j, partial)| {
                if partial.count == 0 {
                    Err(ProtocolError::EmptyDimension { dimension: j })
                } else {
                    Ok(partial.sum / partial.count as f64)
                }
            })
            .collect()
    }

    /// Reset to the empty state without releasing the allocations.
    pub fn clear(&mut self) {
        self.partials.fill(DimPartial::ZERO);
        self.reports = 0;
    }
}

/// Build the batch/shard dimensionality mismatch error. `#[cold]` keeps the
/// `format!` machinery out of the inlined `ingest_batch` fast path.
#[cold]
fn batch_dims_mismatch(batch_dims: usize, shard_dims: usize) -> ProtocolError {
    ProtocolError::InvalidConfig {
        name: "batch",
        reason: format!(
            "cannot ingest a {batch_dims}-dimension batch into a {shard_dims}-dimension shard"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_requires_positive_shard_count() {
        assert!(ShardRouter::new(0).is_err());
        assert_eq!(ShardRouter::new(5).unwrap().shards(), 5);
    }

    #[test]
    fn router_is_stable_and_in_range() {
        let router = ShardRouter::new(7).unwrap();
        for uid in 0..1000u64 {
            let s = router.route(uid);
            assert!(s < 7);
            assert_eq!(s, router.route(uid), "route must be deterministic");
        }
    }

    #[test]
    fn router_spreads_sequential_ids_roughly_evenly() {
        let shards = 8;
        let router = ShardRouter::new(shards).unwrap();
        let mut loads = vec![0usize; shards];
        for uid in 0..8000u64 {
            loads[router.route(uid)] += 1;
        }
        for (s, &load) in loads.iter().enumerate() {
            // Perfect balance is 1000 per shard; allow a generous band.
            assert!((700..=1300).contains(&load), "shard {s} got {load}");
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(1).unwrap();
        assert!((0..100u64).all(|uid| router.route(uid) == 0));
    }

    #[test]
    fn accumulator_requires_positive_dims() {
        assert!(ShardAccumulator::new(0).is_err());
        let acc = ShardAccumulator::new(3).unwrap();
        assert_eq!(acc.dims(), 3);
        assert!(acc.is_empty());
    }

    #[test]
    fn accumulate_tracks_sums_and_counts() {
        let mut acc = ShardAccumulator::new(3).unwrap();
        acc.accumulate(&[(0, 1.0), (2, -1.0)]).unwrap();
        acc.accumulate(&[(0, 3.0), (1, 0.5)]).unwrap();
        assert_eq!(acc.reports(), 2);
        assert_eq!(acc.sums(), &[4.0, 0.5, -1.0]);
        assert_eq!(acc.counts(), &[2, 1, 1]);
        assert_eq!(acc.means().unwrap(), vec![2.0, 0.5, -1.0]);
    }

    #[test]
    fn out_of_range_dimension_is_rejected_atomically() {
        let mut acc = ShardAccumulator::new(2).unwrap();
        assert!(acc.accumulate(&[(0, 1.0), (5, 1.0)]).is_err());
        assert!(acc.is_empty());
        assert_eq!(acc.sums(), &[0.0, 0.0]);
        assert_eq!(acc.counts(), &[0, 0]);
    }

    #[test]
    fn empty_dimension_is_an_error() {
        let mut acc = ShardAccumulator::new(2).unwrap();
        acc.accumulate(&[(0, 1.0)]).unwrap();
        assert!(matches!(
            acc.means(),
            Err(ProtocolError::EmptyDimension { dimension: 1 })
        ));
    }

    #[test]
    fn merge_adds_partials_exactly() {
        let mut a = ShardAccumulator::new(2).unwrap();
        a.accumulate(&[(0, 1.0), (1, 2.0)]).unwrap();
        let mut b = ShardAccumulator::new(2).unwrap();
        b.accumulate(&[(0, 3.0)]).unwrap();
        b.accumulate(&[(1, 4.0)]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.reports(), 3);
        assert_eq!(a.sums(), &[4.0, 6.0]);
        assert_eq!(a.counts(), &[2, 2]);
        assert_eq!(a.means().unwrap(), vec![2.0, 3.0]);
        let wrong = ShardAccumulator::new(3).unwrap();
        assert!(a.merge(&wrong).is_err());
    }

    #[test]
    fn batch_dimensionality_must_match() {
        let mut acc = ShardAccumulator::new(2).unwrap();
        let batch = ReportBatch::new(3, 4).unwrap();
        assert!(acc.ingest_batch(&batch).is_err());
    }

    #[test]
    fn clear_resets_but_keeps_dims() {
        let mut acc = ShardAccumulator::new(2).unwrap();
        acc.accumulate(&[(0, 1.0), (1, 1.0)]).unwrap();
        acc.clear();
        assert!(acc.is_empty());
        assert_eq!(acc.dims(), 2);
        assert_eq!(acc.sums(), &[0.0, 0.0]);
    }
}
