//! Metric bundles instrumenting the collection protocol.
//!
//! Components take a [`Registry`] at construction and register their metrics
//! once; the bundles below are the pre-registered handles they record into.
//! All handles are cheap clones sharing atomic cells, so instrumented engines
//! stay `Clone` and worker threads record into the same metrics. Bundles
//! registered against [`Registry::disabled`] carry only no-op handles: every
//! recording call is a single branch, nothing allocates, and the hot submit
//! path is untouched (ingest counters are recorded at batch-flush granularity
//! — once per [`crate::IngestConfig::batch_capacity`] reports — not per
//! report).
//!
//! Metric names are stable and documented in `docs/OBSERVABILITY.md`:
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `ingest_reports_total` | counter | reports flushed into shard accumulators |
//! | `ingest_entries_total` | counter | `(dimension, value)` entries flushed |
//! | `ingest_rejects_total` | counter | reports rejected by validation |
//! | `ingest_batch_flushes_total` | counter | batch drains into an accumulator |
//! | `ingest_batch_flush_ns` | histogram | latency of one batch drain (sampled) |
//! | `ingest_merges_total` | counter | merge-on-read operations |
//! | `ingest_merge_ns` | histogram | latency of one full merge-on-read |
//! | `ingest_shardNNN_reports_total` | counter | reports flushed by shard `NNN` |
//! | `pipeline_runs_total` | counter | end-to-end pipeline runs |
//! | `pipeline_perturb_ns` | histogram | per-user perturbation (sampled) |
//! | `pipeline_ingest_ns` | histogram | collection phase of one run |
//! | `pipeline_estimate_ns` | histogram | estimation phase of one run |

use hdldp_telemetry::{Counter, LatencyHistogram, Registry, SpanTimer};

/// How often [`PipelineMetrics::perturb_ns`] samples a user's perturbation
/// latency: every `PERTURB_SAMPLE_EVERY`-th user reads the clock, the rest
/// skip it, bounding timer overhead on million-user runs.
pub const PERTURB_SAMPLE_EVERY: u64 = 64;

/// How often [`IngestMetrics::flush_ns`] samples a batch drain's latency:
/// counters advance on every flush, but only every `FLUSH_SAMPLE_EVERY`-th
/// flush reads the clock. Clock reads dominate the per-flush recording cost
/// on hosts with a slow time source, so the latency distribution is sampled
/// while the counts stay exact.
pub const FLUSH_SAMPLE_EVERY: u64 = 8;

/// Pre-registered handles for the sharded ingest engine.
///
/// Counters advance when a batch drains into its shard accumulator (flush
/// granularity), so the per-report submit path performs no atomic traffic.
#[derive(Debug, Clone)]
pub struct IngestMetrics {
    /// Reports flushed into shard accumulators (`ingest_reports_total`).
    pub reports: Counter,
    /// Entries flushed into shard accumulators (`ingest_entries_total`).
    pub entries: Counter,
    /// Reports rejected by validation (`ingest_rejects_total`).
    pub rejects: Counter,
    /// Batch drains into an accumulator (`ingest_batch_flushes_total`).
    pub batch_flushes: Counter,
    /// Latency of one batch drain (`ingest_batch_flush_ns`).
    pub flush_ns: LatencyHistogram,
    /// Merge-on-read operations (`ingest_merges_total`).
    pub merges: Counter,
    /// Latency of one full merge-on-read (`ingest_merge_ns`).
    pub merge_ns: LatencyHistogram,
    /// Reports flushed per shard (`ingest_shardNNN_reports_total`).
    pub shard_reports: Vec<Counter>,
}

impl IngestMetrics {
    /// Register the engine's metrics (one per-shard counter per shard) in
    /// `registry`. Against a disabled registry every handle is a no-op.
    pub fn register(registry: &Registry, shards: usize) -> Self {
        Self {
            reports: registry.counter("ingest_reports_total"),
            entries: registry.counter("ingest_entries_total"),
            rejects: registry.counter("ingest_rejects_total"),
            batch_flushes: registry.counter("ingest_batch_flushes_total"),
            flush_ns: registry.histogram("ingest_batch_flush_ns"),
            merges: registry.counter("ingest_merges_total"),
            merge_ns: registry.histogram("ingest_merge_ns"),
            shard_reports: (0..shards)
                .map(|i| registry.counter(&format!("ingest_shard{i:03}_reports_total")))
                .collect(),
        }
    }

    /// A span timer for the next batch drain: live on every
    /// [`FLUSH_SAMPLE_EVERY`]-th flush, inert otherwise — and always inert
    /// when telemetry is disabled, without reading the clock or the counter.
    #[inline]
    pub(crate) fn flush_timer(&self) -> SpanTimer {
        if self.flush_ns.is_enabled()
            && self
                .batch_flushes
                .value()
                .is_multiple_of(FLUSH_SAMPLE_EVERY)
        {
            self.flush_ns.start()
        } else {
            LatencyHistogram::noop().start()
        }
    }

    /// Record one drained batch: `reports`/`entries` flushed into shard
    /// `shard` (the drain latency is timed separately via
    /// [`IngestMetrics::flush_ns`]).
    #[inline]
    pub(crate) fn record_flush(&self, shard: usize, reports: usize, entries: usize) {
        self.batch_flushes.inc();
        self.reports.add(reports as u64);
        self.entries.add(entries as u64);
        if let Some(counter) = self.shard_reports.get(shard) {
            counter.add(reports as u64);
        }
    }
}

/// Pre-registered handles for the end-to-end mean-estimation pipeline.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// End-to-end pipeline runs (`pipeline_runs_total`).
    pub runs: Counter,
    /// Per-user perturbation latency, sampled every
    /// [`PERTURB_SAMPLE_EVERY`]-th user (`pipeline_perturb_ns`).
    pub perturb_ns: LatencyHistogram,
    /// Collection (perturb + ingest) phase of one run (`pipeline_ingest_ns`).
    pub ingest_ns: LatencyHistogram,
    /// Estimation (merge + means) phase of one run (`pipeline_estimate_ns`).
    pub estimate_ns: LatencyHistogram,
}

impl PipelineMetrics {
    /// Register the pipeline's metrics in `registry`. Against a disabled
    /// registry every handle is a no-op.
    pub fn register(registry: &Registry) -> Self {
        Self {
            runs: registry.counter("pipeline_runs_total"),
            perturb_ns: registry.histogram("pipeline_perturb_ns"),
            ingest_ns: registry.histogram("pipeline_ingest_ns"),
            estimate_ns: registry.histogram("pipeline_estimate_ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_against_disabled_registry_is_inert() {
        let m = IngestMetrics::register(&Registry::disabled(), 4);
        assert!(!m.reports.is_enabled());
        assert_eq!(m.shard_reports.len(), 4);
        m.record_flush(2, 10, 20);
        assert_eq!(m.reports.value(), 0);
        let p = PipelineMetrics::register(&Registry::disabled());
        assert!(!p.runs.is_enabled());
    }

    #[test]
    fn record_flush_advances_all_counters() {
        let registry = Registry::new();
        let m = IngestMetrics::register(&registry, 2);
        m.record_flush(1, 3, 6);
        m.record_flush(1, 2, 4);
        m.record_flush(0, 1, 2);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("ingest_batch_flushes_total"), Some(3));
        assert_eq!(snapshot.counter("ingest_reports_total"), Some(6));
        assert_eq!(snapshot.counter("ingest_entries_total"), Some(12));
        assert_eq!(snapshot.counter("ingest_shard000_reports_total"), Some(1));
        assert_eq!(snapshot.counter("ingest_shard001_reports_total"), Some(5));
    }

    #[test]
    fn out_of_range_shard_is_ignored() {
        let registry = Registry::new();
        let m = IngestMetrics::register(&registry, 1);
        m.record_flush(5, 1, 1);
        assert_eq!(registry.snapshot().counter("ingest_reports_total"), Some(1));
    }
}
