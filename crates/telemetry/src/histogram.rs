//! Log₂-bucketed latency histograms and the RAII span timer.
//!
//! A [`LatencyHistogram`] sorts every recorded nanosecond value into one of 64
//! power-of-two buckets (bucket `i` holds values whose bit length is `i`, so
//! bucket boundaries double: 1, 2–3, 4–7, 8–15 ns, ...). Recording is two
//! relaxed atomic adds plus one atomic max — lock-free and allocation-free —
//! and quantiles are recovered at snapshot time from the bucket counts with at
//! most 2× resolution error, which is ample for "where does the time go"
//! telemetry.

use crate::snapshot::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of log₂ buckets (one per possible `u64` bit length, plus zero).
pub(crate) const BUCKETS: usize = 64;

/// The shared storage behind a [`LatencyHistogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// The bucket a value falls into: its bit length, capped at `BUCKETS - 1`.
fn bucket_index(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The largest value bucket `i` can hold (used as the quantile estimate).
fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl HistogramCell {
    // hot-path: three relaxed atomic RMWs per timing sample, no allocation
    fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Produce a consistent point-in-time summary.
    ///
    /// Bucket counts are individually atomic; the count used for quantiles is
    /// the sum of the loaded buckets, so a snapshot taken mid-write is simply
    /// a valid snapshot of slightly fewer (or more) events — never torn.
    pub(crate) fn summarize(&self, name: &str) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = buckets.iter().sum();
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cumulative = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                cumulative += c;
                if cumulative >= rank {
                    return bucket_upper_bound(i).min(max_ns);
                }
            }
            max_ns
        };
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum_ns,
            mean_ns: if count == 0 {
                0.0
            } else {
                sum_ns as f64 / count as f64
            },
            p50_ns: quantile(0.50),
            p95_ns: quantile(0.95),
            p99_ns: quantile(0.99),
            max_ns,
        }
    }
}

/// A log₂-bucketed distribution of durations in nanoseconds.
///
/// Clones share one cell (hand them to worker threads freely); a handle from a
/// disabled registry records nothing and costs one branch per call.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    cell: Option<Arc<HistogramCell>>,
}

impl LatencyHistogram {
    /// A handle that records nothing (what disabled registries hand out).
    pub fn noop() -> Self {
        Self { cell: None }
    }

    pub(crate) fn live(cell: Arc<HistogramCell>) -> Self {
        Self { cell: Some(cell) }
    }

    /// `true` when recordings actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Record one duration, in nanoseconds.
    // hot-path: a branch plus HistogramCell::record; disabled handles are free
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some(cell) = &self.cell {
            cell.record(ns);
        }
    }

    /// Record one [`Duration`] (saturating at `u64::MAX` nanoseconds).
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        if self.cell.is_some() {
            self.record_ns(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Start an RAII span: the elapsed wall time is recorded when the returned
    /// [`SpanTimer`] is dropped. On a disabled histogram the timer is inert
    /// and never reads the clock.
    #[must_use = "the span is recorded when the returned timer is dropped"]
    pub fn start(&self) -> SpanTimer {
        SpanTimer {
            span: self
                .cell
                .as_ref()
                .map(|cell| (Arc::clone(cell), Instant::now())),
        }
    }

    /// Total number of recorded durations (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |cell| {
            cell.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
        })
    }
}

/// RAII guard that records the elapsed wall time into its histogram on drop.
///
/// Obtained from [`LatencyHistogram::start`]; bind it to a named local
/// (`let _timer = ...`) so it lives until the end of the span being measured.
#[derive(Debug)]
#[must_use = "the span is recorded when the timer is dropped"]
pub struct SpanTimer {
    span: Option<(Arc<HistogramCell>, Instant)>,
}

impl SpanTimer {
    /// Stop the span now (equivalent to dropping the timer).
    pub fn stop(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((cell, started)) = self.span.take() {
            cell.record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live() -> LatencyHistogram {
        LatencyHistogram::live(Arc::new(HistogramCell::default()))
    }

    #[test]
    fn bucket_index_is_the_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_their_range() {
        for i in 1..BUCKETS - 1 {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i);
            assert_eq!(bucket_index(hi + 1), i + 1);
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_are_ordered_and_max_is_exact() {
        let h = live();
        for ns in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 5_000] {
            h.record_ns(ns);
        }
        let snap = h.cell.as_ref().unwrap().summarize("t");
        assert_eq!(snap.count, 10);
        assert_eq!(snap.sum_ns, 450 + 5_000);
        assert_eq!(snap.max_ns, 5_000);
        assert!(snap.p50_ns <= snap.p95_ns);
        assert!(snap.p95_ns <= snap.p99_ns);
        assert!(snap.p99_ns <= snap.max_ns);
        // p50 of values 10..90 lands in the 32..63 bucket (resolution 2x).
        assert!(
            snap.p50_ns >= 50 && snap.p50_ns <= 63,
            "p50 = {}",
            snap.p50_ns
        );
        // p99 falls in the bucket of the outlier; clamped to the exact max.
        assert_eq!(snap.p99_ns, 5_000);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let h = live();
        let snap = h.cell.as_ref().unwrap().summarize("empty");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50_ns, 0);
        assert_eq!(snap.max_ns, 0);
        assert_eq!(snap.mean_ns, 0.0);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = live();
        {
            let _timer = h.start();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        let snap = h.cell.as_ref().unwrap().summarize("span");
        assert!(snap.max_ns >= 1_000_000, "max = {}", snap.max_ns);
    }

    #[test]
    fn noop_histogram_and_timer_record_nothing() {
        let h = LatencyHistogram::noop();
        h.record_ns(100);
        h.record_duration(Duration::from_secs(1));
        let timer = h.start();
        timer.stop();
        assert_eq!(h.count(), 0);
        assert!(!h.is_enabled());
    }
}
