//! # hdldp-telemetry
//!
//! Lock-free runtime metrics for the million-user ingest path.
//!
//! The collection protocol runs at millions of reports per second, so the
//! instrumentation layer has two non-negotiable properties:
//!
//! * **Lock-free, allocation-free recording.** Every hot-path operation —
//!   [`Counter::inc`], [`Gauge::set`], [`LatencyHistogram::record_ns`] — is a
//!   handful of relaxed atomic read-modify-writes on pre-allocated cells.
//!   Locks exist only on the *registration* path (naming a metric) and the
//!   *snapshot* path (reading everything out), both of which run a handful of
//!   times per process, not per report.
//! * **Zero cost when disabled.** A [`Registry::disabled`] registry hands out
//!   no-op handles (`Option::None` inside), so a disabled counter increment is
//!   one predictable branch and no memory traffic, and registering against a
//!   disabled registry allocates nothing.
//!
//! The building blocks:
//!
//! * [`Counter`] — monotonically increasing `u64` (reports ingested, batches
//!   flushed, rejects, ...).
//! * [`Gauge`] — an instantaneous `f64` (phase durations, shard skew, ...).
//! * [`LatencyHistogram`] — log₂-bucketed duration distribution with
//!   p50/p95/p99/max readout; feed it via [`LatencyHistogram::record_ns`] or
//!   the RAII [`SpanTimer`] guard from [`LatencyHistogram::start`].
//! * [`Registry`] — names and owns the metric cells, and snapshots everything
//!   into a serializable [`TelemetrySnapshot`].
//! * [`TelemetrySnapshot`] — a point-in-time copy with JSON
//!   ([`TelemetrySnapshot::to_json`]), Prometheus-style text exposition
//!   ([`TelemetrySnapshot::to_prometheus`]), and a human-readable table
//!   ([`TelemetrySnapshot::render_table`]).
//!
//! ```
//! use hdldp_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let reports = registry.counter("ingest_reports_total");
//! let latency = registry.histogram("ingest_batch_flush_ns");
//!
//! reports.add(256);
//! {
//!     let _timer = latency.start(); // records on drop
//! }
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("ingest_reports_total"), Some(256));
//! assert!(snapshot.to_prometheus().contains("ingest_reports_total 256"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod histogram;
pub mod metrics;
pub mod registry;
pub mod snapshot;

pub use histogram::{LatencyHistogram, SpanTimer};
pub use metrics::{Counter, Gauge};
pub use registry::Registry;
pub use snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, TelemetrySnapshot};
