//! Scalar metric primitives: atomic counters and gauges.
//!
//! Both types are cheap cloneable *handles*: clones share one atomic cell, so
//! an instrumented component can hand copies to worker threads freely. A
//! handle obtained from a [`crate::Registry::disabled`] registry carries no
//! cell at all — every operation on it is a single predictable branch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared storage behind a [`Counter`] handle.
#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    pub(crate) fn load(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing event counter.
///
/// Increments are relaxed atomic adds: lock-free, allocation-free, and safe to
/// call from any number of threads concurrently. The counter saturates only at
/// `u64::MAX` (wrap-around is never a practical concern for event counts).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// A handle that records nothing (what disabled registries hand out).
    pub fn noop() -> Self {
        Self { cell: None }
    }

    pub(crate) fn live(cell: Arc<CounterCell>) -> Self {
        Self { cell: Some(cell) }
    }

    /// `true` when increments are actually recorded somewhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    // hot-path: one relaxed fetch_add on the counter cell
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count (0 for a no-op handle).
    pub fn value(&self) -> u64 {
        self.cell.as_ref().map_or(0, |cell| cell.load())
    }
}

/// The shared storage behind a [`Gauge`] handle ( `f64` bits in an atomic ).
#[derive(Debug)]
pub(crate) struct GaugeCell {
    bits: AtomicU64,
}

impl Default for GaugeCell {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl GaugeCell {
    pub(crate) fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// An instantaneous `f64` value: phase durations, shard skew, queue depths.
///
/// Stores the value's bit pattern in one atomic word, so a concurrent
/// [`Gauge::set`] / read pair can never observe a torn value.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// A handle that records nothing (what disabled registries hand out).
    pub fn noop() -> Self {
        Self { cell: None }
    }

    pub(crate) fn live(cell: Arc<GaugeCell>) -> Self {
        Self { cell: Some(cell) }
    }

    /// `true` when sets are actually recorded somewhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Overwrite the gauge with `value`.
    // hot-path: one relaxed store of the value's bit pattern
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current value (0.0 for a no-op handle).
    pub fn value(&self) -> f64 {
        self.cell.as_ref().map_or(0.0, |cell| cell.load())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_counter_records_nothing() {
        let c = Counter::noop();
        assert!(!c.is_enabled());
        c.inc();
        c.add(100);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn live_counter_accumulates_across_clones() {
        let c = Counter::live(Arc::new(CounterCell::default()));
        assert!(c.is_enabled());
        let c2 = c.clone();
        c.inc();
        c2.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c2.value(), 10);
    }

    #[test]
    fn noop_gauge_records_nothing() {
        let g = Gauge::noop();
        assert!(!g.is_enabled());
        g.set(3.5);
        assert_eq!(g.value(), 0.0);
    }

    #[test]
    fn live_gauge_overwrites() {
        let g = Gauge::live(Arc::new(GaugeCell::default()));
        assert_eq!(g.value(), 0.0);
        g.set(-2.25);
        assert_eq!(g.value(), -2.25);
        g.clone().set(7.0);
        assert_eq!(g.value(), 7.0);
    }
}
