//! The metric registry: names metrics, owns their cells, snapshots them.
//!
//! Registration takes a lock (a `BTreeMap` insert — a setup-time cost, not a
//! per-report one); recording through the returned handles is lock-free. The
//! registry is a cheap cloneable handle itself, so one registry can be shared
//! across the engine, the pipeline and the re-calibrator of a run.

use crate::histogram::{HistogramCell, LatencyHistogram};
use crate::metrics::{Counter, CounterCell, Gauge, GaugeCell};
use crate::snapshot::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The shared state of an enabled registry.
#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

/// Lock a registry map, recovering from poisoning instead of panicking.
///
/// A poisoned lock means some thread panicked while registering; the maps
/// are structurally valid at every await-free point inside the guard (an
/// insert either happened or did not), so continuing is sound and keeps
/// telemetry from turning an unrelated panic into a second one.
fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Names and owns metrics, and snapshots them into a [`TelemetrySnapshot`].
///
/// * [`Registry::new`] — an enabled registry: handles it returns record into
///   shared atomic cells, deduplicated by name (registering the same name
///   twice returns handles to the same cell).
/// * [`Registry::disabled`] — the no-op registry: every returned handle is
///   inert, registration allocates nothing, and
///   [`Registry::snapshot`] is empty. Instrumented components take a
///   `&Registry` unconditionally and stay zero-cost when handed this one.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Default for Registry {
    /// An enabled registry (same as [`Registry::new`]).
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Create an enabled registry.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// Create the no-op registry: handles record nothing, registration
    /// allocates nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// `true` when handles returned by this registry actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or look up) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::noop(),
            Some(inner) => {
                let mut counters = recover(&inner.counters);
                let cell = counters
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(CounterCell::default()));
                Counter::live(Arc::clone(cell))
            }
        }
    }

    /// Register (or look up) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::noop(),
            Some(inner) => {
                let mut gauges = recover(&inner.gauges);
                let cell = gauges
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(GaugeCell::default()));
                Gauge::live(Arc::clone(cell))
            }
        }
    }

    /// Register (or look up) the latency histogram `name`.
    pub fn histogram(&self, name: &str) -> LatencyHistogram {
        match &self.inner {
            None => LatencyHistogram::noop(),
            Some(inner) => {
                let mut histograms = recover(&inner.histograms);
                let cell = histograms
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCell::default()));
                LatencyHistogram::live(Arc::clone(cell))
            }
        }
    }

    /// Copy every metric into a point-in-time [`TelemetrySnapshot`], sorted by
    /// metric name.
    ///
    /// Values are read with individually atomic loads, so a snapshot taken
    /// while writers are recording is never torn — it is simply a valid state
    /// somewhere between "before" and "after" the in-flight updates. A
    /// disabled registry snapshots to the empty snapshot without allocating.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else {
            return TelemetrySnapshot::empty();
        };
        let counters = recover(&inner.counters)
            .iter()
            .map(|(name, cell)| crate::CounterSnapshot {
                name: name.clone(),
                value: cell.load(),
            })
            .collect();
        let gauges = recover(&inner.gauges)
            .iter()
            .map(|(name, cell)| crate::GaugeSnapshot {
                name: name.clone(),
                value: cell.load(),
            })
            .collect();
        let histograms = recover(&inner.histograms)
            .iter()
            .map(|(name, cell)| cell.summarize(name))
            .collect();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_hands_out_noop_handles() {
        let registry = Registry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("a");
        let g = registry.gauge("b");
        let h = registry.histogram("c");
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        c.inc();
        g.set(1.0);
        h.record_ns(5);
        let snapshot = registry.snapshot();
        assert!(snapshot.is_empty());
    }

    #[test]
    fn registration_deduplicates_by_name() {
        let registry = Registry::new();
        let a = registry.counter("shared");
        let b = registry.counter("shared");
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("shared"), Some(3));
        assert_eq!(snapshot.counters.len(), 1);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let registry = Registry::new();
        registry.counter("zeta");
        registry.counter("alpha");
        registry.counter("mid");
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn snapshot_covers_all_metric_kinds() {
        let registry = Registry::new();
        registry.counter("events").add(7);
        registry.gauge("phase_secs").set(1.5);
        let h = registry.histogram("latency_ns");
        h.record_ns(100);
        h.record_ns(200);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("events"), Some(7));
        assert_eq!(snapshot.gauge("phase_secs"), Some(1.5));
        let hist = snapshot.histogram("latency_ns").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum_ns, 300);
        assert_eq!(hist.max_ns, 200);
    }
}
