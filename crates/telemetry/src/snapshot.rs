//! Point-in-time metric snapshots and their export formats.
//!
//! A [`TelemetrySnapshot`] is a plain serializable value detached from the
//! live atomics: safe to ship across threads, write to disk, or diff between
//! two points of a run. Three export formats are provided:
//!
//! * [`TelemetrySnapshot::to_json`] — machine-readable (the `results/
//!   telemetry_*.json` files the bench binaries write);
//! * [`TelemetrySnapshot::to_prometheus`] — Prometheus text exposition
//!   (counters, gauges, and histograms as summaries with quantile labels);
//! * [`TelemetrySnapshot::render_table`] — an aligned human-readable table
//!   for terminal output.

use serde::{Deserialize, Serialize};

/// One counter's point-in-time value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge's point-in-time value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// One latency histogram's point-in-time summary.
///
/// Quantiles are read off the log₂ buckets, so they carry at most 2×
/// resolution error and are clamped to the exact observed maximum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of all recorded durations, in nanoseconds.
    pub sum_ns: u64,
    /// Mean recorded duration, in nanoseconds (0 when empty).
    pub mean_ns: f64,
    /// Median duration estimate, in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile duration estimate, in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile duration estimate, in nanoseconds.
    pub p99_ns: u64,
    /// Exact largest recorded duration, in nanoseconds.
    pub max_ns: u64,
}

/// A point-in-time copy of every metric in a [`crate::Registry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All latency histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Format a nanosecond quantity with a human-friendly unit.
pub fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Map a metric name onto the Prometheus name charset (`[a-zA-Z0-9_:]`).
fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl TelemetrySnapshot {
    /// The snapshot with no metrics (what disabled registries produce).
    pub fn empty() -> Self {
        Self {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// `true` when no metric of any kind is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Look up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialize to pretty-printed JSON.
    ///
    /// # Errors
    /// Propagates serializer errors (cannot happen for this tree shape).
    pub fn to_json(&self) -> Result<String, serde::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Render in the Prometheus text exposition format: counters and gauges
    /// as single samples, histograms as summaries with `quantile` labels plus
    /// `_sum`/`_count`/`_max` samples.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let name = prometheus_name(&c.name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
        }
        for g in &self.gauges {
            let name = prometheus_name(&g.name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
        }
        for h in &self.histograms {
            let name = prometheus_name(&h.name);
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [("0.5", h.p50_ns), ("0.95", h.p95_ns), ("0.99", h.p99_ns)] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum_ns));
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_max {}\n", h.max_ns));
        }
        out
    }

    /// Render an aligned, human-readable table of every metric.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let name_width = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(self.gauges.iter().map(|g| g.name.len()))
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(6)
            .max("metric".len());

        if !self.counters.is_empty() {
            out.push_str(&format!("{:<name_width$}  {:>14}\n", "counter", "value"));
            out.push_str(&"-".repeat(name_width + 16));
            out.push('\n');
            for c in &self.counters {
                out.push_str(&format!("{:<name_width$}  {:>14}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{:<name_width$}  {:>14}\n", "gauge", "value"));
            out.push_str(&"-".repeat(name_width + 16));
            out.push('\n');
            for g in &self.gauges {
                out.push_str(&format!("{:<name_width$}  {:>14.6}\n", g.name, g.value));
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<name_width$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                "histogram", "count", "mean", "p50", "p95", "p99", "max"
            ));
            out.push_str(&"-".repeat(name_width + 74));
            out.push('\n');
            for h in &self.histograms {
                out.push_str(&format!(
                    "{:<name_width$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                    h.name,
                    h.count,
                    format_ns(h.mean_ns),
                    format_ns(h.p50_ns as f64),
                    format_ns(h.p95_ns as f64),
                    format_ns(h.p99_ns as f64),
                    format_ns(h.max_ns as f64),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: vec![CounterSnapshot {
                name: "ingest_reports_total".into(),
                value: 1_000_000,
            }],
            gauges: vec![GaugeSnapshot {
                name: "phase_ingest_seconds".into(),
                value: 0.53,
            }],
            histograms: vec![HistogramSnapshot {
                name: "ingest_batch_flush_ns".into(),
                count: 3906,
                sum_ns: 3_906_000,
                mean_ns: 1000.0,
                p50_ns: 1023,
                p95_ns: 2047,
                p99_ns: 4095,
                max_ns: 3200,
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let snapshot = sample();
        let json = snapshot.to_json().unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn lookup_helpers_find_by_name() {
        let snapshot = sample();
        assert_eq!(snapshot.counter("ingest_reports_total"), Some(1_000_000));
        assert_eq!(snapshot.counter("missing"), None);
        assert_eq!(snapshot.gauge("phase_ingest_seconds"), Some(0.53));
        assert_eq!(
            snapshot.histogram("ingest_batch_flush_ns").unwrap().count,
            3906
        );
        assert!(!snapshot.is_empty());
        assert!(TelemetrySnapshot::empty().is_empty());
    }

    #[test]
    fn prometheus_exposition_has_types_and_quantiles() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE ingest_reports_total counter"));
        assert!(text.contains("ingest_reports_total 1000000"));
        assert!(text.contains("# TYPE phase_ingest_seconds gauge"));
        assert!(text.contains("# TYPE ingest_batch_flush_ns summary"));
        assert!(text.contains("ingest_batch_flush_ns{quantile=\"0.5\"} 1023"));
        assert!(text.contains("ingest_batch_flush_ns_count 3906"));
        assert!(text.contains("ingest_batch_flush_ns_max 3200"));
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        let mut snapshot = sample();
        snapshot.counters[0].name = "weird name-with.dots".into();
        assert!(snapshot.to_prometheus().contains("weird_name_with_dots"));
    }

    #[test]
    fn table_lists_every_metric() {
        let table = sample().render_table();
        assert!(table.contains("ingest_reports_total"));
        assert!(table.contains("phase_ingest_seconds"));
        assert!(table.contains("ingest_batch_flush_ns"));
        assert!(table.contains("p95"));
        assert!(table.contains("1.00us"), "{table}");
        assert!(TelemetrySnapshot::empty()
            .render_table()
            .contains("no metrics"));
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert_eq!(format_ns(12.0), "12ns");
        assert_eq!(format_ns(1_500.0), "1.50us");
        assert_eq!(format_ns(2_500_000.0), "2.50ms");
        assert_eq!(format_ns(3_200_000_000.0), "3.20s");
    }
}
