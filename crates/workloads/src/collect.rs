//! Oracle collection pipeline over the sharded ingest engine.
//!
//! [`OraclePipeline`] runs one categorical dimension end-to-end: every user's
//! value is perturbed by a [`CategoricalOracle`] into calibrated one-hot
//! entries (one per category) and routed through the sharded
//! [`IngestEngine`] exactly like the numeric million-user path. Because the
//! calibrated entries are unbiased, the engine's per-category means *are* the
//! oracle's frequency estimates — no separate aggregation step.
//!
//! Per-user randomness is derived deterministically from a run seed and the
//! user id, so a fixed seed reproduces the same estimate bit-for-bit; the
//! shard count is part of the pipeline configuration (default 4) because the
//! merge-on-read summation order, and hence the floating-point result, depends
//! on it.

use crate::telemetry::WorkloadMetrics;
use crate::{CategoricalOracle, OracleEntryMechanism, OracleKind, Result, WorkloadError};
use hdldp_protocol::{FrequencyEstimate, IngestConfig, IngestEngine};
use hdldp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mix a run seed and a user id into an independent per-user RNG seed
/// (splitmix-style odd-constant multiply so consecutive users decorrelate).
pub(crate) fn user_seed(seed: u64, user_id: u64) -> u64 {
    seed.wrapping_add((user_id + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// End-to-end frequency-oracle collection for one categorical dimension.
#[derive(Debug, Clone)]
pub struct OraclePipeline {
    oracle: CategoricalOracle,
    seed: u64,
    ingest: IngestConfig,
    registry: Registry,
    metrics: WorkloadMetrics,
}

impl OraclePipeline {
    /// Create a pipeline with telemetry disabled.
    ///
    /// # Errors
    /// Returns [`WorkloadError::InvalidConfig`] for invalid oracle parameters
    /// (see [`CategoricalOracle::new`]).
    pub fn new(kind: OracleKind, categories: usize, epsilon: f64, seed: u64) -> Result<Self> {
        Self::with_telemetry(kind, categories, epsilon, seed, &Registry::disabled())
    }

    /// Create a pipeline that records runtime metrics into `registry` (the
    /// workload metrics of [`crate::telemetry`] plus the ingest engine's own
    /// `ingest_*` metrics).
    ///
    /// # Errors
    /// Same conditions as [`OraclePipeline::new`].
    pub fn with_telemetry(
        kind: OracleKind,
        categories: usize,
        epsilon: f64,
        seed: u64,
        registry: &Registry,
    ) -> Result<Self> {
        let oracle = CategoricalOracle::new(kind, categories, epsilon)?;
        let ingest = IngestConfig::new(4, 256).map_err(WorkloadError::Protocol)?;
        Ok(Self {
            oracle,
            seed,
            ingest,
            registry: registry.clone(),
            metrics: WorkloadMetrics::register(registry),
        })
    }

    /// Override the sharded-ingest configuration (shard count and batch
    /// capacity). The default is 4 shards × 256 reports.
    pub fn with_ingest_config(mut self, config: IngestConfig) -> Self {
        self.ingest = config;
        self
    }

    /// The configured oracle.
    pub fn oracle(&self) -> &CategoricalOracle {
        &self.oracle
    }

    /// The per-entry mechanism the estimate is produced with; pass this to
    /// [`hdldp_core::Hdr4me::recalibrate_frequencies`].
    pub fn mechanism(&self) -> OracleEntryMechanism {
        self.oracle.entry_mechanism()
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Collect `values` (one categorical value in `[0, k)` per user) and
    /// estimate the category frequencies.
    ///
    /// # Errors
    /// Returns [`WorkloadError::ValueOutOfDomain`] when a value is `>= k`,
    /// [`WorkloadError::InvalidConfig`] when `values` is empty, and propagates
    /// engine errors.
    pub fn run(&self, values: &[usize]) -> Result<FrequencyEstimate> {
        if values.is_empty() {
            return Err(WorkloadError::InvalidConfig {
                name: "values",
                reason: "cannot estimate frequencies from zero users".into(),
            });
        }
        let k = self.oracle.categories();
        if let Some(&bad) = values.iter().find(|&&v| v >= k) {
            return Err(WorkloadError::ValueOutOfDomain {
                value: bad,
                categories: k,
            });
        }
        self.metrics.runs.inc();
        self.metrics.reports.add(values.len() as u64);

        let mut engine = IngestEngine::with_telemetry(k, self.ingest, &self.registry)
            .map_err(WorkloadError::Protocol)?;
        let oracle = self.oracle;
        let seed = self.seed;
        {
            let _timer = self.metrics.collect_ns.start();
            engine
                .ingest_partitioned(0..values.len() as u64, |user_id, scratch| {
                    let mut rng = StdRng::seed_from_u64(user_seed(seed, user_id));
                    // The engine hands back ids from the 0..values.len()
                    // range it was given, and values were domain-checked
                    // above, so both failure paths stay cold errors instead
                    // of panics.
                    let value = values.get(user_id as usize).copied().ok_or_else(|| {
                        hdldp_protocol::ProtocolError::InvalidConfig {
                            name: "user_id",
                            reason: format!("user {user_id} outside 0..{}", values.len()),
                        }
                    })?;
                    oracle.perturb_into(value, &mut rng, scratch).map_err(|e| {
                        hdldp_protocol::ProtocolError::InvalidConfig {
                            name: "oracle",
                            reason: e.to_string(),
                        }
                    })?;
                    Ok(())
                })
                .map_err(WorkloadError::Protocol)?;
        }

        let _timer = self.metrics.estimate_ns.start();
        let estimated = engine.estimated_means().map_err(WorkloadError::Protocol)?;
        let mut truth = vec![0.0f64; k];
        for &v in values {
            // v < k was checked on entry; get_mut keeps the tally panic-free.
            if let Some(t) = truth.get_mut(v) {
                *t += 1.0;
            }
        }
        let n = values.len() as f64;
        for t in &mut truth {
            *t /= n;
        }
        Ok(FrequencyEstimate {
            estimated: vec![estimated],
            true_frequencies: vec![truth],
            report_counts: vec![values.len() as u64],
            per_entry_epsilon: self.oracle.epsilon(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdldp_core::Hdr4me;

    fn planted_values(n: usize, truth: &[f64], seed: u64) -> Vec<usize> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                let mut acc = 0.0;
                for (i, w) in truth.iter().enumerate() {
                    acc += w;
                    if u < acc {
                        return i;
                    }
                }
                truth.len() - 1
            })
            .collect()
    }

    #[test]
    fn run_recovers_planted_frequencies() {
        let truth = [0.4, 0.3, 0.2, 0.1];
        let values = planted_values(40_000, &truth, 17);
        for kind in OracleKind::ALL {
            let pipeline = OraclePipeline::new(kind, truth.len(), 2.0, 99).unwrap();
            let estimate = pipeline.run(&values).unwrap();
            assert_eq!(estimate.report_counts, vec![values.len() as u64]);
            for (j, &f) in truth.iter().enumerate() {
                let sd = (pipeline.oracle().per_report_variance(f) / values.len() as f64).sqrt();
                let err = (estimate.estimated[0][j] - estimate.true_frequencies[0][j]).abs();
                assert!(err < 6.0 * sd, "{kind:?} category {j}: err {err}, sd {sd}");
            }
        }
    }

    #[test]
    fn fixed_seed_is_bit_deterministic() {
        let values = planted_values(5_000, &[0.5, 0.3, 0.2], 3);
        let pipeline = OraclePipeline::new(OracleKind::Oue, 3, 1.0, 42).unwrap();
        let a = pipeline.run(&values).unwrap();
        let b = pipeline.run(&values).unwrap();
        assert_eq!(a.estimated, b.estimated);
        // A different seed gives a different perturbation.
        let other = OraclePipeline::new(OracleKind::Oue, 3, 1.0, 43).unwrap();
        assert_ne!(a.estimated, other.run(&values).unwrap().estimated);
    }

    #[test]
    fn rejects_out_of_domain_values_and_empty_input() {
        let pipeline = OraclePipeline::new(OracleKind::Grr, 4, 1.0, 1).unwrap();
        assert!(matches!(
            pipeline.run(&[0, 1, 4]).unwrap_err(),
            WorkloadError::ValueOutOfDomain { value: 4, .. }
        ));
        assert!(pipeline.run(&[]).is_err());
    }

    #[test]
    fn estimate_plugs_into_hdr4me_recalibration() {
        let truth = [0.6, 0.2, 0.1, 0.05, 0.05];
        let values = planted_values(8_000, &truth, 7);
        let pipeline = OraclePipeline::new(OracleKind::Grr, truth.len(), 0.5, 21).unwrap();
        let estimate = pipeline.run(&values).unwrap();
        let result = Hdr4me::l1()
            .recalibrate_frequencies(&estimate, 0, &pipeline.mechanism())
            .unwrap();
        let total: f64 = result.enhanced.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(result.enhanced.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn telemetry_records_runs_and_reports() {
        let registry = Registry::new();
        let values = planted_values(1_000, &[0.7, 0.3], 5);
        let pipeline = OraclePipeline::with_telemetry(OracleKind::Oue, 2, 1.0, 8, &registry)
            .unwrap()
            .with_ingest_config(IngestConfig::new(2, 64).unwrap());
        pipeline.run(&values).unwrap();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("workload_runs_total"), Some(1));
        assert_eq!(snapshot.counter("workload_reports_total"), Some(1_000));
        // The sharded engine's own metrics are wired through too.
        assert!(snapshot.counter("ingest_reports_total").unwrap_or(0) > 0);
    }
}
