//! Error type for the workloads layer.

use std::fmt;

/// Errors produced by the workloads crate.
#[derive(Debug)]
pub enum WorkloadError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// A categorical value lies outside the oracle's domain.
    ValueOutOfDomain {
        /// The offending value.
        value: usize,
        /// The oracle's category count `k`.
        categories: usize,
    },
    /// An error bubbled up from the collection protocol.
    Protocol(hdldp_protocol::ProtocolError),
    /// An error bubbled up from the HDR4ME re-calibration core.
    Core(hdldp_core::CoreError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig { name, reason } => {
                write!(f, "invalid workload configuration `{name}`: {reason}")
            }
            WorkloadError::ValueOutOfDomain { value, categories } => {
                write!(
                    f,
                    "categorical value {value} outside the oracle domain [0, {categories})"
                )
            }
            WorkloadError::Protocol(e) => write!(f, "protocol error: {e}"),
            WorkloadError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Protocol(e) => Some(e),
            WorkloadError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdldp_protocol::ProtocolError> for WorkloadError {
    fn from(e: hdldp_protocol::ProtocolError) -> Self {
        WorkloadError::Protocol(e)
    }
}

impl From<hdldp_core::CoreError> for WorkloadError {
    fn from(e: hdldp_core::CoreError) -> Self {
        WorkloadError::Core(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WorkloadError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WorkloadError::InvalidConfig {
            name: "epsilon",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("epsilon"));
        let e = WorkloadError::ValueOutOfDomain {
            value: 9,
            categories: 4,
        };
        assert!(e.to_string().contains("[0, 4)"));
    }

    #[test]
    fn conversions_preserve_sources() {
        use std::error::Error;
        let p: WorkloadError =
            hdldp_protocol::ProtocolError::EmptyDimension { dimension: 3 }.into();
        assert!(p.source().is_some());
        let c: WorkloadError = hdldp_core::CoreError::LengthMismatch {
            expected: 2,
            actual: 1,
        }
        .into();
        assert!(c.source().is_some());
    }
}
