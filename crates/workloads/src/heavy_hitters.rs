//! Heavy-hitter identification over frequency-oracle estimates.
//!
//! The detector runs the full categorical pipeline ([`OraclePipeline`]),
//! optionally re-calibrates the estimated frequencies with HDR4ME
//! ([`Hdr4me::recalibrate_frequencies`]) — shrinking the noise floor before
//! any selection happens — and then selects heavy categories by top-`k` or by
//! a frequency threshold. Utility is reported as precision/recall/F1 against
//! the empirical ground truth.

use crate::collect::OraclePipeline;
use crate::{OracleKind, Result, WorkloadError};
use hdldp_core::{Hdr4me, Hdr4meConfig, LambdaSelector, Regularization};
use hdldp_protocol::FrequencyEstimate;
use hdldp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How heavy categories are selected from the frequency estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionRule {
    /// The `k` categories with the largest estimated frequencies.
    TopK(usize),
    /// Every category whose estimated frequency is at least the threshold.
    Threshold(f64),
}

/// Configuration of a heavy-hitter run.
#[derive(Debug, Clone, Copy)]
pub struct HeavyHitterConfig {
    /// The frequency-oracle family.
    pub kind: OracleKind,
    /// Number of categories `k` in the domain.
    pub categories: usize,
    /// Report-level privacy budget `ε`.
    pub epsilon: f64,
    /// Run seed for the deterministic per-user perturbation.
    pub seed: u64,
    /// The selection rule.
    pub rule: SelectionRule,
    /// `Some(reg)` re-calibrates the estimates with HDR4ME before selection;
    /// `None` selects on the raw (clip + renormalize) estimates.
    pub recalibration: Option<Regularization>,
    /// The deviation-supremum quantile `z` for the HDR4ME `λ*` weights
    /// (`λ = |δ| + z·σ`). Frequency vectors are sparse, so the default of 1
    /// thresholds at one estimator standard deviation; HDR4ME's own default
    /// of 3 is tuned for dense numeric means. Ignored when `recalibration`
    /// is `None`.
    pub supremum_z: f64,
}

/// The outcome of one heavy-hitter identification run.
#[derive(Debug, Clone)]
pub struct HeavyHitterReport {
    /// Selected categories, ordered by estimated frequency (descending).
    pub selected: Vec<usize>,
    /// The post-processed frequencies the selection ran on (a distribution).
    pub frequencies: Vec<f64>,
    /// The raw pipeline estimate (pre-selection, pre-consistency).
    pub estimate: FrequencyEstimate,
}

/// Precision/recall of a selected set against a ground-truth set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// `|selected ∩ truth| / |selected|` (1.0 for an empty selection).
    pub precision: f64,
    /// `|selected ∩ truth| / |truth|` (1.0 for an empty truth set).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub f1: f64,
}

/// Compare a selected category set against ground truth.
pub fn precision_recall(selected: &[usize], truth: &[usize]) -> PrecisionRecall {
    let hits = selected.iter().filter(|s| truth.contains(s)).count() as f64;
    let precision = if selected.is_empty() {
        1.0
    } else {
        hits / selected.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        hits / truth.len() as f64
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    PrecisionRecall {
        precision,
        recall,
        f1,
    }
}

/// The empirical top-`k` categories of a value sample (ties broken towards
/// the lower category index), for use as selection ground truth.
pub fn empirical_top_k(values: &[usize], categories: usize, k: usize) -> Vec<usize> {
    let mut counts = vec![0u64; categories];
    for &v in values {
        if let Some(c) = counts.get_mut(v) {
            *c += 1;
        }
    }
    let mut order: Vec<usize> = (0..categories).collect();
    // lint:allow(no-panic-in-lib) a and b come from 0..categories == counts.len(), so both lookups are in range
    order.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
    order.truncate(k.min(categories));
    order
}

/// Generate a planted heavy-hitter sample: `heavy` categories share
/// `heavy_mass` of the probability Zipf-style (weight `1/(i+1)`), the rest is
/// uniform over the remaining categories. The heavy categories are spread
/// across the domain (`i * categories / heavy`) so selection cannot succeed
/// by index bias.
///
/// # Errors
/// Returns [`WorkloadError::InvalidConfig`] when `heavy` is zero or not less
/// than `categories`, or `heavy_mass` is outside `(0, 1)`.
pub fn planted_dataset(
    users: usize,
    categories: usize,
    heavy: usize,
    heavy_mass: f64,
    seed: u64,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if heavy == 0 || heavy >= categories {
        return Err(WorkloadError::InvalidConfig {
            name: "heavy",
            reason: format!("need 0 < heavy < categories, got {heavy} of {categories}"),
        });
    }
    if !(heavy_mass > 0.0 && heavy_mass < 1.0) {
        return Err(WorkloadError::InvalidConfig {
            name: "heavy_mass",
            reason: format!("must lie in (0, 1), got {heavy_mass}"),
        });
    }
    let heavy_ids: Vec<usize> = (0..heavy).map(|i| i * categories / heavy).collect();
    let mut weights = vec![(1.0 - heavy_mass) / (categories - heavy) as f64; categories];
    let zipf_total: f64 = (0..heavy).map(|i| 1.0 / (i + 1) as f64).sum();
    for (i, &id) in heavy_ids.iter().enumerate() {
        // id = i * categories / heavy <= (heavy-1) * categories / heavy,
        // which is < categories; get_mut documents the bound without a
        // panicking index.
        if let Some(w) = weights.get_mut(id) {
            *w = heavy_mass / ((i + 1) as f64 * zipf_total);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let values = (0..users)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            let mut acc = 0.0;
            for (j, w) in weights.iter().enumerate() {
                acc += w;
                if u < acc {
                    return j;
                }
            }
            categories - 1
        })
        .collect();
    Ok((values, heavy_ids))
}

/// Heavy-hitter identification over one categorical dimension.
#[derive(Debug, Clone)]
pub struct HeavyHitterDetector {
    config: HeavyHitterConfig,
    pipeline: OraclePipeline,
    metrics: crate::telemetry::WorkloadMetrics,
}

impl HeavyHitterDetector {
    /// Create a detector with telemetry disabled.
    ///
    /// # Errors
    /// Returns [`WorkloadError::InvalidConfig`] for invalid oracle parameters
    /// or a degenerate selection rule (`TopK(0)`, non-finite threshold).
    pub fn new(config: HeavyHitterConfig) -> Result<Self> {
        Self::with_telemetry(config, &Registry::disabled())
    }

    /// Create a detector that records runtime metrics into `registry`.
    ///
    /// # Errors
    /// Same conditions as [`HeavyHitterDetector::new`].
    pub fn with_telemetry(config: HeavyHitterConfig, registry: &Registry) -> Result<Self> {
        match config.rule {
            SelectionRule::TopK(0) => {
                return Err(WorkloadError::InvalidConfig {
                    name: "rule",
                    reason: "top-k selection needs k >= 1".into(),
                })
            }
            SelectionRule::Threshold(t) if !t.is_finite() => {
                return Err(WorkloadError::InvalidConfig {
                    name: "rule",
                    reason: format!("threshold must be finite, got {t}"),
                })
            }
            _ => {}
        }
        if !(config.supremum_z.is_finite() && config.supremum_z > 0.0) {
            return Err(WorkloadError::InvalidConfig {
                name: "supremum_z",
                reason: format!("must be positive and finite, got {}", config.supremum_z),
            });
        }
        let pipeline = OraclePipeline::with_telemetry(
            config.kind,
            config.categories,
            config.epsilon,
            config.seed,
            registry,
        )?;
        Ok(Self {
            config,
            pipeline,
            metrics: crate::telemetry::WorkloadMetrics::register(registry),
        })
    }

    /// The configuration this detector runs with.
    pub fn config(&self) -> &HeavyHitterConfig {
        &self.config
    }

    /// Run the pipeline on `values` and identify the heavy categories.
    ///
    /// # Errors
    /// Propagates pipeline errors and HDR4ME re-calibration errors.
    pub fn identify(&self, values: &[usize]) -> Result<HeavyHitterReport> {
        let estimate = self.pipeline.run(values)?;
        let frequencies = match self.config.recalibration {
            Some(reg) => {
                let _timer = self.metrics.recalibrate_ns.start();
                let lambda = LambdaSelector::new(self.config.supremum_z, 0.05)
                    .map_err(WorkloadError::Core)?;
                let hdr = Hdr4me::new(Hdr4meConfig {
                    regularization: reg,
                    lambda,
                });
                hdr.recalibrate_frequencies(&estimate, 0, &self.pipeline.mechanism())?
                    .enhanced
            }
            None => estimate.normalized(0),
        };

        let mut order: Vec<usize> = (0..frequencies.len()).collect();
        // Post-processed frequencies are finite; total_cmp gives the same
        // descending order without a panicking unwrap on the comparison.
        order.sort_by(|&a, &b| frequencies[b].total_cmp(&frequencies[a]).then(a.cmp(&b)));
        let selected = match self.config.rule {
            SelectionRule::TopK(k) => {
                let mut top = order;
                top.truncate(k.min(frequencies.len()));
                top
            }
            SelectionRule::Threshold(t) => {
                order.into_iter().filter(|&j| frequencies[j] >= t).collect()
            }
        };
        Ok(HeavyHitterReport {
            selected,
            frequencies,
            estimate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_recall_counts_overlap() {
        let pr = precision_recall(&[1, 2, 3, 4], &[2, 4, 6, 8]);
        assert!((pr.precision - 0.5).abs() < 1e-12);
        assert!((pr.recall - 0.5).abs() < 1e-12);
        assert!((pr.f1 - 0.5).abs() < 1e-12);
        let empty = precision_recall(&[], &[]);
        assert_eq!(empty.precision, 1.0);
        assert_eq!(empty.recall, 1.0);
        let miss = precision_recall(&[1], &[2]);
        assert_eq!(miss.f1, 0.0);
    }

    #[test]
    fn planted_dataset_concentrates_mass_on_heavies() {
        let (values, heavy_ids) = planted_dataset(30_000, 64, 8, 0.8, 3).unwrap();
        assert_eq!(heavy_ids.len(), 8);
        let heavy_count = values.iter().filter(|v| heavy_ids.contains(v)).count();
        let share = heavy_count as f64 / values.len() as f64;
        assert!((share - 0.8).abs() < 0.02, "heavy share = {share}");
        // Heavies are spread over the domain, not clustered at the front.
        assert!(heavy_ids.iter().any(|&id| id >= 32));
        assert!(planted_dataset(100, 10, 0, 0.8, 1).is_err());
        assert!(planted_dataset(100, 10, 10, 0.8, 1).is_err());
        assert!(planted_dataset(100, 10, 3, 1.5, 1).is_err());
    }

    #[test]
    fn empirical_top_k_matches_planted_heavies() {
        let (values, heavy_ids) = planted_dataset(50_000, 32, 5, 0.85, 11).unwrap();
        let top = empirical_top_k(&values, 32, 5);
        let pr = precision_recall(&top, &heavy_ids);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn config_validation_rejects_degenerate_rules() {
        let base = HeavyHitterConfig {
            kind: OracleKind::Grr,
            categories: 16,
            epsilon: 1.0,
            seed: 1,
            rule: SelectionRule::TopK(0),
            recalibration: None,
            supremum_z: 1.0,
        };
        assert!(HeavyHitterDetector::new(base).is_err());
        let bad_threshold = HeavyHitterConfig {
            rule: SelectionRule::Threshold(f64::NAN),
            ..base
        };
        assert!(HeavyHitterDetector::new(bad_threshold).is_err());
    }

    #[test]
    fn identifies_planted_heavies_at_moderate_scale() {
        let (values, heavy_ids) = planted_dataset(40_000, 32, 5, 0.85, 19).unwrap();
        for kind in OracleKind::ALL {
            for recalibration in [None, Some(Regularization::L1)] {
                let detector = HeavyHitterDetector::new(HeavyHitterConfig {
                    kind,
                    categories: 32,
                    epsilon: 4.0,
                    seed: 77,
                    rule: SelectionRule::TopK(5),
                    recalibration,
                    supremum_z: 1.0,
                })
                .unwrap();
                let report = detector.identify(&values).unwrap();
                assert_eq!(report.selected.len(), 5);
                let pr = precision_recall(&report.selected, &heavy_ids);
                assert!(
                    pr.recall >= 0.8,
                    "{kind:?} recal={recalibration:?}: recall {}",
                    pr.recall
                );
            }
        }
    }

    #[test]
    fn threshold_rule_selects_by_frequency_floor() {
        let (values, _) = planted_dataset(20_000, 16, 2, 0.7, 23).unwrap();
        let detector = HeavyHitterDetector::new(HeavyHitterConfig {
            kind: OracleKind::Oue,
            categories: 16,
            epsilon: 4.0,
            seed: 5,
            rule: SelectionRule::Threshold(0.15),
            recalibration: Some(Regularization::L2),
            supremum_z: 1.0,
        })
        .unwrap();
        let report = detector.identify(&values).unwrap();
        assert!(!report.selected.is_empty());
        for &j in &report.selected {
            assert!(report.frequencies[j] >= 0.15);
        }
        // Selected set is ordered by frequency, descending.
        for pair in report.selected.windows(2) {
            assert!(report.frequencies[pair[0]] >= report.frequencies[pair[1]]);
        }
    }
}
