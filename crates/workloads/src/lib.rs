//! # hdldp-workloads
//!
//! Multi-workload LDP analytics on a shared categorical-oracle base.
//!
//! The paper's §V-C frequency-estimation extension treats one categorical
//! dimension as a histogram-encoded mean-estimation problem; this crate
//! grows that seed into three query workloads:
//!
//! * **Frequency oracles** ([`CategoricalOracle`], [`OraclePipeline`]) — GRR
//!   and OUE with unbiased estimators and closed-form variance, collected
//!   through the sharded [`IngestEngine`](hdldp_protocol::IngestEngine) and
//!   exposed to the HDR4ME stack via an unbiased per-entry
//!   [`Mechanism`](hdldp_mechanisms::Mechanism) ([`OracleEntryMechanism`]).
//! * **Heavy hitters** ([`HeavyHitterDetector`]) — top-k / threshold
//!   selection over oracle estimates, optionally HDR4ME re-calibrated before
//!   selection, scored with precision/recall against ground truth.
//! * **Hierarchical range queries** ([`RangeWorkload`], [`RangeTree`]) — a
//!   dyadic-interval tree with per-level budget
//!   ([`BudgetSplit::per_level`](hdldp_protocol::BudgetSplit::per_level)) and
//!   Hay-style consistency post-processing so child sums match parents.
//!
//! All workloads are deterministic under a fixed seed, accept an optional
//! [`Registry`](hdldp_telemetry::Registry) for runtime metrics (see
//! [`telemetry`]), and reuse the protocol layer's sharded million-user
//! ingest path for collection.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod collect;
pub mod error;
pub mod heavy_hitters;
pub mod oracle;
pub mod range;
pub mod telemetry;

pub use collect::OraclePipeline;
pub use error::{Result, WorkloadError};
pub use heavy_hitters::{
    empirical_top_k, planted_dataset, precision_recall, HeavyHitterConfig, HeavyHitterDetector,
    HeavyHitterReport, PrecisionRecall, SelectionRule,
};
pub use oracle::{CategoricalOracle, OracleEntryMechanism, OracleKind};
pub use range::{true_range_frequency, RangeQueryConfig, RangeTree, RangeWorkload};
pub use telemetry::WorkloadMetrics;
