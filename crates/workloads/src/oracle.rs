//! Categorical frequency oracles: GRR and OUE.
//!
//! Both oracles perturb one categorical value `v ∈ [0, k)` and support an
//! unbiased estimator of every category frequency. The shared analytical core
//! is the *per-entry marginal*: writing `b_j = 1[report activates category j]`,
//! both oracles satisfy
//!
//! ```text
//!   P(b_j = 1 | v = j) = p,      P(b_j = 1 | v ≠ j) = q,      p > q,
//! ```
//!
//! with
//!
//! * **GRR** (generalized randomized response, the k-ary direct encoding):
//!   `p = e^ε / (e^ε + k − 1)`, `q = 1 / (e^ε + k − 1)` — one category is
//!   reported per user, so `b_j = 1[report = j]`.
//! * **OUE** (optimized unary encoding): `p = 1/2`, `q = 1 / (e^ε + 1)` —
//!   every bit of the one-hot encoding is flipped independently.
//!
//! The calibrated entry `(b_j − q)/(p − q)` therefore has expectation exactly
//! `1[v = j]`, which makes its per-user average an unbiased frequency
//! estimate with closed-form variance
//!
//! ```text
//!   Var = e(1 − e) / (p − q)²,      e = f·p + (1 − f)·q,
//! ```
//!
//! for true frequency `f`. [`CategoricalOracle::entry_mechanism`] packages
//! that marginal as an unbiased [`Mechanism`] on the one-hot entry domain
//! `[0, 1]`, so the existing estimation and HDR4ME re-calibration stack
//! ([`hdldp_core::Hdr4me::recalibrate_frequencies`]) applies unchanged.

use crate::{Result, WorkloadError};
use hdldp_mechanisms::{Bound, Mechanism};
use rand::{Rng, RngCore};

/// Identifier for the categorical frequency oracles shipped with this crate.
///
/// Deliberately separate from [`hdldp_mechanisms::MechanismKind`]: oracles
/// perturb categorical values, not numeric ones, and only their per-entry
/// marginal is a [`Mechanism`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Generalized randomized response (k-ary direct encoding).
    Grr,
    /// Optimized unary encoding (per-bit flipping of the one-hot vector).
    Oue,
}

impl OracleKind {
    /// Every kind, in a stable order.
    pub const ALL: [OracleKind; 2] = [OracleKind::Grr, OracleKind::Oue];

    /// Short lowercase name (stable; used for CLI flags and result files).
    pub fn name(&self) -> &'static str {
        match self {
            OracleKind::Grr => "grr",
            OracleKind::Oue => "oue",
        }
    }

    /// Parse a name produced by [`OracleKind::name`] (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "grr" | "rr" | "direct" => Some(OracleKind::Grr),
            "oue" | "unary" => Some(OracleKind::Oue),
            _ => None,
        }
    }
}

/// A configured categorical frequency oracle over `k` categories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoricalOracle {
    kind: OracleKind,
    categories: usize,
    epsilon: f64,
    p: f64,
    q: f64,
    high: f64,
    low: f64,
}

impl CategoricalOracle {
    /// Create an oracle.
    ///
    /// # Errors
    /// Returns [`WorkloadError::InvalidConfig`] when `categories < 2` or
    /// `epsilon` is not positive/finite.
    pub fn new(kind: OracleKind, categories: usize, epsilon: f64) -> Result<Self> {
        if categories < 2 {
            return Err(WorkloadError::InvalidConfig {
                name: "categories",
                reason: format!("an oracle needs at least 2 categories, got {categories}"),
            });
        }
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(WorkloadError::InvalidConfig {
                name: "epsilon",
                reason: format!("must be positive and finite, got {epsilon}"),
            });
        }
        let e_eps = epsilon.exp();
        let (p, q) = match kind {
            OracleKind::Grr => {
                let denom = e_eps + categories as f64 - 1.0;
                (e_eps / denom, 1.0 / denom)
            }
            OracleKind::Oue => (0.5, 1.0 / (e_eps + 1.0)),
        };
        let gap = p - q;
        Ok(Self {
            kind,
            categories,
            epsilon,
            p,
            q,
            high: (1.0 - q) / gap,
            low: -q / gap,
        })
    }

    /// The oracle family.
    pub fn kind(&self) -> OracleKind {
        self.kind
    }

    /// The category count `k`.
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// The report-level privacy budget `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// `P(b_j = 1 | v = j)` — the true-category activation probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// `P(b_j = 1 | v ≠ j)` — the false-category activation probability.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The calibrated value of an activated entry, `(1 − q)/(p − q)`.
    pub fn calibrated_one(&self) -> f64 {
        self.high
    }

    /// The calibrated value of an inactive entry, `−q/(p − q)`.
    pub fn calibrated_zero(&self) -> f64 {
        self.low
    }

    /// Variance of one user's calibrated entry for a category with true
    /// frequency `f`: `e(1 − e)/(p − q)²` with `e = f·p + (1 − f)·q`. The
    /// estimator over `n` users has variance `per_report_variance(f) / n`.
    pub fn per_report_variance(&self, f: f64) -> f64 {
        let f = f.clamp(0.0, 1.0);
        let e = f * self.p + (1.0 - f) * self.q;
        e * (1.0 - e) / ((self.p - self.q) * (self.p - self.q))
    }

    /// Perturb one categorical value into calibrated one-hot entries,
    /// appending `(category, calibrated_bit)` for **all** `k` categories to
    /// `out` (the dense layout the sharded ingest engine expects).
    ///
    /// # Errors
    /// Returns [`WorkloadError::ValueOutOfDomain`] when `value >= k`.
    pub fn perturb_into(
        &self,
        value: usize,
        rng: &mut dyn RngCore,
        out: &mut Vec<(usize, f64)>,
    ) -> Result<()> {
        if value >= self.categories {
            return Err(WorkloadError::ValueOutOfDomain {
                value,
                categories: self.categories,
            });
        }
        match self.kind {
            OracleKind::Grr => {
                let reported = self.grr_report(value, rng);
                for j in 0..self.categories {
                    out.push((j, if j == reported { self.high } else { self.low }));
                }
            }
            OracleKind::Oue => {
                for j in 0..self.categories {
                    let keep = if j == value { self.p } else { self.q };
                    let bit = rng.gen_bool(keep);
                    out.push((j, if bit { self.high } else { self.low }));
                }
            }
        }
        Ok(())
    }

    /// Perturb a batch of values into per-category activation counts — the
    /// count-based fast path (no calibration, no ingest routing) used by the
    /// benches and [`CategoricalOracle::estimate_from_counts`].
    ///
    /// # Errors
    /// Returns [`WorkloadError::ValueOutOfDomain`] on the first value `>= k`.
    pub fn accumulate_counts(
        &self,
        values: &[usize],
        rng: &mut dyn RngCore,
        counts: &mut [u64],
    ) -> Result<()> {
        debug_assert_eq!(counts.len(), self.categories);
        for &value in values {
            if value >= self.categories {
                return Err(WorkloadError::ValueOutOfDomain {
                    value,
                    categories: self.categories,
                });
            }
            match self.kind {
                OracleKind::Grr => counts[self.grr_report(value, rng)] += 1,
                OracleKind::Oue => {
                    for (j, slot) in counts.iter_mut().enumerate() {
                        let keep = if j == value { self.p } else { self.q };
                        if rng.gen_bool(keep) {
                            *slot += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Unbiased frequency estimates from activation counts over `n` reports:
    /// `f̂_j = (c_j/n − q)/(p − q)`.
    ///
    /// # Errors
    /// Returns [`WorkloadError::InvalidConfig`] when `n` is zero or the count
    /// vector length does not match `k`.
    pub fn estimate_from_counts(&self, counts: &[u64], n: u64) -> Result<Vec<f64>> {
        if n == 0 {
            return Err(WorkloadError::InvalidConfig {
                name: "reports",
                reason: "cannot estimate frequencies from zero reports".into(),
            });
        }
        if counts.len() != self.categories {
            return Err(WorkloadError::InvalidConfig {
                name: "counts",
                reason: format!(
                    "expected {} categories, got {}",
                    self.categories,
                    counts.len()
                ),
            });
        }
        let n = n as f64;
        let gap = self.p - self.q;
        Ok(counts
            .iter()
            .map(|&c| (c as f64 / n - self.q) / gap)
            .collect())
    }

    /// The per-entry marginal as an unbiased [`Mechanism`] on the one-hot
    /// entry domain `[0, 1]` — the bridge into
    /// [`hdldp_core::Hdr4me::recalibrate_frequencies`] and the deviation
    /// framework.
    pub fn entry_mechanism(&self) -> OracleEntryMechanism {
        OracleEntryMechanism { oracle: *self }
    }

    /// GRR's reported category: keep `value` w.p. `p`, else uniform over the
    /// other `k − 1` categories.
    fn grr_report(&self, value: usize, rng: &mut dyn RngCore) -> usize {
        if rng.gen_bool(self.p) {
            value
        } else {
            let other = rng.gen_range(0..self.categories - 1);
            if other >= value {
                other + 1
            } else {
                other
            }
        }
    }
}

/// The calibrated per-entry marginal of a [`CategoricalOracle`] as a
/// [`Mechanism`].
///
/// Input is one one-hot entry `t ∈ [0, 1]` (fractional inputs are treated as
/// Bernoulli parameters, which is what the deviation framework's expectation
/// over a `{0, 1}` value distribution needs); output is the calibrated bit
/// `(b − q)/(p − q) ∈ {low, high}`. The mechanism is unbiased:
/// `E[M(t)] = t` for every `t`.
#[derive(Debug, Clone, Copy)]
pub struct OracleEntryMechanism {
    oracle: CategoricalOracle,
}

impl OracleEntryMechanism {
    /// The oracle this marginal belongs to.
    pub fn oracle(&self) -> &CategoricalOracle {
        &self.oracle
    }

    /// Clamp an input onto the entry domain, mapping NaN to the midpoint.
    fn clamp_input(t: f64) -> f64 {
        if t.is_nan() {
            0.5
        } else {
            t.clamp(0.0, 1.0)
        }
    }
}

impl Mechanism for OracleEntryMechanism {
    fn name(&self) -> &'static str {
        self.oracle.kind.name()
    }

    fn epsilon(&self) -> f64 {
        self.oracle.epsilon
    }

    fn bound(&self) -> Bound {
        Bound::Bounded(self.oracle.high.abs().max(self.oracle.low.abs()))
    }

    fn input_domain(&self) -> (f64, f64) {
        (0.0, 1.0)
    }

    fn output_support(&self) -> (f64, f64) {
        (self.oracle.low, self.oracle.high)
    }

    fn perturb(&self, t: f64, rng: &mut dyn RngCore) -> f64 {
        let t = Self::clamp_input(t);
        let bit = rng.gen_bool(t);
        let keep = if bit { self.oracle.p } else { self.oracle.q };
        if rng.gen_bool(keep) {
            self.oracle.high
        } else {
            self.oracle.low
        }
    }

    fn bias(&self, _t: f64) -> f64 {
        0.0
    }

    fn variance(&self, t: f64) -> f64 {
        self.oracle.per_report_variance(Self::clamp_input(t))
    }

    fn is_unbiased(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_inputs() {
        assert!(CategoricalOracle::new(OracleKind::Grr, 2, 1.0).is_ok());
        assert!(CategoricalOracle::new(OracleKind::Grr, 1, 1.0).is_err());
        assert!(CategoricalOracle::new(OracleKind::Oue, 8, 0.0).is_err());
        assert!(CategoricalOracle::new(OracleKind::Oue, 8, f64::NAN).is_err());
        assert!(CategoricalOracle::new(OracleKind::Oue, 8, f64::INFINITY).is_err());
    }

    #[test]
    fn kind_name_round_trips() {
        for kind in OracleKind::ALL {
            assert_eq!(OracleKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(OracleKind::parse("RR"), Some(OracleKind::Grr));
        assert_eq!(OracleKind::parse("unknown"), None);
    }

    #[test]
    fn probabilities_match_the_closed_forms() {
        let eps = 1.5f64;
        let k = 16usize;
        let grr = CategoricalOracle::new(OracleKind::Grr, k, eps).unwrap();
        let denom = eps.exp() + k as f64 - 1.0;
        assert!((grr.p() - eps.exp() / denom).abs() < 1e-12);
        assert!((grr.q() - 1.0 / denom).abs() < 1e-12);

        let oue = CategoricalOracle::new(OracleKind::Oue, k, eps).unwrap();
        assert_eq!(oue.p(), 0.5);
        assert!((oue.q() - 1.0 / (eps.exp() + 1.0)).abs() < 1e-12);
        // OUE's q does not depend on k.
        let oue_big = CategoricalOracle::new(OracleKind::Oue, 1024, eps).unwrap();
        assert_eq!(oue.q(), oue_big.q());
    }

    #[test]
    fn calibrated_bits_have_unit_gap_and_zero_mean_shift() {
        for kind in OracleKind::ALL {
            let oracle = CategoricalOracle::new(kind, 32, 2.0).unwrap();
            // high - low = 1/(p - q): the calibration maps the bit gap onto
            // the unit one-hot gap.
            let gap = oracle.calibrated_one() - oracle.calibrated_zero();
            assert!((gap - 1.0 / (oracle.p() - oracle.q())).abs() < 1e-12);
            // E[calibrated | true one-hot entry t] = t at both extremes.
            for t in [0.0, 1.0] {
                let e = t * oracle.p() + (1.0 - t) * oracle.q();
                let mean = e * oracle.calibrated_one() + (1.0 - e) * oracle.calibrated_zero();
                assert!((mean - t).abs() < 1e-12, "{kind:?} t={t}");
            }
        }
    }

    #[test]
    fn perturb_into_emits_every_category_once() {
        let mut rng = StdRng::seed_from_u64(7);
        for kind in OracleKind::ALL {
            let oracle = CategoricalOracle::new(kind, 8, 1.0).unwrap();
            let mut out = Vec::new();
            oracle.perturb_into(3, &mut rng, &mut out).unwrap();
            assert_eq!(out.len(), 8);
            for (j, (dim, value)) in out.iter().enumerate() {
                assert_eq!(*dim, j);
                assert!(
                    *value == oracle.calibrated_one() || *value == oracle.calibrated_zero(),
                    "{kind:?}"
                );
            }
            assert!(oracle.perturb_into(8, &mut rng, &mut out).is_err());
        }
    }

    #[test]
    fn grr_emits_exactly_one_activated_category() {
        let oracle = CategoricalOracle::new(OracleKind::Grr, 16, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for value in 0..16 {
            let mut out = Vec::new();
            oracle.perturb_into(value, &mut rng, &mut out).unwrap();
            let ones = out
                .iter()
                .filter(|(_, v)| *v == oracle.calibrated_one())
                .count();
            assert_eq!(ones, 1);
        }
    }

    #[test]
    fn count_estimator_is_consistent_on_large_samples() {
        // 60k users, k = 4, planted distribution; both oracles should recover
        // frequencies to within a few estimator standard deviations.
        let truth = [0.5, 0.25, 0.15, 0.1];
        let values: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(23);
            (0..60_000)
                .map(|_| {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    let mut acc = 0.0;
                    let mut picked = truth.len() - 1;
                    for (i, w) in truth.iter().enumerate() {
                        acc += w;
                        if u < acc {
                            picked = i;
                            break;
                        }
                    }
                    picked
                })
                .collect()
        };
        for kind in OracleKind::ALL {
            let oracle = CategoricalOracle::new(kind, truth.len(), 2.0).unwrap();
            let mut rng = StdRng::seed_from_u64(29);
            let mut counts = vec![0u64; truth.len()];
            oracle
                .accumulate_counts(&values, &mut rng, &mut counts)
                .unwrap();
            let est = oracle
                .estimate_from_counts(&counts, values.len() as u64)
                .unwrap();
            for (j, (&f, &fhat)) in truth.iter().zip(&est).enumerate() {
                let sd = (oracle.per_report_variance(f) / values.len() as f64).sqrt();
                assert!(
                    (fhat - f).abs() < 6.0 * sd,
                    "{kind:?} category {j}: {fhat} vs {f} (sd {sd})"
                );
            }
        }
    }

    #[test]
    fn estimate_from_counts_validates_inputs() {
        let oracle = CategoricalOracle::new(OracleKind::Grr, 4, 1.0).unwrap();
        assert!(oracle.estimate_from_counts(&[1, 2, 3, 4], 0).is_err());
        assert!(oracle.estimate_from_counts(&[1, 2], 10).is_err());
    }

    #[test]
    fn entry_mechanism_is_an_unbiased_bounded_mechanism() {
        for kind in OracleKind::ALL {
            let oracle = CategoricalOracle::new(kind, 64, 4.0).unwrap();
            let m = oracle.entry_mechanism();
            assert!(m.is_unbiased());
            assert_eq!(m.bias(0.3), 0.0);
            assert_eq!(m.input_domain(), (0.0, 1.0));
            assert!(m.bound().is_bounded());
            let (lo, hi) = m.output_support();
            assert_eq!(lo, oracle.calibrated_zero());
            assert_eq!(hi, oracle.calibrated_one());
            // Sampled outputs stay on the two calibrated levels and average
            // to the input.
            let mut rng = StdRng::seed_from_u64(5);
            let t = 0.25;
            let n = 40_000;
            let mean: f64 = (0..n).map(|_| m.perturb(t, &mut rng)).sum::<f64>() / n as f64;
            let sd = (m.variance(t) / n as f64).sqrt();
            assert!((mean - t).abs() < 6.0 * sd, "{kind:?}: {mean} vs {t}");
        }
    }

    #[test]
    fn variance_matches_empirical_spread() {
        let oracle = CategoricalOracle::new(OracleKind::Oue, 16, 1.0).unwrap();
        let m = oracle.entry_mechanism();
        let t = 0.6;
        let mut rng = StdRng::seed_from_u64(13);
        let n = 60_000;
        let samples: Vec<f64> = (0..n).map(|_| m.perturb(t, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        let expected = m.variance(t);
        assert!(
            (var - expected).abs() / expected < 0.05,
            "{var} vs {expected}"
        );
    }

    #[test]
    fn nan_input_maps_to_domain_midpoint() {
        let oracle = CategoricalOracle::new(OracleKind::Grr, 8, 1.0).unwrap();
        let m = oracle.entry_mechanism();
        assert_eq!(m.variance(f64::NAN), m.variance(0.5));
        let mut rng = StdRng::seed_from_u64(3);
        let out = m.perturb(f64::NAN, &mut rng);
        assert!(out == oracle.calibrated_one() || out == oracle.calibrated_zero());
    }
}
