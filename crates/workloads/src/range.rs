//! Hierarchical range queries over a discretized domain.
//!
//! The domain `[0, domain)` is padded to a power of two and covered by a
//! binary dyadic-interval tree: level `l` has `2^l` nodes of width
//! `padded / 2^l`, with the root (level 0) covering everything. Each user's
//! value lands in exactly one node per level, so the per-level membership
//! histograms can each be collected with budget `ε / L`
//! ([`BudgetSplit::per_level`]) and compose to `ε` overall.
//!
//! Per level the node-membership frequencies are estimated with a
//! [`CategoricalOracle`](crate::CategoricalOracle) (optionally HDR4ME
//! re-calibrated), then the whole tree is made *consistent* with the
//! Hay-style two-pass estimator: a bottom-up weighted average of each node
//! with its children's sum, followed by a top-down correction that pins the
//! root at 1 and redistributes each parent's residual equally between its
//! children. Afterwards every parent equals the sum of its children exactly,
//! so any dyadic decomposition of a range gives the same answer.

use crate::collect::OraclePipeline;
use crate::{OracleKind, Result, WorkloadError};
use hdldp_core::{Hdr4me, Hdr4meConfig, LambdaSelector, Regularization};
use hdldp_protocol::BudgetSplit;
use hdldp_telemetry::Registry;
use std::ops::Range;

/// Configuration of a range-query tree build.
#[derive(Debug, Clone, Copy)]
pub struct RangeQueryConfig {
    /// The frequency-oracle family used per level.
    pub kind: OracleKind,
    /// The discretized domain size (values live in `[0, domain)`).
    pub domain: usize,
    /// Total privacy budget `ε`, split evenly across the tree levels.
    pub epsilon: f64,
    /// Run seed; each level derives an independent sub-seed.
    pub seed: u64,
    /// `Some(reg)` re-calibrates each level's histogram with HDR4ME before
    /// the consistency pass; `None` uses the raw (clip + renormalize)
    /// estimates.
    pub recalibration: Option<Regularization>,
    /// The deviation-supremum quantile `z` used for the HDR4ME `λ*` weights
    /// (`λ = |δ| + z·σ` — the paper's collector-chosen tolerated supremum).
    /// HDR4ME's default of 3 is tuned for means; node histograms are sparse,
    /// so a smaller `z` keeps small-but-real node masses alive. Ignored when
    /// `recalibration` is `None`.
    pub supremum_z: f64,
}

/// A consistent estimated dyadic-interval tree, ready to answer range queries.
#[derive(Debug, Clone)]
pub struct RangeTree {
    domain: usize,
    padded: usize,
    /// `levels[l]` has `2^l` node frequencies; `levels[0] = [1.0]` (root).
    levels: Vec<Vec<f64>>,
}

impl RangeTree {
    /// The original (unpadded) domain size.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// The padded power-of-two domain the tree is built over.
    pub fn padded_domain(&self) -> usize {
        self.padded
    }

    /// Number of levels below the root (`log2(padded_domain)`).
    pub fn depth(&self) -> usize {
        self.levels.len() - 1
    }

    /// The estimated node frequencies of one level (level 0 is the root).
    pub fn level(&self, l: usize) -> &[f64] {
        &self.levels[l]
    }

    /// Estimated frequency mass of `range` (half-open, clamped to the
    /// domain), answered from the minimal dyadic decomposition and clamped
    /// into `[0, 1]`.
    ///
    /// # Errors
    /// Returns [`WorkloadError::InvalidConfig`] for an inverted range.
    pub fn query(&self, range: Range<usize>) -> Result<f64> {
        if range.start > range.end {
            return Err(WorkloadError::InvalidConfig {
                name: "range",
                reason: format!("inverted range {}..{}", range.start, range.end),
            });
        }
        let lo = range.start.min(self.domain);
        let hi = range.end.min(self.domain);
        let mass = self.decompose(lo, hi, 0, 0, self.padded);
        Ok(mass.clamp(0.0, 1.0))
    }

    /// Sum the minimal set of tree nodes covering `[lo, hi)`.
    fn decompose(&self, lo: usize, hi: usize, level: usize, node: usize, width: usize) -> f64 {
        let node_lo = node * width;
        let node_hi = node_lo + width;
        if hi <= node_lo || lo >= node_hi {
            return 0.0;
        }
        if lo <= node_lo && node_hi <= hi {
            return self.levels[level][node];
        }
        self.decompose(lo, hi, level + 1, 2 * node, width / 2)
            + self.decompose(lo, hi, level + 1, 2 * node + 1, width / 2)
    }

    /// Maximum over all parents of `|parent − Σ children|` — zero (up to
    /// floating point) after the consistency pass.
    pub fn max_consistency_gap(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for l in 0..self.depth() {
            for (node, &parent) in self.levels[l].iter().enumerate() {
                let kids = self.levels[l + 1][2 * node] + self.levels[l + 1][2 * node + 1];
                worst = worst.max((parent - kids).abs());
            }
        }
        worst
    }
}

/// Builds [`RangeTree`]s from user values.
#[derive(Debug, Clone)]
pub struct RangeWorkload {
    config: RangeQueryConfig,
    per_level_epsilon: f64,
    depth: usize,
    padded: usize,
    registry: Registry,
    metrics: crate::telemetry::WorkloadMetrics,
}

impl RangeWorkload {
    /// Create a workload with telemetry disabled.
    ///
    /// # Errors
    /// Returns [`WorkloadError::InvalidConfig`] when `domain < 2` or the
    /// budget split is invalid.
    pub fn new(config: RangeQueryConfig) -> Result<Self> {
        Self::with_telemetry(config, &Registry::disabled())
    }

    /// Create a workload that records runtime metrics into `registry`.
    ///
    /// # Errors
    /// Same conditions as [`RangeWorkload::new`].
    pub fn with_telemetry(config: RangeQueryConfig, registry: &Registry) -> Result<Self> {
        if config.domain < 2 {
            return Err(WorkloadError::InvalidConfig {
                name: "domain",
                reason: format!(
                    "range queries need a domain of at least 2, got {}",
                    config.domain
                ),
            });
        }
        if !(config.supremum_z.is_finite() && config.supremum_z > 0.0) {
            return Err(WorkloadError::InvalidConfig {
                name: "supremum_z",
                reason: format!("must be positive and finite, got {}", config.supremum_z),
            });
        }
        let padded = config.domain.next_power_of_two();
        let depth = padded.trailing_zeros() as usize;
        let per_level_epsilon = BudgetSplit::new(config.epsilon, 1)
            .and_then(|b| b.per_level(depth))
            .map_err(WorkloadError::Protocol)?;
        Ok(Self {
            config,
            per_level_epsilon,
            depth,
            padded,
            registry: registry.clone(),
            metrics: crate::telemetry::WorkloadMetrics::register(registry),
        })
    }

    /// The configuration this workload runs with.
    pub fn config(&self) -> &RangeQueryConfig {
        &self.config
    }

    /// The per-level budget `ε / L`.
    pub fn per_level_epsilon(&self) -> f64 {
        self.per_level_epsilon
    }

    /// Number of levels below the root.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Collect `values` (one value in `[0, domain)` per user) level by level
    /// and build a consistent estimated tree.
    ///
    /// # Errors
    /// Returns [`WorkloadError::ValueOutOfDomain`] when a value is
    /// `>= domain`, and propagates pipeline and re-calibration errors.
    pub fn build(&self, values: &[usize]) -> Result<RangeTree> {
        if let Some(&bad) = values.iter().find(|&&v| v >= self.config.domain) {
            return Err(WorkloadError::ValueOutOfDomain {
                value: bad,
                categories: self.config.domain,
            });
        }
        let mut levels: Vec<Vec<f64>> = vec![vec![1.0]];
        for l in 1..=self.depth {
            let nodes = 1usize << l;
            let width = self.padded >> l;
            let pipeline = OraclePipeline::with_telemetry(
                self.config.kind,
                nodes,
                self.per_level_epsilon,
                // Independent perturbation randomness per level.
                self.config
                    .seed
                    .wrapping_add((l as u64).wrapping_mul(0x517C_C1B7_2722_0A95)),
                &self.registry,
            )?;
            let memberships: Vec<usize> = values.iter().map(|&v| v / width).collect();
            let estimate = pipeline.run(&memberships)?;
            let freqs = match self.config.recalibration {
                Some(reg) => {
                    let _timer = self.metrics.recalibrate_ns.start();
                    let lambda = LambdaSelector::new(self.config.supremum_z, 0.05)
                        .map_err(WorkloadError::Core)?;
                    let hdr = Hdr4me::new(Hdr4meConfig {
                        regularization: reg,
                        lambda,
                    });
                    hdr.recalibrate_frequencies(&estimate, 0, &pipeline.mechanism())?
                        .enhanced
                }
                None => estimate.normalized(0),
            };
            levels.push(freqs);
        }

        let _timer = self.metrics.consistency_ns.start();
        enforce_consistency(&mut levels);
        Ok(RangeTree {
            domain: self.config.domain,
            padded: self.padded,
            levels,
        })
    }
}

/// The exact frequency mass of `range` in a value sample (ground truth).
pub fn true_range_frequency(values: &[usize], range: Range<usize>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let hits = values.iter().filter(|&&v| range.contains(&v)).count();
    hits as f64 / values.len() as f64
}

/// Hay-style two-pass consistency for a binary hierarchy of frequencies.
///
/// Bottom-up, each node at height `h` (leaves `h = 1`) is replaced by the
/// inverse-variance weighted average of itself and its children's sum,
/// `z̄ = α_h·z + (1 − α_h)·Σ children`, `α_h = 2^(h−1) / (2^h − 1)`. Top-down,
/// the root is pinned at 1 and each parent's residual is split equally
/// between its children, which makes every parent exactly the sum of its
/// children without changing any subtree's internal proportions.
fn enforce_consistency(levels: &mut [Vec<f64>]) {
    let depth = levels.len().saturating_sub(1);
    // Bottom-up weighted averaging (leaves are already their own average).
    // split_at_mut pairs each level with the one below it; every parent owns
    // exactly two children, so chunks(2) walks the child level in lockstep.
    for l in (0..depth).rev() {
        let h = depth - l + 1;
        let alpha = (1u64 << (h - 1)) as f64 / ((1u64 << h) - 1) as f64;
        let (upper, lower) = levels.split_at_mut(l + 1);
        let (Some(parents), Some(children)) = (upper.last_mut(), lower.first()) else {
            continue;
        };
        for (node, kids) in parents.iter_mut().zip(children.chunks(2)) {
            let sum: f64 = kids.iter().sum();
            *node = alpha * *node + (1.0 - alpha) * sum;
        }
    }
    // Top-down correction with the root pinned at the known total mass.
    if let Some(root) = levels.first_mut().and_then(|l0| l0.first_mut()) {
        *root = 1.0;
    }
    for l in 0..depth {
        let (upper, lower) = levels.split_at_mut(l + 1);
        let (Some(parents), Some(children)) = (upper.last(), lower.first_mut()) else {
            continue;
        };
        for (&node, kids) in parents.iter().zip(children.chunks_mut(2)) {
            let sum: f64 = kids.iter().sum();
            let fix = 0.5 * (node - sum);
            for k in kids {
                *k += fix;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed_values(n: usize, domain: usize, seed: u64) -> Vec<usize> {
        // Mass concentrated on the low quarter of the domain plus a uniform
        // tail — the shape hierarchical estimators are built for.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.75) {
                    rng.gen_range(0..domain / 4)
                } else {
                    rng.gen_range(0..domain)
                }
            })
            .collect()
    }

    fn workload(recalibration: Option<Regularization>) -> RangeWorkload {
        RangeWorkload::new(RangeQueryConfig {
            kind: OracleKind::Oue,
            domain: 64,
            epsilon: 4.0,
            seed: 31,
            recalibration,
            supremum_z: 1.0,
        })
        .unwrap()
    }

    #[test]
    fn construction_validates_and_splits_budget() {
        let w = workload(None);
        assert_eq!(w.depth(), 6);
        assert!((w.per_level_epsilon() - 4.0 / 6.0).abs() < 1e-12);
        let bad = RangeQueryConfig {
            kind: OracleKind::Grr,
            domain: 1,
            epsilon: 1.0,
            seed: 0,
            recalibration: None,
            supremum_z: 1.0,
        };
        assert!(RangeWorkload::new(bad).is_err());
        let bad_z = RangeQueryConfig {
            domain: 64,
            supremum_z: 0.0,
            ..bad
        };
        assert!(RangeWorkload::new(bad_z).is_err());
    }

    #[test]
    fn non_power_of_two_domain_is_padded() {
        let w = RangeWorkload::new(RangeQueryConfig {
            kind: OracleKind::Grr,
            domain: 48,
            epsilon: 2.0,
            seed: 1,
            recalibration: None,
            supremum_z: 1.0,
        })
        .unwrap();
        assert_eq!(w.padded, 64);
        let values = skewed_values(3_000, 48, 2);
        let tree = w.build(&values).unwrap();
        assert_eq!(tree.domain(), 48);
        assert_eq!(tree.padded_domain(), 64);
        // Querying past the domain end just clamps.
        let all = tree.query(0..48).unwrap();
        assert!(all > 0.5);
    }

    #[test]
    fn tree_is_exactly_consistent_after_post_processing() {
        let values = skewed_values(5_000, 64, 7);
        for recal in [None, Some(Regularization::L1), Some(Regularization::L2)] {
            let tree = workload(recal).build(&values).unwrap();
            assert!(
                tree.max_consistency_gap() < 1e-9,
                "recal={recal:?}: gap {}",
                tree.max_consistency_gap()
            );
            assert!((tree.level(0)[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn queries_approximate_ground_truth() {
        let values = skewed_values(20_000, 64, 13);
        let tree = workload(Some(Regularization::L2)).build(&values).unwrap();
        for range in [0usize..16, 8..24, 0..64, 40..64, 5..6] {
            let truth = true_range_frequency(&values, range.clone());
            let est = tree.query(range.clone()).unwrap();
            assert!(
                (est - truth).abs() < 0.08,
                "range {range:?}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn degenerate_queries_are_well_defined() {
        let values = skewed_values(2_000, 64, 17);
        let tree = workload(None).build(&values).unwrap();
        assert_eq!(tree.query(10..10).unwrap(), 0.0);
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 5..3;
        assert!(tree.query(inverted).is_err());
        assert!((tree.query(0..64).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(tree.query(64..80).unwrap(), 0.0);
    }

    #[test]
    fn out_of_domain_values_are_rejected() {
        let w = workload(None);
        assert!(matches!(
            w.build(&[0, 63, 64]).unwrap_err(),
            WorkloadError::ValueOutOfDomain { value: 64, .. }
        ));
    }

    #[test]
    fn consistency_preserves_an_already_consistent_tree() {
        // A hand-built exactly-consistent tree is a fixed point.
        let mut levels = vec![vec![1.0], vec![0.75, 0.25], vec![0.5, 0.25, 0.125, 0.125]];
        let reference = levels.clone();
        enforce_consistency(&mut levels);
        for (l, level) in reference.iter().enumerate() {
            for (n, &v) in level.iter().enumerate() {
                assert!((levels[l][n] - v).abs() < 1e-12, "level {l} node {n}");
            }
        }
    }
}
