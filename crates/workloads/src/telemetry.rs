//! Metric handles for the workload layer.
//!
//! Registered against an [`hdldp_telemetry::Registry`]; against
//! [`Registry::disabled`](hdldp_telemetry::Registry::disabled) every handle is
//! a no-op, so un-instrumented runs pay one predictable branch per record.
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `workload_runs_total` | counter | workload executions (collect + estimate) |
//! | `workload_reports_total` | counter | categorical reports perturbed |
//! | `workload_collect_ns` | histogram | perturb + sharded ingest per run |
//! | `workload_estimate_ns` | histogram | estimate readout + normalization per run |
//! | `workload_recalibrate_ns` | histogram | HDR4ME re-calibration per dimension/level |
//! | `workload_consistency_ns` | histogram | range-tree consistency pass per build |

use hdldp_telemetry::{Counter, LatencyHistogram, Registry};

/// Handles for the workload-layer metrics (see the module table).
#[derive(Debug, Clone)]
pub struct WorkloadMetrics {
    /// Workload executions.
    pub runs: Counter,
    /// Categorical reports perturbed.
    pub reports: Counter,
    /// Perturbation + sharded ingest latency per run.
    pub collect_ns: LatencyHistogram,
    /// Estimate readout + normalization latency per run.
    pub estimate_ns: LatencyHistogram,
    /// HDR4ME re-calibration latency per dimension/level.
    pub recalibrate_ns: LatencyHistogram,
    /// Range-tree consistency pass latency per build.
    pub consistency_ns: LatencyHistogram,
}

impl WorkloadMetrics {
    /// Register the workload metrics in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            runs: registry.counter("workload_runs_total"),
            reports: registry.counter("workload_reports_total"),
            collect_ns: registry.histogram("workload_collect_ns"),
            estimate_ns: registry.histogram("workload_estimate_ns"),
            recalibrate_ns: registry.histogram("workload_recalibrate_ns"),
            consistency_ns: registry.histogram("workload_consistency_ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_metrics_when_enabled() {
        let registry = Registry::new();
        let metrics = WorkloadMetrics::register(&registry);
        metrics.runs.inc();
        metrics.reports.add(42);
        metrics.collect_ns.record_ns(1_000);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("workload_runs_total"), Some(1));
        assert_eq!(snapshot.counter("workload_reports_total"), Some(42));
    }

    #[test]
    fn disabled_registry_hands_out_noops() {
        let metrics = WorkloadMetrics::register(&Registry::disabled());
        assert!(!metrics.runs.is_enabled());
        metrics.runs.inc(); // must not panic
    }
}
