//! Frequency estimation over categorical data with histogram encoding and
//! HDR4ME re-calibration (Section V-C of the paper).
//!
//! ```text
//! cargo run -p hdldp-examples --example frequency_estimation
//! ```
//!
//! Scenario: an app vendor wants the distribution of answers to 15
//! multiple-choice diagnostic questions (8 options each) without learning any
//! individual's answers. Each user reports 3 of the 15 questions under ε-LDP.

use hdldp_core::Hdr4me;
use hdldp_data::CategoricalDataset;
use hdldp_math::stats;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{FrequencyPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let questions = 15;
    let options = 8;
    let mut rng = StdRng::seed_from_u64(2024);
    let data = CategoricalDataset::generate_zipf(30_000, vec![options; questions], &mut rng)?;
    println!(
        "survey: {} respondents, {questions} questions with {options} options each\n",
        data.users()
    );

    let epsilon = 2.0;
    let pipeline = FrequencyPipeline::new(
        MechanismKind::SquareWave,
        PipelineConfig::new(epsilon, 3, 5),
    )?;
    let estimate = pipeline.run(&data)?;
    println!(
        "collected with {} at eps = {epsilon} (per one-hot entry: {:.4})\n",
        pipeline.kind().name(),
        estimate.per_entry_epsilon
    );

    // Report question 0 in detail and the average MSE across all questions.
    let truth = &estimate.true_frequencies[0];
    let raw = &estimate.estimated[0];
    let enhanced = Hdr4me::l1().recalibrate_frequencies(&estimate, 0, pipeline.mechanism())?;
    println!("question 0 (first {options} options):");
    println!("  true frequencies:      {truth:.3?}");
    println!("  raw LDP estimate:      {raw:.3?}");
    println!("  HDR4ME-L1 (normalized): {:.3?}", enhanced.enhanced);

    let mut raw_mse = 0.0;
    let mut norm_mse = 0.0;
    let mut hdr_mse = 0.0;
    for q in 0..questions {
        let truth = &estimate.true_frequencies[q];
        raw_mse += stats::mse(&estimate.estimated[q], truth)?;
        norm_mse += stats::mse(&estimate.normalized(q), truth)?;
        let r = Hdr4me::l1().recalibrate_frequencies(&estimate, q, pipeline.mechanism())?;
        hdr_mse += stats::mse(&r.enhanced, truth)?;
    }
    let d = questions as f64;
    println!("\naverage frequency MSE over all questions:");
    println!("  raw estimate:        {:.6}", raw_mse / d);
    println!("  clip + renormalize:  {:.6}", norm_mse / d);
    println!("  HDR4ME-L1:           {:.6}", hdr_mse / d);
    Ok(())
}
