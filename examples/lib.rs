//! Shared helpers for the runnable examples.
//!
//! The examples themselves live next to this file (`quickstart.rs`,
//! `mechanism_benchmark.rs`, ...). Run one with, e.g.:
//!
//! ```text
//! cargo run -p hdldp-examples --example quickstart
//! ```

/// Format a small table of (label, value) rows for terminal output.
pub fn format_table(title: &str, rows: &[(String, String)]) -> String {
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0).max(8);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (k, v) in rows {
        out.push_str(&format!("  {k:<width$}  {v}\n"));
    }
    out
}
