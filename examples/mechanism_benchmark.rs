//! Benchmark every shipped LDP mechanism analytically — no simulation — using
//! the paper's framework (Section IV).
//!
//! ```text
//! cargo run -p hdldp-examples --example mechanism_benchmark
//! ```
//!
//! The scenario: a collector plans to gather 1,000-dimensional data from
//! 100,000 users with total budget ε = 1 (each user reports 100 dimensions).
//! Before deploying anything she asks: for the deviation tolerance I care
//! about, which mechanism should I pick? The framework answers from the
//! closed-form bias/variance of each mechanism alone.

use hdldp_data::DiscreteValueDistribution;
use hdldp_framework::MechanismBenchmark;
use hdldp_mechanisms::{build_mechanism, MechanismKind};

pub fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // Planned collection: n = 100,000 users, d = 1,000 dims, m = 100 reported.
    let users = 100_000.0;
    let dims = 1_000.0;
    let reported = 100.0;
    let total_epsilon = 1.0;
    let per_dimension_epsilon = total_epsilon / reported;
    let reports = users * reported / dims;

    // The collector's prior belief about a typical dimension's values: mildly
    // skewed towards the positive end of [-1, 1].
    let values = DiscreteValueDistribution::new(
        vec![-0.5, 0.0, 0.25, 0.5, 0.75],
        vec![0.1, 0.2, 0.3, 0.25, 0.15],
    )?;

    println!(
        "planning a collection: n = {users}, d = {dims}, m = {reported}, eps = {total_epsilon}"
    );
    println!("per-dimension budget = {per_dimension_epsilon}, expected reports per dimension = {reports}\n");

    let mut bench = MechanismBenchmark::new(vec![0.01, 0.05, 0.1, 0.5, 1.0])?;
    for kind in MechanismKind::ALL {
        let mechanism = build_mechanism(kind, per_dimension_epsilon)?;
        bench.add_mechanism(mechanism.as_ref(), &values, reports)?;
    }

    println!("probability that |estimated mean - true mean| stays within xi, per mechanism:\n");
    println!("{}", bench.to_table());

    for (idx, xi) in bench.suprema().to_vec().iter().enumerate() {
        if let Some(winner) = bench.winner_at(idx) {
            println!("tolerance xi = {xi:<5}: pick `{}`", winner.mechanism);
        }
    }
    println!("\n(no experiment was run — every number above is closed-form)");
    Ok(())
}
