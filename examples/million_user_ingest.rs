//! Population-scale collection: one million simulated clients stream
//! perturbed reports into the sharded ingest engine.
//!
//! ```text
//! cargo run --release -p hdldp-examples --example million_user_ingest
//! cargo run --release -p hdldp-examples --example million_user_ingest -- \
//!     --users 4000000 --shards 8
//! ```
//!
//! This is the aggregator of Section III-B at the scale the paper assumes:
//! each user samples `m` of her `d` dimensions, perturbs each with budget
//! `ε/m`, and the collector ingests the reports through hash-partitioned
//! shards — per-shard partial sums, bounded report batches, merge-on-read.
//! The simulated population is lazy (a user's value in a dimension is a pure
//! function of her id), so no gigabyte-scale dataset is materialized and the
//! per-dimension population means are known exactly; the example prints
//! ingest throughput in reports/sec alongside the MSE of the sharded
//! estimate against that ground truth.

use hdldp_mechanisms::{build_mechanism, MechanismKind};
use hdldp_protocol::{BudgetSplit, Client, IngestConfig, IngestEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Dimensions per user tuple.
const DIMS: usize = 256;
/// Dimensions each user samples and reports.
const REPORTED: usize = 8;
/// Total per-user privacy budget ε.
const EPSILON: f64 = 1.0;
/// Seed of the deterministic simulation.
const SEED: u64 = 2022;

/// SplitMix64 finalizer: the per-(user, dimension) randomness of the
/// simulated population.
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` derived from a mixed state.
fn unit(z: u64) -> f64 {
    (mix(z) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The exact population mean of dimension `j` (in `[-0.45, 0.45]`, so user
/// values mean ± 0.5 never leave the mechanisms' `[-1, 1]` input domain).
fn population_mean(dim: usize) -> f64 {
    0.9 * (unit(dim as u64 ^ 0x5151_5151_5151_5151) - 0.5)
}

/// User `u`'s raw value in dimension `j`: uniform in a width-1 window centred
/// on the population mean — generated on demand, never stored.
fn user_value(user: u64, dim: usize) -> f64 {
    population_mean(dim) + unit(SEED ^ mix(user) ^ (dim as u64).rotate_left(32)) - 0.5
}

/// Run the collection for `users` simulated clients over `shards` ingest
/// shards and print throughput + estimate quality.
pub fn run(users: u64, shards: usize) -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    println!(
        "collecting from {users} users: d = {DIMS}, m = {REPORTED}, eps = {EPSILON}, {shards} shards"
    );

    // Client side: every user perturbs her m sampled dimensions with eps/m.
    let budget = BudgetSplit::new(EPSILON, REPORTED)?;
    let mechanism = build_mechanism(MechanismKind::Piecewise, budget.per_dimension())?;
    let client = Client::new(mechanism.as_ref(), budget, DIMS)?;

    // Collector side: reports hash-partition across shards, batch
    // shard-locally, and the estimate is produced by merge-on-read.
    let mut engine = IngestEngine::new(
        DIMS,
        IngestConfig::new(shards, IngestConfig::DEFAULT_BATCH_CAPACITY)?,
    )?;
    let start = Instant::now();
    engine.ingest_partitioned(0..users, |user, out| {
        let mut rng = StdRng::seed_from_u64(SEED.wrapping_add(mix(user)));
        client.perturb_lazy_into(|dim| user_value(user, dim), &mut rng, out);
        Ok(())
    })?;
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let merged = engine.merged()?;
    let means = merged.means()?;
    let mse = means
        .iter()
        .enumerate()
        .map(|(dim, &estimate)| (estimate - population_mean(dim)).powi(2))
        .sum::<f64>()
        / DIMS as f64;

    let loads = engine.shard_loads();
    println!(
        "ingested {} reports ({} entries) in {elapsed:.2}s",
        merged.reports(),
        merged.counts().iter().sum::<u64>(),
    );
    println!(
        "throughput: {:.0} reports/sec ({:.0} perturbed entries/sec)",
        merged.reports() as f64 / elapsed,
        merged.counts().iter().sum::<u64>() as f64 / elapsed,
    );
    println!(
        "shard loads: min {} / max {} reports",
        loads.iter().min().unwrap(),
        loads.iter().max().unwrap(),
    );
    println!("estimated-mean MSE vs ground truth: {mse:.6}");

    // Sharding is lossless: per-dimension partial sums and counts merge
    // exactly, so any shard count recovers the single-loop estimate (up to
    // the last ulps of floating-point summation order). Demonstrate by
    // re-running single-shard at a small scale.
    if users <= 100_000 {
        let mut single = IngestEngine::new(DIMS, IngestConfig::new(1, 64)?)?;
        single.ingest_partitioned(0..users, |user, out| {
            let mut rng = StdRng::seed_from_u64(SEED.wrapping_add(mix(user)));
            client.perturb_lazy_into(|dim| user_value(user, dim), &mut rng, out);
            Ok(())
        })?;
        for (sharded, reference) in means.iter().zip(single.estimated_means()?) {
            assert!(
                (sharded - reference).abs() <= 1e-12,
                "sharded estimate {sharded} diverged from single-loop {reference}"
            );
        }
        println!("single-shard re-run reproduced the sharded estimated means");
    }
    Ok(())
}

#[cfg_attr(test, allow(dead_code))]
fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let users: u64 = match value_of("--users") {
        Some(v) => v.parse()?,
        None => 1_000_000,
    };
    let shards: usize = match value_of("--shards") {
        Some(v) => v.parse()?,
        None => rayon::current_num_threads().max(1) * 2,
    };
    run(users, shards)
}
