//! Quickstart: collect a high-dimensional mean under LDP and re-calibrate it
//! with HDR4ME.
//!
//! ```text
//! cargo run -p hdldp-examples --example quickstart
//! ```
//!
//! The flow is the one every other example builds on:
//!
//! 1. build (or load) a dataset whose columns are normalized into `[-1, 1]`;
//! 2. run the LDP collection pipeline for a mechanism and a budget;
//! 3. build the analytical framework's deviation model for that configuration;
//! 4. apply HDR4ME and compare the naive and enhanced estimates.

use hdldp_core::Hdr4me;
use hdldp_data::GaussianDataset;
use hdldp_framework::DeviationModel;
use hdldp_math::stats;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{MeanEstimationPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // 1. A synthetic dataset: 20,000 users, 100 numeric dimensions in [-1, 1].
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = GaussianDataset::new(20_000, 100)?.generate(&mut rng);
    println!(
        "dataset: {} users x {} dimensions (values in [-1, 1])",
        dataset.users(),
        dataset.dims()
    );

    // 2. Collect under epsilon-LDP: every user reports all 100 dimensions, so
    //    each dimension gets epsilon/100 of the budget.
    let epsilon = 0.8;
    let pipeline = MeanEstimationPipeline::new(
        MechanismKind::Piecewise,
        PipelineConfig::new(epsilon, dataset.dims(), 42),
    )?;
    let estimate = pipeline.run(&dataset)?;
    let naive_mse = estimate.utility()?.mse;
    println!(
        "naive aggregation   (eps = {epsilon}, mechanism = {}): MSE = {naive_mse:.5}",
        pipeline.kind().name()
    );

    // 3. The analytical framework predicts how noisy that estimate is.
    let reports = dataset.users() as f64; // m = d, so r_j = n
    let model = DeviationModel::for_dataset(pipeline.mechanism(), &dataset, reports)?;
    println!(
        "framework: per-dimension deviation sigma ~ {:.3}, Theorem 3 improvement probability = {:.3}",
        model.std_devs()[0],
        model.l1_improvement_probability()
    );

    // 4. Re-calibrate with HDR4ME (L1 and L2) and compare.
    for hdr in [Hdr4me::l1(), Hdr4me::l2()] {
        let result = hdr.recalibrate(&estimate.estimated_means, &model)?;
        let mse = stats::mse(&result.enhanced_means, &estimate.true_means)?;
        println!(
            "HDR4ME {:?}: MSE = {mse:.5} ({}x better than naive)",
            hdr.config().regularization,
            (naive_mse / mse).round()
        );
    }
    Ok(())
}
