//! Compare LDP mechanisms end-to-end on a skewed survey workload and show how
//! HDR4ME changes the picture in high-dimensional space.
//!
//! ```text
//! cargo run -p hdldp-examples --example survey_recalibration
//! ```
//!
//! Scenario: a 400-question numeric survey (each answer normalized into
//! [-1, 1]) collected from 12,000 respondents with a total budget of ε = 1.
//! For each of the three mechanisms the paper evaluates, the example prints
//! the naive MSE and the MSE after HDR4ME with both regularizers — the
//! single-point version of Figure 4.

use hdldp_core::Hdr4me;
use hdldp_data::GaussianDataset;
use hdldp_framework::DeviationModel;
use hdldp_math::stats;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{MeanEstimationPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let mut rng = StdRng::seed_from_u64(314);
    // 10% of the questions have a strongly positive consensus (mean 0.9), the
    // rest are centred — the paper's Gaussian dataset pattern.
    let dataset = GaussianDataset::new(12_000, 400)?.generate(&mut rng);
    let epsilon = 1.0;
    println!(
        "survey: {} respondents x {} questions, total eps = {epsilon}\n",
        dataset.users(),
        dataset.dims()
    );
    println!(
        "{:<14}{:>14}{:>14}{:>14}",
        "mechanism", "naive MSE", "HDR4ME-L1", "HDR4ME-L2"
    );

    for kind in MechanismKind::PAPER_EVALUATED {
        let pipeline =
            MeanEstimationPipeline::new(kind, PipelineConfig::new(epsilon, dataset.dims(), 8))?;
        let estimate = pipeline.run(&dataset)?;
        let naive = estimate.utility()?.mse;
        let model =
            DeviationModel::for_dataset(pipeline.mechanism(), &dataset, dataset.users() as f64)?;
        let l1 = Hdr4me::l1().recalibrate(&estimate.estimated_means, &model)?;
        let l2 = Hdr4me::l2().recalibrate(&estimate.estimated_means, &model)?;
        println!(
            "{:<14}{:>14.5}{:>14.5}{:>14.5}",
            kind.name(),
            naive,
            stats::mse(&l1.enhanced_means, &estimate.true_means)?,
            stats::mse(&l2.enhanced_means, &estimate.true_means)?,
        );
    }

    println!(
        "\nNote: Square Wave already has a tiny deviation at this scale, so the paper\n\
         (and this reproduction) expect little or no gain from re-calibrating it —\n\
         the gains concentrate on Laplace and Piecewise, whose noise dominates."
    );
    Ok(())
}
