//! IoT-telemetry scenario: estimate the fleet-wide mean of hundreds of device
//! metrics under LDP, and let the framework decide whether HDR4ME should be
//! applied.
//!
//! ```text
//! cargo run -p hdldp-examples --example telemetry_mean_estimation
//! ```
//!
//! This is the workload the paper's introduction motivates (IoT/smart-device
//! collection): many correlated numeric metrics per device, a strict privacy
//! budget, and a collector that only ever sees perturbed reports. The example
//! runs the same collection at two budgets to show both sides of the paper's
//! guidance: HDR4ME helps when the noise dominates, and the Theorem 3/4
//! guarantee warns when it would not.
//!
//! Fittingly for a telemetry scenario, the collection itself is observed: the
//! pipeline and the re-calibrator record into an `hdldp_telemetry::Registry`,
//! and the runtime-metrics snapshot (report counters, phase latency
//! histograms) is printed at the end.

use hdldp_core::{Hdr4me, ImprovementGuarantee, Regularization};
use hdldp_data::CorrelatedDataset;
use hdldp_framework::DeviationModel;
use hdldp_math::stats;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{MeanEstimationPipeline, PipelineConfig};
use hdldp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // 8,000 devices, 300 correlated telemetry metrics each (CPU, memory,
    // radio, sensor channels, ...), normalized into [-1, 1].
    let mut rng = StdRng::seed_from_u64(99);
    let dataset = CorrelatedDataset::new(8_000, 300)?.generate(&mut rng);
    println!(
        "telemetry fleet: {} devices x {} metrics\n",
        dataset.users(),
        dataset.dims()
    );

    let registry = Registry::new();
    for (label, epsilon) in [("strict budget", 0.5), ("generous budget", 50.0)] {
        println!("=== {label}: eps = {epsilon} ===");
        let pipeline = MeanEstimationPipeline::new(
            MechanismKind::Laplace,
            PipelineConfig::new(epsilon, dataset.dims(), 1),
        )?
        .with_telemetry(&registry);
        let estimate = pipeline.run(&dataset)?;
        let naive_mse = estimate.utility()?.mse;

        let model =
            DeviationModel::for_dataset(pipeline.mechanism(), &dataset, dataset.users() as f64)?;
        let guarantee = ImprovementGuarantee::evaluate(&model, Regularization::L1);
        println!(
            "naive MSE = {naive_mse:.5}; Theorem 3 improvement probability = {:.3}",
            guarantee.probability
        );

        if guarantee.is_recommended(0.9) {
            let result = Hdr4me::l1()
                .with_telemetry(&registry)
                .recalibrate(&estimate.estimated_means, &model)?;
            let mse = stats::mse(&result.enhanced_means, &estimate.true_means)?;
            println!("HDR4ME recommended -> applied L1: enhanced MSE = {mse:.5}");
        } else {
            println!("HDR4ME not recommended at this budget -> keeping the naive aggregate");
        }
        println!();
    }

    println!("collector runtime metrics across both budgets:");
    println!("{}", registry.snapshot().render_table());
    Ok(())
}
