//! Smoke tests that compile and run the examples end-to-end, so the examples
//! cannot silently rot.
//!
//! Each example file is included as a module via `#[path]`; its `main` is then
//! an ordinary function returning `Result`, which the tests run to completion.

#[path = "../quickstart.rs"]
mod quickstart;

#[path = "../frequency_estimation.rs"]
mod frequency_estimation;

#[path = "../mechanism_benchmark.rs"]
mod mechanism_benchmark;

#[path = "../survey_recalibration.rs"]
mod survey_recalibration;

#[path = "../telemetry_mean_estimation.rs"]
mod telemetry_mean_estimation;

#[path = "../million_user_ingest.rs"]
mod million_user_ingest;

#[test]
fn quickstart_runs_to_completion() {
    quickstart::main().expect("quickstart example failed");
}

#[test]
fn frequency_estimation_runs_to_completion() {
    frequency_estimation::main().expect("frequency_estimation example failed");
}

#[test]
fn mechanism_benchmark_runs_to_completion() {
    mechanism_benchmark::main().expect("mechanism_benchmark example failed");
}

#[test]
fn survey_recalibration_runs_to_completion() {
    survey_recalibration::main().expect("survey_recalibration example failed");
}

#[test]
fn telemetry_mean_estimation_runs_to_completion() {
    telemetry_mean_estimation::main().expect("telemetry_mean_estimation example failed");
}

#[test]
fn million_user_ingest_runs_to_completion_at_reduced_population() {
    // The example defaults to 1M simulated users; the smoke test runs the
    // same code with a reduced population (and an awkward shard count) so CI
    // stays fast. The reduced scale also triggers the example's
    // single-shard-equivalence assertion.
    million_user_ingest::run(25_000, 3).expect("million_user_ingest example failed");
}
