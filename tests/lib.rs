//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only hosts small
//! utilities they share (deterministic RNG construction, tolerance helpers).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a deterministic RNG for reproducible integration tests.
pub fn test_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Assert two floats are close within an absolute tolerance, with a helpful message.
pub fn assert_close(actual: f64, expected: f64, tol: f64, what: &str) {
    assert!(
        (actual - expected).abs() <= tol,
        "{what}: expected {expected}, got {actual} (tolerance {tol})"
    );
}

/// Relative-error variant of [`assert_close`] for quantities far from zero.
pub fn assert_rel_close(actual: f64, expected: f64, rel: f64, what: &str) {
    let denom = expected.abs().max(1e-12);
    assert!(
        ((actual - expected) / denom).abs() <= rel,
        "{what}: expected {expected}, got {actual} (relative tolerance {rel})"
    );
}
