//! Cross-crate integration tests: the full mean-estimation stack
//! (dataset → LDP collection → naive aggregation → HDR4ME re-calibration),
//! checking the paper's headline claims at small scale.

use hdldp_core::Hdr4me;
use hdldp_data::{generators, DatasetKind, GaussianDataset};
use hdldp_framework::DeviationModel;
use hdldp_integration_tests::test_rng;
use hdldp_math::stats;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{MeanEstimationPipeline, PipelineConfig};

/// Run one pipeline and return (naive MSE, L1 MSE, L2 MSE) against the truth.
fn run_point(
    dataset: &hdldp_data::Dataset,
    mechanism: MechanismKind,
    epsilon: f64,
    seed: u64,
) -> (f64, f64, f64) {
    let pipeline = MeanEstimationPipeline::new(
        mechanism,
        PipelineConfig::new(epsilon, dataset.dims(), seed),
    )
    .expect("valid pipeline");
    let estimate = pipeline.run(dataset).expect("pipeline runs");
    let naive = estimate.utility().expect("utility").mse;
    let model = DeviationModel::for_dataset(pipeline.mechanism(), dataset, dataset.users() as f64)
        .expect("model builds");
    let l1 = Hdr4me::l1()
        .recalibrate(&estimate.estimated_means, &model)
        .expect("l1 recalibration");
    let l2 = Hdr4me::l2()
        .recalibrate(&estimate.estimated_means, &model)
        .expect("l2 recalibration");
    (
        naive,
        stats::mse(&l1.enhanced_means, &estimate.true_means).unwrap(),
        stats::mse(&l2.enhanced_means, &estimate.true_means).unwrap(),
    )
}

#[test]
fn hdr4me_improves_laplace_and_piecewise_in_high_dimensions() {
    // The Figure 4 regime: all dimensions reported, tight budget.
    let dataset = GaussianDataset::new(4_000, 80)
        .unwrap()
        .generate(&mut test_rng(11));
    for mechanism in [MechanismKind::Laplace, MechanismKind::Piecewise] {
        let (naive, l1, l2) = run_point(&dataset, mechanism, 0.5, 3);
        assert!(l1 < naive, "{mechanism:?}: L1 {l1} vs naive {naive}");
        assert!(l2 < naive, "{mechanism:?}: L2 {l2} vs naive {naive}");
    }
}

#[test]
fn square_wave_recalibration_is_flagged_as_not_recommended() {
    // The paper's observation in Figures 4(c), (f), (i), (l): the Square Wave
    // deviation is already small, so HDR4ME is "not suitable for Square Wave"
    // and can even hurt. The framework must flag exactly that: the Theorem 3
    // improvement probability is low, so a collector following the guarantee
    // keeps the naive aggregate.
    let dataset = GaussianDataset::new(4_000, 80)
        .unwrap()
        .generate(&mut test_rng(12));
    let pipeline = MeanEstimationPipeline::new(
        MechanismKind::SquareWave,
        PipelineConfig::new(100.0, dataset.dims(), 5),
    )
    .unwrap();
    let estimate = pipeline.run(&dataset).unwrap();
    let model = DeviationModel::for_dataset(pipeline.mechanism(), &dataset, dataset.users() as f64)
        .unwrap();
    let result = Hdr4me::l1()
        .recalibrate(&estimate.estimated_means, &model)
        .unwrap();
    assert!(
        result.guarantee.probability < 0.5,
        "improvement probability should be low for Square Wave at a generous budget, got {}",
        result.guarantee.probability
    );
    assert!(!result.guarantee.is_recommended(0.9));
}

#[test]
fn mse_decreases_monotonically_with_budget_on_average() {
    let dataset = GaussianDataset::new(3_000, 60)
        .unwrap()
        .generate(&mut test_rng(21));
    let mse_at = |eps: f64| {
        // Average three seeds to smooth randomness.
        (0..3)
            .map(|s| run_point(&dataset, MechanismKind::Piecewise, eps, s).0)
            .sum::<f64>()
            / 3.0
    };
    let low = mse_at(0.2);
    let mid = mse_at(0.8);
    let high = mse_at(3.2);
    assert!(
        low > mid,
        "MSE at eps 0.2 ({low}) should exceed MSE at 0.8 ({mid})"
    );
    assert!(
        mid > high,
        "MSE at eps 0.8 ({mid}) should exceed MSE at 3.2 ({high})"
    );
}

#[test]
fn every_paper_dataset_kind_runs_end_to_end() {
    for kind in DatasetKind::ALL {
        let dataset = generators::generate(kind, 1_500, 40, &mut test_rng(33)).unwrap();
        let (naive, l1, l2) = run_point(&dataset, MechanismKind::Laplace, 0.4, 1);
        assert!(
            naive.is_finite() && l1.is_finite() && l2.is_finite(),
            "{kind:?}"
        );
        assert!(l1 <= naive, "{kind:?}: L1 should help in this noisy regime");
    }
}

#[test]
fn report_counts_and_budget_are_consistent() {
    let dataset = GaussianDataset::new(2_000, 50)
        .unwrap()
        .generate(&mut test_rng(44));
    let pipeline =
        MeanEstimationPipeline::new(MechanismKind::Piecewise, PipelineConfig::new(2.0, 10, 9))
            .unwrap();
    let estimate = pipeline.run(&dataset).unwrap();
    // n * m reports in total, eps/m per dimension.
    assert_eq!(estimate.report_counts.iter().sum::<u64>(), 2_000 * 10);
    assert!((estimate.per_dimension_epsilon - 0.2).abs() < 1e-12);
    assert_eq!(estimate.estimated_means.len(), 50);
}
