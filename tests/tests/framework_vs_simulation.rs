//! Cross-crate integration tests: the analytical framework's CLT predictions
//! (Lemmas 2/3, Theorem 1) against actual simulation through the collection
//! protocol — the essence of the paper's Figures 2 and 3 at test scale.

use hdldp_data::{DiscreteValueDistribution, UniformDataset};
use hdldp_framework::{CaseStudy, DeviationApproximation, DeviationModel};
use hdldp_integration_tests::test_rng;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{MeanEstimationPipeline, PipelineConfig};

/// Simulate repeated collections and return the deviations of dimension 0.
fn simulate_deviations(
    dataset: &hdldp_data::Dataset,
    mechanism: MechanismKind,
    epsilon: f64,
    reported: usize,
    trials: usize,
) -> Vec<f64> {
    let truth = dataset.true_means();
    let pipeline =
        MeanEstimationPipeline::new(mechanism, PipelineConfig::new(epsilon, reported, 17))
            .expect("valid pipeline");
    pipeline
        .run_trials(dataset, trials)
        .expect("trials run")
        .into_iter()
        .map(|estimate| estimate.estimated_means[0] - truth[0])
        .collect()
}

fn mean_and_std(xs: &[f64]) -> (f64, f64) {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[test]
fn clt_prediction_matches_simulation_for_unbounded_mechanism() {
    // Laplace (Lemma 2): deviation ~ N(0, Var(noise)/r).
    let dataset = UniformDataset::new(4_000, 40)
        .unwrap()
        .generate(&mut test_rng(7));
    let reported = 10;
    let epsilon = 1.0;
    let reports = dataset.users() as f64 * reported as f64 / dataset.dims() as f64;

    let pipeline = MeanEstimationPipeline::new(
        MechanismKind::Laplace,
        PipelineConfig::new(epsilon, reported, 0),
    )
    .unwrap();
    let values =
        DiscreteValueDistribution::from_column_bucketed(&dataset.column(0).unwrap(), 32).unwrap();
    let predicted =
        DeviationApproximation::for_dimension(pipeline.mechanism(), &values, reports).unwrap();

    let deviations = simulate_deviations(&dataset, MechanismKind::Laplace, epsilon, reported, 120);
    let (emp_mean, emp_std) = mean_and_std(&deviations);

    assert!(emp_mean.abs() < 4.0 * predicted.std_dev() / (120f64).sqrt() + 0.05);
    assert!(
        (emp_std - predicted.std_dev()).abs() / predicted.std_dev() < 0.35,
        "empirical std {emp_std} vs predicted {}",
        predicted.std_dev()
    );
}

#[test]
fn clt_prediction_matches_simulation_for_bounded_biased_mechanism() {
    // Square Wave (Lemma 3): the deviation keeps a non-zero mean (bias).
    let case_study = CaseStudy {
        reports_per_dimension: 2_000.0,
        ..CaseStudy::default()
    };
    let predicted = case_study.square_wave_deviation().unwrap();

    // Direct one-dimensional simulation on the native [0, 1] domain.
    let mech =
        hdldp_mechanisms::SquareWaveMechanism::new(case_study.per_dimension_epsilon()).unwrap();
    let values = case_study.values.values().to_vec();
    let true_mean = case_study.values.mean();
    let mut rng = test_rng(13);
    let trials = 150;
    let mut deviations = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut sum = 0.0;
        for _ in 0..case_study.reports_per_dimension as usize {
            let v = values[rand::Rng::gen_range(&mut rng, 0..values.len())];
            sum += hdldp_mechanisms::Mechanism::perturb(&mech, v, &mut rng);
        }
        deviations.push(sum / case_study.reports_per_dimension - true_mean);
    }
    let (emp_mean, emp_std) = mean_and_std(&deviations);

    assert!(
        (emp_mean - predicted.delta()).abs() < 5.0 * predicted.std_dev(),
        "empirical mean {emp_mean} vs predicted bias {}",
        predicted.delta()
    );
    assert!(
        (emp_std - predicted.std_dev()).abs() / predicted.std_dev() < 0.35,
        "empirical std {emp_std} vs predicted {}",
        predicted.std_dev()
    );
}

#[test]
fn theorem1_box_probability_matches_monte_carlo_frequency() {
    // For a 3-dimensional Laplace model, the Theorem 1 box probability should
    // match the fraction of simulated runs whose every dimension stays inside
    // the box.
    let dataset = UniformDataset::new(2_000, 3)
        .unwrap()
        .generate(&mut test_rng(23));
    let epsilon = 3.0;
    let pipeline =
        MeanEstimationPipeline::new(MechanismKind::Laplace, PipelineConfig::new(epsilon, 3, 0))
            .unwrap();
    let model = DeviationModel::for_dataset(pipeline.mechanism(), &dataset, dataset.users() as f64)
        .unwrap();
    let xi = model.std_devs()[0]; // one-sigma box: per-dim ~68%, 3 dims ~0.318
    let predicted = model.box_probability_uniform(xi);

    let truth = dataset.true_means();
    let trials = 400;
    let runs = pipeline.run_trials(&dataset, trials).unwrap();
    let hits = runs
        .iter()
        .filter(|estimate| {
            estimate
                .estimated_means
                .iter()
                .zip(&truth)
                .all(|(e, t)| (e - t).abs() <= xi)
        })
        .count();
    let empirical = hits as f64 / trials as f64;
    assert!(
        (empirical - predicted).abs() < 0.1,
        "empirical {empirical} vs predicted {predicted}"
    );
}

#[test]
fn table2_crossover_is_reproduced_by_the_case_study() {
    let bench = CaseStudy::default().table2().unwrap();
    // Piecewise wins the two tight tolerances, Square Wave the two loose ones.
    assert_eq!(bench.winner_at(0).unwrap().mechanism, "piecewise");
    assert_eq!(bench.winner_at(1).unwrap().mechanism, "piecewise");
    assert_eq!(bench.winner_at(2).unwrap().mechanism, "square_wave");
    assert_eq!(bench.winner_at(3).unwrap().mechanism, "square_wave");
}
