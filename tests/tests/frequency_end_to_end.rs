//! Cross-crate integration tests for the Section V-C frequency-estimation
//! extension: histogram encoding → LDP collection → naive frequencies →
//! HDR4ME re-calibration.

use hdldp_core::Hdr4me;
use hdldp_data::CategoricalDataset;
use hdldp_integration_tests::test_rng;
use hdldp_math::stats;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{FrequencyPipeline, PipelineConfig};

fn survey(users: usize) -> CategoricalDataset {
    CategoricalDataset::generate_zipf(users, vec![6, 4, 10], &mut test_rng(55)).unwrap()
}

#[test]
fn generous_budget_recovers_frequencies_for_every_mechanism() {
    let data = survey(5_000);
    for kind in MechanismKind::PAPER_EVALUATED {
        let pipeline = FrequencyPipeline::new(kind, PipelineConfig::new(100.0, 3, 2)).unwrap();
        let estimate = pipeline.run(&data).unwrap();
        for dim in 0..3 {
            let mse = estimate.utility(dim).unwrap().mse;
            assert!(mse < 5e-3, "{kind:?} dim {dim}: mse = {mse}");
        }
    }
}

#[test]
fn recalibrated_frequencies_are_valid_distributions() {
    let data = survey(3_000);
    let pipeline =
        FrequencyPipeline::new(MechanismKind::Piecewise, PipelineConfig::new(0.5, 3, 9)).unwrap();
    let estimate = pipeline.run(&data).unwrap();
    for hdr in [Hdr4me::l1(), Hdr4me::l2()] {
        for dim in 0..3 {
            let result = hdr
                .recalibrate_frequencies(&estimate, dim, pipeline.mechanism())
                .unwrap();
            let total: f64 = result.enhanced.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(result.enhanced.iter().all(|f| (0.0..=1.0).contains(f)));
        }
    }
}

#[test]
fn recalibration_helps_noisy_frequency_estimates_on_average() {
    // Tight budget: the raw one-hot means are very noisy. Average the MSE over
    // dimensions and compare raw vs HDR4ME-enhanced.
    let data = survey(8_000);
    let pipeline =
        FrequencyPipeline::new(MechanismKind::Laplace, PipelineConfig::new(0.4, 3, 4)).unwrap();
    let estimate = pipeline.run(&data).unwrap();
    let mut raw_total = 0.0;
    let mut enhanced_total = 0.0;
    for dim in 0..3 {
        let truth = &estimate.true_frequencies[dim];
        raw_total += stats::mse(&estimate.estimated[dim], truth).unwrap();
        let result = Hdr4me::l1()
            .recalibrate_frequencies(&estimate, dim, pipeline.mechanism())
            .unwrap();
        enhanced_total += stats::mse(&result.enhanced, truth).unwrap();
    }
    assert!(
        enhanced_total < raw_total,
        "enhanced {enhanced_total} vs raw {raw_total}"
    );
}

#[test]
fn true_frequencies_match_encoded_column_means() {
    // Consistency between the categorical dataset and its histogram encoding:
    // this is the identity that lets frequency estimation reuse the mean
    // estimation machinery.
    let data = survey(1_000);
    let (encoded, offsets) = data.encode_all();
    let means = encoded.true_means();
    for (j, &offset) in offsets.iter().enumerate() {
        let freqs = data.true_frequencies(j).unwrap();
        for (c, &f) in freqs.iter().enumerate() {
            assert!((means[offset + c] - f).abs() < 1e-12);
        }
    }
}
