//! Equivalence tests for the vectorised analytical hot paths: the batched
//! deviation-model construction, the batched Theorem 1 box probabilities, and
//! the fused PGD sweeps must agree with their scalar reference
//! implementations to within 1e-12 on property-generated inputs, including
//! degenerate zero-variance (constant) columns.

use hdldp_core::pgd::{proximal_gradient_descent, proximal_gradient_descent_reference, PgdConfig};
use hdldp_core::Regularization;
use hdldp_data::Dataset;
use hdldp_framework::DeviationModel;
use hdldp_integration_tests::test_rng;
use hdldp_mechanisms::{build_mechanism, MechanismKind};
use proptest::prelude::*;
use rand::Rng;

/// Dimension sweep shared by every property below: scalar, tiny, mid-size,
/// and the d = 1000 scale the benchmarks target.
const DIMS: [usize; 4] = [1, 2, 50, 1_000];

/// Build a `users x dims` dataset where roughly `constant_fraction` of the
/// columns are degenerate (identical value in every row, i.e. zero variance)
/// and the rest are uniform over a per-column range.
fn generated_dataset(seed: u64, users: usize, dims: usize, constant_fraction: f64) -> Dataset {
    let mut rng = test_rng(seed);
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(dims);
    for _ in 0..dims {
        let column = if rng.gen() < constant_fraction {
            let value = rng.gen_range(-1.0..1.0);
            vec![value; users]
        } else {
            let lo = rng.gen_range(-1.0..0.0);
            let hi = rng.gen_range(lo..1.0f64.max(lo + 1e-6));
            (0..users).map(|_| rng.gen_range(lo..hi)).collect()
        };
        columns.push(column);
    }
    let mut values = Vec::with_capacity(users * dims);
    for i in 0..users {
        for column in &columns {
            values.push(column[i]);
        }
    }
    Dataset::from_rows(users, dims, values).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The batched `for_dataset` construction agrees with the scalar
    /// per-column reference for every mechanism, every dimensionality, and
    /// datasets containing zero-variance columns.
    #[test]
    fn batched_deviation_model_matches_reference(
        seed in 0u64..u64::MAX,
        constant_fraction in 0.0f64..0.6,
        eps in 0.05f64..4.0,
        reports in 50.0f64..5_000.0,
    ) {
        for &dims in &DIMS {
            let data = generated_dataset(seed, 40, dims, constant_fraction);
            for kind in MechanismKind::ALL {
                let mech = build_mechanism(kind, eps).unwrap();
                let fast = DeviationModel::for_dataset(mech.as_ref(), &data, reports).unwrap();
                let reference =
                    DeviationModel::for_dataset_reference(mech.as_ref(), &data, reports).unwrap();
                let (fd, rd) = (fast.deltas(), reference.deltas());
                let (fs, rs) = (fast.std_devs(), reference.std_devs());
                prop_assert_eq!(fd.len(), dims);
                for j in 0..dims {
                    prop_assert!(
                        (fd[j] - rd[j]).abs() <= 1e-12,
                        "{kind:?} d={dims} delta[{j}]: {} vs {}", fd[j], rd[j]
                    );
                    prop_assert!(
                        (fs[j] - rs[j]).abs() <= 1e-12,
                        "{kind:?} d={dims} sigma[{j}]: {} vs {}", fs[j], rs[j]
                    );
                }
            }
        }
    }

    /// The batched box probability (erf cache + run-length reuse) agrees with
    /// the scalar product of per-dimension `prob_within` calls.
    #[test]
    fn batched_box_probability_matches_scalar_product(
        seed in 0u64..u64::MAX,
        constant_fraction in 0.0f64..0.6,
        eps in 0.05f64..4.0,
        base_xi in 0.01f64..2.0,
    ) {
        let mech = build_mechanism(MechanismKind::Piecewise, eps).unwrap();
        for &dims in &DIMS {
            let data = generated_dataset(seed, 40, dims, constant_fraction);
            let model = DeviationModel::for_dataset(mech.as_ref(), &data, 500.0).unwrap();
            let suprema: Vec<f64> = (0..dims)
                .map(|j| base_xi * (1.0 + 0.5 * ((j as f64) * 0.7).sin()))
                .collect();
            let batched = model.box_probability(&suprema).unwrap();
            let scalar: f64 = model
                .dimensions()
                .iter()
                .zip(&suprema)
                .map(|(approx, &xi)| approx.prob_within(xi))
                .product();
            prop_assert!(
                (batched - scalar).abs() <= 1e-12,
                "d={dims}: batched {batched} vs scalar {scalar}"
            );
            let uniform = model.box_probability_uniform(base_xi);
            let uniform_scalar: f64 = model
                .dimensions()
                .iter()
                .map(|approx| approx.prob_within(base_xi))
                .product();
            prop_assert!((uniform - uniform_scalar).abs() <= 1e-12);
        }
    }

    /// The fused PGD sweeps agree with the per-coordinate reference loop for
    /// both regularizers, including zero weights and varied step sizes.
    #[test]
    fn vectorised_pgd_matches_reference(
        seed in 0u64..u64::MAX,
        step_size in 0.05f64..1.0,
    ) {
        let mut rng = test_rng(seed);
        for &dims in &DIMS {
            let estimate: Vec<f64> = (0..dims).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let weights: Vec<f64> = (0..dims)
                .map(|_| if rng.gen() < 0.1 { 0.0 } else { rng.gen_range(0.0..5.0) })
                .collect();
            let config = PgdConfig { step_size, max_iterations: 120, tolerance: 1e-10 };
            for reg in Regularization::ALL {
                let fast = proximal_gradient_descent(&estimate, &weights, reg, config).unwrap();
                let reference =
                    proximal_gradient_descent_reference(&estimate, &weights, reg, config).unwrap();
                prop_assert_eq!(fast.iterations, reference.iterations, "{reg:?} d={dims}");
                prop_assert_eq!(fast.converged, reference.converged, "{reg:?} d={dims}");
                for j in 0..dims {
                    prop_assert!(
                        (fast.theta[j] - reference.theta[j]).abs() <= 1e-12,
                        "{reg:?} d={dims} theta[{j}]: {} vs {}",
                        fast.theta[j], reference.theta[j]
                    );
                }
            }
        }
    }
}
