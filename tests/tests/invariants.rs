//! Cross-crate property-based tests on the system's core invariants.

use hdldp_core::solver::{solve_l1, solve_l2};
use hdldp_core::Hdr4me;
use hdldp_data::{DiscreteValueDistribution, UniformDataset};
use hdldp_framework::DeviationModel;
use hdldp_integration_tests::test_rng;
use hdldp_math::vector::{l1_norm, l2_norm};
use hdldp_mechanisms::{build_mechanism, MechanismKind};
use hdldp_protocol::{MeanEstimationPipeline, PipelineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// HDR4ME never increases the scale of the estimate: both solvers shrink
    /// every coordinate towards zero, so the L1/L2 norms cannot grow.
    #[test]
    fn recalibration_never_increases_the_norm(
        pair in (1usize..40).prop_flat_map(|len| (
            proptest::collection::vec(-10.0f64..10.0, len),
            proptest::collection::vec(0.0f64..5.0, len),
        )),
    ) {
        let (estimate, weights) = pair;
        let l1 = solve_l1(&estimate, &weights).unwrap();
        let l2 = solve_l2(&estimate, &weights).unwrap();
        prop_assert!(l1_norm(&l1) <= l1_norm(&estimate) + 1e-9);
        prop_assert!(l2_norm(&l1) <= l2_norm(&estimate) + 1e-9);
        prop_assert!(l1_norm(&l2) <= l1_norm(&estimate) + 1e-9);
        prop_assert!(l2_norm(&l2) <= l2_norm(&estimate) + 1e-9);
    }

    /// Theorem 1 box probabilities are genuine probabilities and monotone in
    /// the box size, for every mechanism.
    #[test]
    fn box_probabilities_are_probabilities(
        eps in 0.01f64..5.0,
        reports in 10.0f64..10_000.0,
        dims in 1usize..50,
        xi in 0.001f64..2.0,
    ) {
        let values = DiscreteValueDistribution::case_study();
        for kind in [MechanismKind::Laplace, MechanismKind::Piecewise, MechanismKind::SquareWave] {
            let mech = build_mechanism(kind, eps).unwrap();
            let model = DeviationModel::homogeneous(mech.as_ref(), &values, reports, dims).unwrap();
            let p = model.box_probability_uniform(xi);
            let p_bigger = model.box_probability_uniform(xi * 2.0);
            prop_assert!((0.0..=1.0).contains(&p), "{kind:?}: {p}");
            prop_assert!(p_bigger + 1e-12 >= p, "{kind:?}");
            // Theorem 3/4 bounds are also probabilities.
            prop_assert!((0.0..=1.0).contains(&model.l1_improvement_probability()));
            prop_assert!((0.0..=1.0).contains(&model.l2_improvement_probability()));
        }
    }

    /// The pipeline conserves reports (n·m in total) and produces finite means
    /// within the mechanism's output support, for every mechanism kind.
    #[test]
    fn pipeline_conserves_reports_and_stays_finite(
        seed in 0u64..50,
        eps in 0.1f64..4.0,
    ) {
        let dataset = UniformDataset::new(300, 12).unwrap().generate(&mut test_rng(seed));
        for kind in MechanismKind::ALL {
            let pipeline = MeanEstimationPipeline::new(kind, PipelineConfig::new(eps, 4, seed)).unwrap();
            let estimate = pipeline.run(&dataset).unwrap();
            prop_assert_eq!(estimate.report_counts.iter().sum::<u64>(), 300 * 4);
            prop_assert!(estimate.estimated_means.iter().all(|m| m.is_finite()), "{:?}", kind);
        }
    }
}

/// The end-to-end HDR4ME decision matches the guarantee: when the framework
/// says "almost surely an improvement", it is one; sanity-checked on a single
/// deterministic configuration to keep the test fast.
#[test]
fn guarantee_and_outcome_agree_in_the_extreme_regime() {
    let dataset = UniformDataset::new(2_000, 100)
        .unwrap()
        .generate(&mut test_rng(99));
    let pipeline =
        MeanEstimationPipeline::new(MechanismKind::Laplace, PipelineConfig::new(0.2, 100, 7))
            .unwrap();
    let estimate = pipeline.run(&dataset).unwrap();
    let model = DeviationModel::for_dataset(pipeline.mechanism(), &dataset, dataset.users() as f64)
        .unwrap();
    let result = Hdr4me::l1()
        .recalibrate(&estimate.estimated_means, &model)
        .unwrap();
    assert!(result.guarantee.probability > 0.99);
    let naive = estimate.utility().unwrap().mse;
    let enhanced = hdldp_math::stats::mse(&result.enhanced_means, &estimate.true_means).unwrap();
    assert!(enhanced < naive);
}
