//! Cross-crate tests pinning the sharded ingest engine to the single-loop
//! aggregation it replaces: same sums, same counts, same estimated means.
//!
//! The bit-for-bit property tests draw report values from the dyadic grid
//! `k/16` with small `k`, where floating-point addition is exact and therefore
//! order-free — so *any* shard count, batch capacity, and batch boundary must
//! reproduce the single-loop result down to the last bit. Arbitrary-float
//! agreement (where only the summation order differs) is covered by the
//! tolerance-based test against the legacy `Aggregator`.

use hdldp_protocol::{Aggregator, IngestConfig, IngestEngine, ProtocolError, Report};
use proptest::prelude::*;

/// Plain single-loop reference: per-dimension sums and counts over `reports`.
fn single_loop_sums(dims: usize, reports: &[Vec<(usize, f64)>]) -> (Vec<f64>, Vec<u64>) {
    let mut sums = vec![0.0f64; dims];
    let mut counts = vec![0u64; dims];
    for report in reports {
        for &(dim, value) in report {
            sums[dim] += value;
            counts[dim] += 1;
        }
    }
    (sums, counts)
}

/// Strategy: a population of reports over `dims` dimensions whose values lie
/// on the dyadic grid `k/16` with `|k| <= 32`, so sums are exact in `f64`.
fn dyadic_reports(dims: usize) -> impl Strategy<Value = Vec<Vec<(usize, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..dims, -32i32..33), 0..6),
        0..40,
    )
    .prop_map(|reports| {
        reports
            .into_iter()
            .map(|entries| {
                entries
                    .into_iter()
                    .map(|(dim, k)| (dim, f64::from(k) / 16.0))
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On exact-addition inputs, the sharded engine reproduces the
    /// single-loop sums and counts bit-for-bit for every shard count and
    /// batch capacity — including shard counts far above the report count.
    #[test]
    fn sharded_merge_equals_single_loop_bit_for_bit(
        population in (1usize..12).prop_flat_map(|dims| (Just(dims), dyadic_reports(dims))),
        shards in 1usize..20,
        batch_capacity in 1usize..5,
    ) {
        let (dims, reports) = population;
        let mut engine = IngestEngine::new(dims, IngestConfig::new(shards, batch_capacity).unwrap()).unwrap();
        for (user, entries) in reports.iter().enumerate() {
            engine.submit_entries(user as u64, entries).unwrap();
        }
        let merged = engine.merged().unwrap();
        let (sums, counts) = single_loop_sums(dims, &reports);
        prop_assert_eq!(merged.sums(), sums);
        prop_assert_eq!(merged.counts(), counts);
        prop_assert_eq!(merged.reports(), reports.len());
    }

    /// The parallel bulk path is bit-for-bit identical to serial submission
    /// on the same engine configuration, for arbitrary shard counts.
    #[test]
    fn parallel_bulk_ingest_matches_serial_submission(
        population in (1usize..12).prop_flat_map(|dims| (Just(dims), dyadic_reports(dims))),
        shards in 1usize..6,
    ) {
        let (dims, reports) = population;
        let config = IngestConfig::new(shards, 3).unwrap();
        let mut serial = IngestEngine::new(dims, config).unwrap();
        for (user, entries) in reports.iter().enumerate() {
            serial.submit_entries(user as u64, entries).unwrap();
        }
        let mut bulk = IngestEngine::new(dims, config).unwrap();
        bulk.ingest_partitioned(0..reports.len() as u64, |user, out| {
            out.extend_from_slice(&reports[user as usize]);
            Ok(())
        }).unwrap();
        prop_assert_eq!(serial.merged().unwrap(), bulk.merged().unwrap());
        prop_assert_eq!(serial.shard_loads(), bulk.shard_loads());
    }

    /// On arbitrary floats the sharded estimate agrees with the legacy
    /// Welford-based `Aggregator` up to summation-order rounding.
    #[test]
    fn sharded_means_agree_with_legacy_aggregator(
        values in proptest::collection::vec(-1.0f64..1.0, 1..120),
        dims in 1usize..8,
        shards in 1usize..7,
    ) {
        let reports: Vec<Vec<(usize, f64)>> = values
            .chunks(dims)
            .map(|chunk| chunk.iter().enumerate().map(|(dim, &v)| (dim, v)).collect())
            .collect();
        let mut engine = IngestEngine::new(dims, IngestConfig::new(shards, 4).unwrap()).unwrap();
        let mut aggregator = Aggregator::new(dims).unwrap();
        for (user, entries) in reports.iter().enumerate() {
            engine.submit_entries(user as u64, entries).unwrap();
            aggregator.ingest(&Report::new(entries.clone())).unwrap();
        }
        // Only the full leading chunks cover every dimension; skip configs
        // where some dimension got no reports.
        if aggregator.report_counts().iter().all(|&c| c > 0) {
            let sharded = engine.estimated_means().unwrap();
            let legacy = aggregator.estimated_means().unwrap();
            for (s, l) in sharded.iter().zip(&legacy) {
                prop_assert!((s - l).abs() <= 1e-12, "sharded {s} vs legacy {l}");
            }
        }
    }
}

#[test]
fn empty_engine_reports_empty_dimensions() {
    let engine = IngestEngine::new(3, IngestConfig::new(4, 8).unwrap()).unwrap();
    let merged = engine.merged().unwrap();
    assert_eq!(merged.counts(), &[0, 0, 0]);
    assert_eq!(merged.reports(), 0);
    assert!(matches!(
        engine.estimated_means(),
        Err(ProtocolError::EmptyDimension { dimension: 0 })
    ));
}

#[test]
fn more_shards_than_reports_leaves_idle_shards_harmless() {
    let mut engine = IngestEngine::new(2, IngestConfig::new(16, 4).unwrap()).unwrap();
    engine.submit_entries(0, &[(0, 1.0), (1, -0.5)]).unwrap();
    engine.submit_entries(1, &[(0, 3.0)]).unwrap();
    let loads = engine.shard_loads();
    assert_eq!(loads.len(), 16);
    assert_eq!(loads.iter().sum::<usize>(), 2);
    let merged = engine.merged().unwrap();
    assert_eq!(merged.sums(), &[4.0, -0.5]);
    assert_eq!(merged.counts(), &[2, 1]);
}

#[test]
fn batch_capacity_one_flushes_every_report() {
    let mut tight = IngestEngine::new(2, IngestConfig::new(3, 1).unwrap()).unwrap();
    let mut roomy = IngestEngine::new(2, IngestConfig::new(3, 64).unwrap()).unwrap();
    for user in 0..50u64 {
        let entries = [(0, 0.25), ((user % 2) as usize, -0.5)];
        tight.submit_entries(user, &entries).unwrap();
        roomy.submit_entries(user, &entries).unwrap();
    }
    // With capacity 1 nothing is ever pending; with 64 everything still is.
    assert_eq!(tight.shard_loads().iter().sum::<usize>(), 50);
    assert_eq!(tight.merged().unwrap(), roomy.merged().unwrap());
    roomy.flush().unwrap();
    assert_eq!(tight.merged().unwrap(), roomy.merged().unwrap());
}

#[test]
fn reports_without_entries_count_as_reports_but_not_samples() {
    let mut engine = IngestEngine::new(2, IngestConfig::new(2, 4).unwrap()).unwrap();
    engine.submit_entries(0, &[]).unwrap();
    engine.submit_entries(1, &[(1, 1.0)]).unwrap();
    let merged = engine.merged().unwrap();
    assert_eq!(merged.reports(), 2);
    assert_eq!(merged.counts(), &[0, 1]);
}
