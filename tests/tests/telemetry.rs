//! Cross-crate tests for the telemetry subsystem: the lock-free primitives
//! under concurrent load, snapshot consistency while writers are live, the
//! zero-allocation guarantee of the disabled path, and the end-to-end metric
//! counts recorded by the instrumented ingest engine and pipeline.
//!
//! This binary installs a counting [`std::alloc::System`] wrapper as the
//! global allocator so the disabled-registry test can assert "no allocations"
//! directly rather than by inspection. The counter is thread-local, so the
//! other tests (which run concurrently on sibling threads) never perturb it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use hdldp_data::GaussianDataset;
use hdldp_integration_tests::test_rng;
use hdldp_mechanisms::MechanismKind;
use hdldp_protocol::{IngestConfig, IngestEngine, MeanEstimationPipeline, PipelineConfig, Report};
use hdldp_telemetry::Registry;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// [`System`] allocator wrapper that counts allocations per thread.
struct CountingAllocator;

// SAFETY: every method delegates to `System` with its arguments unchanged,
// so `System`'s GlobalAlloc contract carries over verbatim; the counter bump
// via `try_with` cannot allocate, unwind, or reenter the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (nonzero-size
    // layout); forwarded to `System.alloc` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    // SAFETY: caller passes a block previously returned by this allocator
    // with its original layout; `System.dealloc` requires exactly that.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract (live block,
    // matching layout, nonzero new size); forwarded to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Allocations made by `f` on the current thread.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.with(Cell::get);
    let result = f();
    let after = ALLOCATIONS.with(Cell::get);
    (after - before, result)
}

#[test]
fn concurrent_hammering_agrees_with_the_serial_tally() {
    const THREADS: u64 = 8;
    const ITERS: u64 = 10_000;

    let registry = Registry::new();
    let counter = registry.counter("hammer_total");
    let histogram = registry.histogram("hammer_ns");

    thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..ITERS {
                    counter.inc();
                    counter.add(2);
                    histogram.record_ns(t * ITERS + i + 1);
                }
            });
        }
    });

    // Serial tally: each thread does ITERS * (inc + add(2)) = 3 per loop.
    assert_eq!(counter.value(), THREADS * ITERS * 3);
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("hammer_total"), Some(THREADS * ITERS * 3));
    let hist = snapshot.histogram("hammer_ns").unwrap();
    assert_eq!(hist.count, THREADS * ITERS);
    // Every recorded value is in 1..=THREADS*ITERS, so the exact sum is known.
    let n = THREADS * ITERS;
    assert_eq!(hist.sum_ns, n * (n + 1) / 2);
    assert_eq!(hist.max_ns, n);
}

#[test]
fn snapshot_while_writing_never_tears_or_panics() {
    const WRITER_THREADS: u64 = 4;

    let registry = Registry::new();
    let counter = registry.counter("live_total");
    let histogram = registry.histogram("live_ns");
    let stop = Arc::new(AtomicBool::new(false));

    thread::scope(|scope| {
        for _ in 0..WRITER_THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    counter.inc();
                    histogram.record_ns(7);
                }
            });
        }

        let mut last_count = 0u64;
        for _ in 0..500 {
            let snapshot = registry.snapshot();
            let count = snapshot.counter("live_total").unwrap();
            // Counters are monotone, so a snapshot can never run backwards.
            assert!(
                count >= last_count,
                "counter went backwards: {last_count} -> {count}"
            );
            last_count = count;
            if let Some(hist) = snapshot.histogram("live_ns") {
                // Every sample is exactly 7ns: any count/sum pairing that
                // violates sum == 7 * count would be a torn read... except the
                // two loads are not one atomic unit, so the invariant that
                // MUST hold is weaker and exact: each is internally consistent
                // (sum is a multiple of 7, quantiles bracket the one bucket).
                assert_eq!(hist.sum_ns % 7, 0, "sum is not a whole number of samples");
                if hist.count > 0 {
                    assert!(hist.p50_ns >= 1, "quantile fell outside the sample bucket");
                    assert!(hist.max_ns >= 7, "max below the only recorded value");
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn disabled_registry_records_nothing_and_allocates_nothing() {
    let registry = Registry::disabled();
    let counter = registry.counter("never_total");
    let gauge = registry.gauge("never_ratio");
    let histogram = registry.histogram("never_ns");

    let (allocations, ()) = allocations_during(|| {
        for i in 0..10_000 {
            counter.inc();
            counter.add(3);
            gauge.set(i as f64);
            histogram.record_ns(i);
            histogram.start().stop();
        }
    });

    assert_eq!(allocations, 0, "disabled telemetry path allocated");
    assert_eq!(counter.value(), 0);
    assert_eq!(gauge.value(), 0.0);
    assert_eq!(histogram.count(), 0);
    let snapshot = registry.snapshot();
    assert!(
        snapshot.is_empty(),
        "disabled registry produced data: {snapshot:?}"
    );
}

#[test]
fn enabled_hot_path_does_not_allocate_per_record() {
    let registry = Registry::new();
    let counter = registry.counter("hot_total");
    let histogram = registry.histogram("hot_ns");

    // Warm-up records nothing new structurally; the recording loop itself
    // must be allocation-free (the ISSUE's "allocation-free on the hot path").
    counter.inc();
    histogram.record_ns(1);

    let (allocations, ()) = allocations_during(|| {
        for i in 0..10_000 {
            counter.inc();
            histogram.record_ns(i + 1);
        }
    });

    assert_eq!(allocations, 0, "enabled record path allocated");
    assert_eq!(counter.value(), 10_001);
}

#[test]
fn instrumented_engine_counts_match_the_workload() {
    let dims = 32usize;
    let users = 1_000u64;
    let registry = Registry::new();
    let config = IngestConfig::new(4, 64).unwrap();
    let mut engine = IngestEngine::with_telemetry(dims, config, &registry).unwrap();

    for user in 0..users {
        let report = Report::new(vec![
            ((user as usize) % dims, 1.0),
            ((user as usize * 7) % dims, -1.0),
        ]);
        engine.submit(user, &report).unwrap();
    }
    engine.flush().unwrap();
    let merged = engine.merged().unwrap();
    assert_eq!(merged.reports(), users as usize);

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("ingest_reports_total"), Some(users));
    assert_eq!(snapshot.counter("ingest_entries_total"), Some(users * 2));
    assert_eq!(snapshot.counter("ingest_rejects_total"), Some(0));
    assert_eq!(snapshot.counter("ingest_merges_total"), Some(1));

    // The per-shard counters partition the total exactly.
    let shard_sum: u64 = snapshot
        .counters
        .iter()
        .filter(|c| c.name.starts_with("ingest_shard") && c.name.ends_with("_reports_total"))
        .map(|c| c.value)
        .sum();
    assert_eq!(shard_sum, users);

    // Every report went through a counted batch flush; the flush latency is
    // sampled every FLUSH_SAMPLE_EVERY-th flush, which on this serial path is
    // deterministic: flushes 0, 8, 16, ... read the clock.
    let flushes = snapshot.counter("ingest_batch_flushes_total").unwrap();
    let flush_hist = snapshot.histogram("ingest_batch_flush_ns").unwrap();
    assert!(flushes > 0);
    assert_eq!(flush_hist.count, flushes.div_ceil(8));
    assert_eq!(snapshot.histogram("ingest_merge_ns").unwrap().count, 1);
}

#[test]
fn rejected_reports_are_counted_and_not_ingested() {
    let registry = Registry::new();
    let mut engine =
        IngestEngine::with_telemetry(8, IngestConfig::new(2, 16).unwrap(), &registry).unwrap();

    engine.submit_entries(0, &[(1usize, 0.5)]).unwrap();
    // Dimension out of range: rejected before touching any batch.
    assert!(engine.submit_entries(1, &[(99usize, 0.5)]).is_err());

    engine.flush().unwrap();
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("ingest_reports_total"), Some(1));
    assert_eq!(snapshot.counter("ingest_rejects_total"), Some(1));
}

#[test]
fn pipeline_run_records_phases_and_serializes_round_trip() {
    let dataset = GaussianDataset::new(600, 12)
        .unwrap()
        .generate(&mut test_rng(42));
    let registry = Registry::new();
    let pipeline =
        MeanEstimationPipeline::new(MechanismKind::Laplace, PipelineConfig::new(1.0, 12, 1234))
            .unwrap()
            .with_telemetry(&registry);
    pipeline.run(&dataset).unwrap();

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("pipeline_runs_total"), Some(1));
    assert_eq!(snapshot.histogram("pipeline_ingest_ns").unwrap().count, 1);
    assert_eq!(snapshot.histogram("pipeline_estimate_ns").unwrap().count, 1);
    assert_eq!(snapshot.counter("ingest_reports_total"), Some(600));

    // The exporter surface is stable: JSON round-trips to an equal snapshot,
    // and the Prometheus rendering names every metric family.
    let json = snapshot.to_json().unwrap();
    let restored: hdldp_telemetry::TelemetrySnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, snapshot);
    let prometheus = snapshot.to_prometheus();
    assert!(prometheus.contains("pipeline_runs_total"));
    assert!(prometheus.contains("pipeline_ingest_ns"));
}
