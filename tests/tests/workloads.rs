//! End-to-end integration tests for the multi-workload analytics subsystem:
//! heavy-hitter identification and hierarchical range queries over the GRR /
//! OUE categorical oracles, with fixed seeds so every run is reproducible.

use hdldp_core::Regularization;
use hdldp_telemetry::Registry;
use hdldp_workloads::{
    planted_dataset, precision_recall, true_range_frequency, HeavyHitterConfig,
    HeavyHitterDetector, OracleKind, RangeQueryConfig, RangeWorkload, SelectionRule,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Acceptance check: at 100k users and ε = 4, both oracles must identify the
/// planted top-10 heavy hitters with recall ≥ 0.9, with HDR4ME re-calibration
/// applied before selection.
#[test]
fn heavy_hitters_at_100k_users_recover_planted_top10() {
    let (values, heavy_ids) = planted_dataset(100_000, 128, 10, 0.8, 404).unwrap();
    for kind in OracleKind::ALL {
        let detector = HeavyHitterDetector::new(HeavyHitterConfig {
            kind,
            categories: 128,
            epsilon: 4.0,
            seed: 808,
            rule: SelectionRule::TopK(10),
            recalibration: Some(Regularization::L1),
            supremum_z: 1.0,
        })
        .unwrap();
        let report = detector.identify(&values).unwrap();
        let pr = precision_recall(&report.selected, &heavy_ids);
        assert!(
            pr.recall >= 0.9,
            "{kind:?}: recall {} below the 0.9 acceptance bar",
            pr.recall
        );
        // Top-k selection: precision equals recall here.
        assert!(pr.precision >= 0.9, "{kind:?}: precision {}", pr.precision);
    }
}

#[test]
fn heavy_hitter_runs_are_reproducible() {
    let (values, _) = planted_dataset(20_000, 64, 5, 0.8, 12).unwrap();
    let config = HeavyHitterConfig {
        kind: OracleKind::Oue,
        categories: 64,
        epsilon: 2.0,
        seed: 34,
        rule: SelectionRule::TopK(5),
        recalibration: Some(Regularization::L1),
        supremum_z: 1.0,
    };
    let a = HeavyHitterDetector::new(config)
        .unwrap()
        .identify(&values)
        .unwrap();
    let b = HeavyHitterDetector::new(config)
        .unwrap()
        .identify(&values)
        .unwrap();
    assert_eq!(a.selected, b.selected);
    assert_eq!(a.frequencies, b.frequencies);
}

fn skewed_values(n: usize, domain: usize, seed: u64) -> Vec<usize> {
    // Zipf mass on the low eighth of the domain over a uniform tail —
    // mirrors the range_queries figure binary.
    let hot = domain / 8;
    let weights: Vec<f64> = (0..hot).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.8) {
                let u: f64 = rng.gen_range(0.0..total);
                let mut acc = 0.0;
                for (i, w) in weights.iter().enumerate() {
                    acc += w;
                    if u < acc {
                        return i;
                    }
                }
                hot - 1
            } else {
                rng.gen_range(0..domain)
            }
        })
        .collect()
}

fn mean_relative_error(
    tree: &hdldp_workloads::RangeTree,
    values: &[usize],
    domain: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = 0.0;
    let queries = 100;
    for _ in 0..queries {
        let a = rng.gen_range(0..domain);
        let b = rng.gen_range(0..domain);
        let range = a.min(b)..a.max(b) + 1;
        let truth = true_range_frequency(values, range.clone());
        let est = tree.query(range).unwrap();
        rel += (est - truth).abs() / truth.max(1e-3);
    }
    rel / queries as f64
}

/// Acceptance check: HDR4ME-re-calibrated range queries beat the raw
/// (clip + renormalize) per-level estimates on mean relative error, with the
/// same fixed-seed perturbations underneath both variants.
#[test]
fn recalibrated_range_queries_beat_raw_on_mean_relative_error() {
    let domain = 256;
    let values = skewed_values(60_000, domain, 505);
    for kind in OracleKind::ALL {
        for epsilon in [0.5, 1.0] {
            let base = RangeQueryConfig {
                kind,
                domain,
                epsilon,
                seed: 707,
                recalibration: None,
                supremum_z: 1.0,
            };
            let raw_tree = RangeWorkload::new(base).unwrap().build(&values).unwrap();
            let recal_tree = RangeWorkload::new(RangeQueryConfig {
                recalibration: Some(Regularization::L1),
                ..base
            })
            .unwrap()
            .build(&values)
            .unwrap();
            let raw_mre = mean_relative_error(&raw_tree, &values, domain, 606);
            let recal_mre = mean_relative_error(&recal_tree, &values, domain, 606);
            assert!(
                recal_mre < raw_mre,
                "{kind:?} eps={epsilon}: recalibrated MRE {recal_mre} not below raw {raw_mre}"
            );
        }
    }
}

#[test]
fn range_tree_is_consistent_and_reproducible() {
    let values = skewed_values(10_000, 64, 3);
    let config = RangeQueryConfig {
        kind: OracleKind::Grr,
        domain: 64,
        epsilon: 2.0,
        seed: 55,
        recalibration: Some(Regularization::L1),
        supremum_z: 1.0,
    };
    let a = RangeWorkload::new(config).unwrap().build(&values).unwrap();
    let b = RangeWorkload::new(config).unwrap().build(&values).unwrap();
    assert!(a.max_consistency_gap() < 1e-9);
    for l in 0..=a.depth() {
        assert_eq!(a.level(l), b.level(l), "level {l} differs between runs");
    }
    // Disjoint dyadic pieces add up to the containing range.
    let whole = a.query(0..64).unwrap();
    let parts = a.query(0..32).unwrap() + a.query(32..64).unwrap();
    assert!((whole - parts).abs() < 1e-9);
}

#[test]
fn workload_telemetry_flows_through_the_shared_registry() {
    let registry = Registry::new();
    let (values, _) = planted_dataset(5_000, 32, 4, 0.8, 9).unwrap();
    let detector = HeavyHitterDetector::with_telemetry(
        HeavyHitterConfig {
            kind: OracleKind::Grr,
            categories: 32,
            epsilon: 1.0,
            seed: 2,
            rule: SelectionRule::TopK(4),
            recalibration: Some(Regularization::L1),
            supremum_z: 1.0,
        },
        &registry,
    )
    .unwrap();
    detector.identify(&values).unwrap();

    let snapshot = registry.snapshot();
    // Workload-level metrics and the ingest engine's own metrics both land
    // in the one registry.
    assert!(snapshot.counter("workload_runs_total").unwrap_or(0) >= 1);
    assert_eq!(snapshot.counter("workload_reports_total"), Some(5_000));
    assert!(snapshot.counter("ingest_reports_total").unwrap_or(0) > 0);
    let rendered = snapshot.render_table();
    assert!(rendered.contains("workload_collect_ns"));
}
