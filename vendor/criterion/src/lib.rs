//! Minimal, self-contained stand-in for `criterion`.
//!
//! Supports the subset the workspace benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `sample_size`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is adaptive: each benchmark's closure runs in growing batches until
//! the measured wall-time per sample exceeds a floor, then the mean time per
//! iteration over the fastest batch is reported. Every result is printed both
//! human-readably and as a `BENCH_JSON {...}` line, so harness output can be
//! collected into a machine-readable baseline with a simple grep.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default target measurement time per benchmark (kept small: the shim is for
/// smoke runs and coarse baselines, not statistically rigorous measurement).
const DEFAULT_TARGET_MEASURE: Duration = Duration::from_millis(200);

/// Measurement budget per benchmark. `HDLDP_BENCH_MEASURE_MS` overrides the
/// 200 ms default (read once, cached): CI's "Perf smoke" step sets it low so
/// full bench families finish in seconds while keeping ids and output format
/// identical to a real baseline run.
fn target_measure() -> Duration {
    static BUDGET: OnceLock<Duration> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("HDLDP_BENCH_MEASURE_MS")
            .ok()
            .and_then(|ms| ms.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
            .unwrap_or(DEFAULT_TARGET_MEASURE)
    })
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound `function_name/parameter` identifier.
    ///
    /// Mirrors `criterion::BenchmarkId::new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An identifier carrying only a parameter value.
    ///
    /// Mirrors `criterion::BenchmarkId::from_parameter<P: Display>(parameter: P) -> BenchmarkId`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Measure `f`, called in a loop.
    ///
    /// Mirrors `criterion::Bencher::iter<O, R: FnMut() -> O>(&mut self, routine: R)`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow until a batch takes at
        // least ~1/20 of the measurement budget.
        let budget = target_measure();
        let mut batch: u64 = 1;
        let calibration_floor = budget / 20;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_floor || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }

        // Measurement: run batches until the budget is spent, keep the best
        // (least-noisy) per-iteration time.
        let mut best_ns = f64::INFINITY;
        let measure_start = Instant::now();
        let mut samples = 0;
        while measure_start.elapsed() < budget || samples < 3 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
            best_ns = best_ns.min(per_iter);
            samples += 1;
        }
        self.mean_ns = best_ns;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timing is adaptive.
    ///
    /// Mirrors `criterion::BenchmarkGroup::sample_size(&mut self, n: usize) -> &mut Self`.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's timing is adaptive.
    ///
    /// Mirrors `criterion::BenchmarkGroup::measurement_time(&mut self, dur: Duration) -> &mut Self`.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    ///
    /// Mirrors `criterion::BenchmarkGroup::bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, f: F) -> &mut Self`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher);
        self.criterion.record(&full, bencher.mean_ns);
        self
    }

    /// Run one benchmark parameterized by `input`.
    ///
    /// Mirrors `criterion::BenchmarkGroup::bench_with_input<ID, I: ?Sized, F>(&mut self, id: ID, input: &I, f: F) -> &mut Self`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher, input);
        self.criterion.record(&full, bencher.mean_ns);
        self
    }

    /// Finish the group (no-op; results are recorded eagerly).
    ///
    /// Mirrors `criterion::BenchmarkGroup::finish(self)`.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Open a named benchmark group.
    ///
    /// Mirrors `criterion::Criterion::benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_, WallTime>`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single ungrouped benchmark.
    ///
    /// Mirrors `criterion::Criterion::bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher);
        self.record(&id.id, bencher.mean_ns);
        self
    }

    fn record(&mut self, id: &str, mean_ns: f64) {
        println!("bench: {id:<55} {:>12.1} ns/iter", mean_ns);
        println!("BENCH_JSON {{\"id\":\"{id}\",\"mean_ns\":{mean_ns:.1}}}");
        self.results.push((id.to_string(), mean_ns));
    }

    /// Print a closing summary (invoked by `criterion_group!`).
    ///
    /// Mirrors `criterion::Criterion::final_summary(&self)`.
    pub fn final_summary(&self) {
        println!("bench: {} benchmarks measured", self.results.len());
    }
}

/// Define a benchmark group function that runs the given targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` may pass harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_measure_is_positive() {
        assert!(target_measure() > Duration::ZERO);
    }

    #[test]
    fn bench_records_positive_time() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.bench_function("busy_loop", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
        assert_eq!(criterion.results.len(), 1);
        assert!(criterion.results[0].1 > 0.0);
    }
}
