//! Minimal, self-contained stand-in for `proptest`.
//!
//! The real proptest is a shrinking property-testing framework; this shim
//! keeps the same surface syntax for the subset the workspace uses and runs
//! each property as a deterministic Monte-Carlo loop (seeded per test name,
//! so failures reproduce exactly):
//!
//! * numeric range strategies (`-1.0f64..1.0`, `1usize..64`, `0u64..100`, ...)
//! * `proptest::collection::vec(strategy, len_range)`
//! * tuple strategies up to arity 6
//! * `.prop_map(...)` and `.prop_flat_map(...)`
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!
//! No shrinking is performed: a failing case panics with the seed-derived
//! case index, which is stable across runs.

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configure the number of cases to run.
    ///
    /// Mirrors `proptest::test_runner::Config::with_cases(cases: u32) -> Self`.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let intermediate = self.base.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A length specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                lo: len,
                hi_exclusive: len + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length drawn from `size`.
    ///
    /// Mirrors `proptest::collection::vec<T: Strategy>(element: T, size: impl Into<SizeRange>) -> VecStrategy<T>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Derive a deterministic RNG for (test name, case index).
    ///
    /// Mirrors `proptest::test_runner::TestRng::from_seed` as used by the real
    /// crate's runner: every case gets a reproducible generator.
    #[must_use]
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

/// Everything the `proptest!` DSL needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Skip the current case when its assumption does not hold. The shim simply
/// returns from the case body instead of drawing a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert a condition inside a property (plain `assert!` semantics).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (plain `assert_eq!` semantics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (plain `assert_ne!` semantics).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `body` against `cases` deterministic random assignments of the arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let run = move || $body;
                    run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -2.0f64..2.0, n in 1usize..10) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_length(
            xs in collection::vec(0.0f64..1.0, 3..7),
        ) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn flat_map_links_length_and_content(
            pair in (1usize..8).prop_flat_map(|len| (
                collection::vec(0.0f64..1.0, len..len + 1),
                Just(len),
            )),
        ) {
            let (xs, len) = pair;
            prop_assert_eq!(xs.len(), len);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::test_runner::case_rng("some_test", 3);
        let mut b = crate::test_runner::case_rng("some_test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::case_rng("some_test", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
