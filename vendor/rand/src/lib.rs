//! Minimal, self-contained stand-in for the `rand` crate.
//!
//! The workspace builds fully offline, so this crate re-implements exactly the
//! slice of the `rand` 0.8 API surface the hdldp crates use:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits (object-safe core, blanket
//!   extension trait, `seed_from_u64` construction).
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded through
//!   SplitMix64, the seeding scheme recommended by the xoshiro authors.
//! * [`seq::index::sample`] — partial Fisher–Yates index sampling.
//!
//! The statistical quality of xoshiro256++ is more than sufficient for the
//! Monte-Carlo assertions in the workspace test-suite, and the generator is
//! fully deterministic for a given seed on every platform.

/// The core of a random number generator: object-safe, infallible.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convert 53 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn u64_to_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = u64_to_unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint. Use
                // next_down rather than an epsilon subtraction: for
                // large-magnitude bounds the subtraction can round back to
                // `end` itself.
                if v >= self.end {
                    <$t>::max(self.start, self.end.next_down())
                } else {
                    v
                }
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = u64_to_unit_f64(rng.next_u64()) as $t;
                (lo + u * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`] (including unsized trait objects, mirroring `rand` 0.8).
pub trait Rng: RngCore {
    /// Sample uniformly from the given range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        u64_to_unit_f64(self.next_u64()) < p
    }

    /// Sample a uniform `f64` in `[0, 1)`.
    #[inline]
    fn gen(&mut self) -> f64 {
        u64_to_unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a reproducible generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used to expand small seeds into full generator state.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would lock xoshiro at zero; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{Rng, RngCore};

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            ///
            /// Mirrors `rand::seq::index::IndexVec::len(&self) -> usize`.
            #[must_use]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            ///
            /// Mirrors `rand::seq::index::IndexVec::is_empty(&self) -> bool`.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consume into a plain vector of indices.
            ///
            /// Mirrors `rand::seq::index::IndexVec::into_vec(self) -> Vec<usize>`.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Iterate over the sampled indices.
            ///
            /// Mirrors `rand::seq::index::IndexVec::iter(&self) -> IndexVecIter<'_>`.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` uniformly at
        /// random, via a partial Fisher–Yates shuffle.
        ///
        /// Mirrors `rand::seq::index::sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec`.
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            // Dense pool when we keep most of it; otherwise emulate the same
            // partial shuffle sparsely so a small sample from a huge range is
            // O(amount), not O(length). Both paths consume the identical
            // `gen_range` sequence and return the identical result.
            if amount * 2 >= length {
                let mut pool: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    pool.swap(i, j);
                }
                pool.truncate(amount);
                IndexVec(pool)
            } else {
                let mut displaced: std::collections::HashMap<usize, usize> =
                    std::collections::HashMap::with_capacity(amount * 2);
                let mut out = Vec::with_capacity(amount);
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    let value_j = displaced.get(&j).copied().unwrap_or(j);
                    let value_i = displaced.get(&i).copied().unwrap_or(i);
                    out.push(value_j);
                    displaced.insert(j, value_i);
                }
                IndexVec(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&n));
            let m: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn gen_range_excludes_end_for_large_magnitude_bounds() {
        // At 1e10 the ulp (~1.9e-6) dwarfs span * EPSILON, so a naive
        // epsilon-subtraction guard rounds back to the excluded endpoint.
        let mut rng = StdRng::seed_from_u64(21);
        let (lo, hi) = (1e10, 1e10 + 1.0);
        for _ in 0..1_000_000 {
            let x: f64 = rng.gen_range(lo..hi);
            assert!(x >= lo && x < hi, "x = {x}");
        }
    }

    #[test]
    fn unit_uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean = {mean}");
    }

    #[test]
    fn dyn_rng_core_supports_gen_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let sampled = super::seq::index::sample(&mut rng, 50, 10).into_vec();
        assert_eq!(sampled.len(), 10);
        let mut sorted = sampled.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "indices must be distinct");
        assert!(sampled.iter().all(|&i| i < 50));
    }

    #[test]
    fn index_sample_sparse_path_matches_dense_shuffle() {
        // The sparse (amount * 2 < length) path must emulate the dense
        // partial Fisher-Yates exactly: same rng draws, same output.
        for seed in 0..20 {
            let (length, amount) = (1000, 3);
            let sampled =
                super::seq::index::sample(&mut StdRng::seed_from_u64(seed), length, amount)
                    .into_vec();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            assert_eq!(sampled, pool, "seed {seed}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }
}
