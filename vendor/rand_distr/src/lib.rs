//! Minimal, self-contained stand-in for the `rand_distr` crate.
//!
//! Only the surface used by the hdldp workspace is provided: the
//! [`Distribution`] trait and the [`Poisson`] distribution. Poisson sampling
//! uses Knuth's multiplication method for small rates and the PTRS
//! transformed-rejection method (Hörmann, 1993) for large rates, so the
//! paper's per-dimension rates in `[1, 99]` sample in O(1).

use rand::{Rng, RngCore};

/// Types that can sample values of type `T` from an RNG.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned for invalid Poisson parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoissonError {
    /// The rate `lambda` was not a finite positive number.
    ShapeTooSmall,
}

impl std::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Poisson rate must be finite and positive")
    }
}

impl std::error::Error for PoissonError {}

/// The Poisson distribution with rate `lambda`.
///
/// The type parameter is the sample type; only `f64` is supported, matching
/// how the workspace instantiates `rand_distr::Poisson`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson<F = f64> {
    lambda: f64,
    _sample_type: std::marker::PhantomData<F>,
}

impl Poisson<f64> {
    /// Create a Poisson distribution. `lambda` must be finite and positive.
    ///
    /// Mirrors `rand_distr::Poisson::<f64>::new(lambda: f64) -> Result<Poisson<f64>, PoissonError>`.
    pub fn new(lambda: f64) -> Result<Self, PoissonError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(PoissonError::ShapeTooSmall);
        }
        Ok(Poisson {
            lambda,
            _sample_type: std::marker::PhantomData,
        })
    }

    /// The configured rate.
    ///
    /// Mirrors `rand_distr::Poisson` field access (the real crate exposes the
    /// rate via `Debug`); kept as `lambda(&self) -> f64` for telemetry labels.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    fn sample_knuth<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let threshold = (-self.lambda).exp();
        let mut product: f64 = 1.0;
        let mut count: u64 = 0;
        loop {
            product *= rng.gen_range(f64::MIN_POSITIVE..1.0);
            if product <= threshold {
                return count as f64;
            }
            count += 1;
        }
    }

    /// PTRS transformed rejection (Hörmann 1993), valid for `lambda >= 10`.
    fn sample_ptrs<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let lambda = self.lambda;
        let b = 0.931 + 2.53 * lambda.sqrt();
        let a = -0.059 + 0.024_83 * b;
        let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
        let v_r = 0.9277 - 3.6224 / (b - 2.0);
        loop {
            let u = rng.gen_range(0.0f64..1.0) - 0.5;
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + lambda + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            let ln_accept = k * lambda.ln() - lambda - ln_factorial(k);
            if (v * inv_alpha / (a / (us * us) + b)).ln() <= ln_accept {
                return k;
            }
        }
    }
}

/// `ln(k!)` via Stirling's series for large `k`, exact product for small `k`.
fn ln_factorial(k: f64) -> f64 {
    let n = k as u64;
    if n < 10 {
        let mut acc = 0.0;
        for i in 2..=n {
            acc += (i as f64).ln();
        }
        return acc;
    }
    let x = k + 1.0;
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    (x - 0.5) * x.ln() - x
        + 0.5 * (2.0 * std::f64::consts::PI).ln()
        + inv / 12.0 * (1.0 - inv2 / 30.0 * (1.0 - 2.0 * inv2 / 7.0))
}

impl Distribution<f64> for Poisson<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 10.0 {
            self.sample_knuth(rng)
        } else {
            self.sample_ptrs(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(5.0).is_ok());
    }

    #[test]
    fn mean_and_variance_match_lambda() {
        for &lambda in &[0.5, 3.0, 25.0, 80.0] {
            let dist = Poisson::new(lambda).unwrap();
            let mut rng = StdRng::seed_from_u64(17);
            let n = 200_000;
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let x = dist.sample(&mut rng);
                assert!(x >= 0.0 && x.fract() == 0.0, "sample {x} not a count");
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / n as f64;
            let var = sum_sq / n as f64 - mean * mean;
            let tol = 0.05 * lambda.max(1.0);
            assert!((mean - lambda).abs() < tol, "lambda={lambda} mean={mean}");
            assert!(
                (var - lambda).abs() < 3.0 * tol,
                "lambda={lambda} var={var}"
            );
        }
    }

    #[test]
    fn ln_factorial_is_accurate() {
        let mut exact = 0.0;
        for k in 1..40u64 {
            exact += (k as f64).ln();
            let approx = ln_factorial(k as f64);
            assert!(
                (approx - exact).abs() < 1e-8,
                "k={k} approx={approx} exact={exact}"
            );
        }
    }
}
