//! Minimal, self-contained stand-in for `rayon`.
//!
//! Only the pattern the workspace uses is supported:
//!
//! ```ignore
//! let results: Vec<_> = (0..n).into_par_iter().map(|i| work(i)).collect();
//! ```
//!
//! Unlike a serial fallback, this shim genuinely runs the mapped closure in
//! parallel: items are split into contiguous chunks, one `std::thread::scope`
//! thread per chunk, and results are concatenated in input order (matching
//! rayon's ordered collect semantics).

use std::num::NonZeroUsize;

/// Number of worker threads the shim will use (logical CPU count).
///
/// Mirrors `rayon::current_num_threads() -> usize`.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Materialize the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `op` (evaluated in parallel at `collect`).
    ///
    /// Mirrors `rayon::iter::ParallelIterator::map<F, R>(self, map_op: F)`.
    pub fn map<R, F>(self, op: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            op,
        }
    }
}

/// A pending parallel map.
pub struct ParMap<T, F> {
    items: Vec<T>,
    op: F,
}

impl<T, F> ParMap<T, F> {
    /// Evaluate the map across worker threads, preserving input order.
    ///
    /// Mirrors `rayon::iter::ParallelIterator::collect<C: FromParallelIterator>(self) -> C`.
    pub fn collect<R, C>(self) -> C
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let ParMap { items, op } = self;
        let total = items.len();
        if total == 0 {
            return std::iter::empty().collect();
        }
        let workers = current_num_threads().min(total);
        if workers <= 1 {
            return items.into_iter().map(op).collect();
        }
        let chunk_len = total.div_ceil(workers);
        let op = &op;

        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut items = items;
        while !items.is_empty() {
            let tail = items.split_off(items.len().min(chunk_len));
            chunks.push(std::mem::replace(&mut items, tail));
        }

        let mut chunk_results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(op).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                chunk_results.push(handle.join().expect("rayon-shim worker panicked"));
            }
        });
        chunk_results.into_iter().flatten().collect()
    }
}

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn results_can_collect_into_result_vec() {
        let out: Vec<Result<usize, String>> = (0..10usize)
            .into_par_iter()
            .map(|i| if i < 10 { Ok(i) } else { Err("no".into()) })
            .collect();
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
