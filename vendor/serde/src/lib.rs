//! Minimal, self-contained stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this shim uses a concrete
//! [`Value`] tree: [`Serialize`] converts a type into a `Value`,
//! [`Deserialize`] reconstructs it from one. The companion `serde_json`
//! shim renders and parses `Value` as JSON, and the `serde_derive` shim
//! generates the two impls for structs with named fields and fieldless
//! enums — exactly the shapes used in this workspace.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (wide enough for `u64` and `i64`).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    ///
    /// Mirrors `serde_json::Value::get<I: Index>(&self, index: I) -> Option<&Value>`
    /// for the string-key case.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// View as object entries, if this is an object.
    ///
    /// Mirrors `serde_json::Value::as_object(&self) -> Option<&Map<String, Value>>`
    /// (the shim's map is an insertion-ordered slice of pairs).
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// View as a string slice, if this is a string.
    ///
    /// Mirrors `serde_json::Value::as_str(&self) -> Option<&str>`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// View as an `f64`, accepting integer values as well.
    ///
    /// Mirrors `serde_json::Value::as_f64(&self) -> Option<f64>`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// View as an `i128`, if this is an integer.
    ///
    /// Mirrors `serde_json::Value::as_i64(&self) -> Option<i64>`, widened to
    /// `i128` because the shim stores one integer variant.
    #[must_use]
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Create an error from any message.
    ///
    /// Mirrors `serde::de::Error::custom<T: Display>(msg: T) -> Self`.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Convert `self` into a serialization tree.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a serialization tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_int()
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(u64::deserialize(&7u64.serialize()).unwrap(), 7);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<f64>::deserialize(&vec![1.0, 2.0].serialize()).unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::deserialize(&Value::Int(300)).is_err());
        assert!(u64::deserialize(&Value::Int(-1)).is_err());
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
    }
}
